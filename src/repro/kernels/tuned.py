"""Tuned-numpy kernel tier: cache-blocked, scratch-preallocating.

Same contracts as :mod:`repro.kernels.reference`, restructured for the
memory system:

- ``popcount`` takes the hardware ``numpy.bitwise_count`` path
  (numpy >= 2.0) — bit-identical to the table lookup, one ufunc pass.
- ``welch_bit_domain`` processes 128-segment FFT blocks (vs the
  reference 16) through preallocated ``rfft(..., out=)`` plans
  (:func:`repro.dsp.fft_backend.plan_rfft`), frames segments with a
  zero-copy ``as_strided`` view, reduces block power with a single
  ``einsum`` over the complex buffer viewed as floats, and hoists the
  detrend correction out of the block loop: power, the mean-weighted
  matvec and the near-DC direct terms accumulate per *record* and the
  rank-one correction is assembled once.  The integer kernels stay
  bit-identical to reference; the spectral kernel agrees to summation
  rounding (<= 1e-15 scale-relative — the additions happen in a
  different order), measured ~1.3-1.4x over reference at paper scale
  on the 1-CPU bench host.

``unpack_block`` and ``bernoulli_pack`` are *not* re-registered here:
their reference forms are already single-ufunc-pass numpy, so the
tuned tier inherits them through the registry fallback chain.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.buffers import default_pool
from repro.kernels import reference
from repro.kernels.registry import register_kernel

__all__ = ["TUNED_BLOCK_SEGMENTS", "popcount", "segment_ones", "welch_bit_domain"]

#: Segments per batched FFT block.  Larger than the reference 16: the
#: per-record correction hoist removes the per-block O(n_bins) work
#: that used to favor small blocks, so the block size is set by FFT
#: batching efficiency instead — 128 x 1e4 doubles = 10 MB scratch,
#: measured fastest of {32, 64, 96, 128, 200} at paper scale on the
#: bench host (larger blocks amortize the per-block framing/einsum
#: setup; past ~128 the curve is flat and scratch keeps growing).
TUNED_BLOCK_SEGMENTS = 128

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-byte set-bit counts via ``numpy.bitwise_count``."""
    arr = np.asarray(words, dtype=np.uint8)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(arr)
    return reference.popcount(arr)


def segment_ones(
    words: np.ndarray, n_samples: int, nperseg: int, step: int
) -> np.ndarray:
    """Reference chunked-cumsum skeleton over the hardware popcount."""
    return reference.segment_ones_with(
        words, n_samples, nperseg, step, popcount
    )


def welch_bit_domain(
    words: np.ndarray,
    n_samples: int,
    nperseg: int,
    step: int,
    window: np.ndarray,
    window_spectrum: np.ndarray,
    means01: np.ndarray,
    acc: np.ndarray,
    block_segments: int = 16,
) -> int:
    """Blocked bit-domain Welch accumulation, record-hoisted.

    Same mathematical contract as the reference kernel (see
    :func:`repro.kernels.reference.welch_bit_domain`); ``block_segments``
    is treated as a lower bound — the tier's own cache blocking
    (:data:`TUNED_BLOCK_SEGMENTS`) is the knob that makes it fast.
    """
    from repro.dsp.fft_backend import plan_rfft

    bs = max(int(block_segments), TUNED_BLOCK_SEGMENTS)
    n_segments = means01.shape[0]
    n_bins = nperseg // 2 + 1
    window_power = window_spectrum.real**2 + window_spectrum.imag**2
    exact_bins = np.flatnonzero(window_power > window_power.max() * 1e-12)
    w_exact = window_spectrum[exact_bins]
    means_c = means01.astype(np.complex128)

    scratch = default_pool.take(
        "kernels.tuned.unpack", (bs - 1) * step + nperseg
    )
    wblock = default_pool.take("kernels.tuned.windowed", (bs, nperseg))
    power = default_pool.take("kernels.tuned.power", n_bins)
    power[:] = 0.0
    weighted = default_pool.take(
        "kernels.tuned.weighted", n_bins, dtype=np.complex128
    )
    weighted[:] = 0.0
    folded = default_pool.take("kernels.tuned.folded", n_bins)
    matvec = default_pool.take(
        "kernels.tuned.matvec", n_bins, dtype=np.complex128
    )
    direct_acc = np.zeros(exact_bins.size)
    itemsize = scratch.itemsize

    for start in range(0, n_segments, bs):
        nb = min(bs, n_segments - start)
        lo = start * step
        hi = (start + nb - 1) * step + nperseg
        samples = reference.unpack_block(
            words, lo, hi, out=scratch, bipolar=False
        )
        segments = as_strided(
            samples, (nb, nperseg), (step * itemsize, itemsize)
        )
        buf = wblock[:nb]
        np.multiply(segments, window, out=buf)
        spectra = plan_rfft((nb, nperseg), buf.dtype).execute(buf)
        # sum_s |B_s|^2 over the block: one einsum over the complex
        # buffer viewed as interleaved floats, then fold re^2 + im^2.
        flat = spectra.view(np.float64)
        sums = np.einsum("ij,ij->j", flat, flat)
        np.add(sums[0::2], sums[1::2], out=folded)
        power += folded
        np.matmul(means_c[start : start + nb], spectra, out=matvec)
        weighted += matvec
        m = means01[start : start + nb]
        direct = spectra[:, exact_bins] - m[:, np.newaxis] * w_exact
        direct_power = direct.real**2
        direct_power += direct.imag**2
        direct_acc += direct_power.sum(axis=0)

    correction = power  # pooled scratch; consumed into acc below
    correction -= 2.0 * (
        weighted.real * window_spectrum.real
        + weighted.imag * window_spectrum.imag
    )
    correction += (means01 @ means01) * window_power
    correction[exact_bins] = direct_acc
    correction *= 4.0
    acc += correction
    return n_segments


register_kernel("popcount", "tuned", popcount)
register_kernel("segment_ones", "tuned", segment_ones)
register_kernel("welch_bit_domain", "tuned", welch_bit_domain)
