"""Reference kernel tier: the plain-numpy hot-loop implementations.

These are the PR 4 code paths lifted out of
:mod:`repro.dsp.bitstats`, :mod:`repro.dsp.psd`,
:mod:`repro.bitstream` and :mod:`repro.signals.batch_rng` verbatim —
the semantics every equivalence test pins and the baseline every other
backend tier is asserted against.  Kernels operate on *raw arrays*
(packed ``uint8`` words, ``uint32`` thresholds, float scratch), never
on bitstream objects: argument validation lives with the callers, and
keeping this package free of :mod:`repro.bitstream`/:mod:`repro.dsp`
module-level imports is what lets those modules dispatch through the
registry without an import cycle.

Also defines the parity checkers (:func:`register_check`) that
:func:`repro.kernels.self_check` runs: integer kernels must match the
reference bit for bit; the spectral accumulation kernel must match to
``<= 1e-15`` scale-relative.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.buffers import default_pool
from repro.kernels.registry import register_check, register_kernel

__all__ = [
    "popcount",
    "segment_ones",
    "unpack_block",
    "bernoulli_pack",
    "welch_bit_domain",
]

#: Set-bit counts of every byte value — the portable popcount.
POPCOUNT_TABLE = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-byte set-bit counts by 256-entry table lookup."""
    arr = np.asarray(words, dtype=np.uint8)
    return POPCOUNT_TABLE[arr]


def segment_ones_with(
    words: np.ndarray,
    n_samples: int,
    nperseg: int,
    step: int,
    popcount_fn,
) -> np.ndarray:
    """Welch-grid per-segment set-bit counts from one popcount pass.

    Shared skeleton: segment boundaries all fall on multiples of
    ``gcd(step, nperseg) / 8`` words, so the prefix sum only needs that
    granularity — one vectorized chunk reduction over the byte counts,
    then a cumsum over the (few hundred) chunks instead of every word.
    The caller guarantees a byte-aligned grid
    (``nperseg % 8 == step % 8 == 0``) and ``n_samples >= nperseg``.
    """
    n_segments = 1 + (n_samples - nperseg) // step
    word_step = step // 8
    word_seg = nperseg // 8
    chunk = math.gcd(word_step, word_seg)
    last_word = (n_segments - 1) * word_step + word_seg
    n_chunks = last_word // chunk
    counts = popcount_fn(words[:last_word])
    chunk_sums = counts.reshape(n_chunks, chunk).sum(axis=1, dtype=np.int64)
    prefix = np.zeros(n_chunks + 1, dtype=np.int64)
    np.cumsum(chunk_sums, out=prefix[1:])
    lo = np.arange(n_segments, dtype=np.int64) * (word_step // chunk)
    return prefix[lo + word_seg // chunk] - prefix[lo]


def segment_ones(
    words: np.ndarray, n_samples: int, nperseg: int, step: int
) -> np.ndarray:
    """Set-bit count of every Welch segment (byte-aligned grid)."""
    return segment_ones_with(words, n_samples, nperseg, step, popcount)


def unpack_block(
    words: np.ndarray,
    start: int,
    stop: int,
    out: np.ndarray = None,
    bipolar: bool = True,
) -> np.ndarray:
    """Unpack packed-word samples ``[start, stop)`` to float64.

    ``numpy.packbits`` bit order (MSB first).  With ``bipolar`` the
    bits map to ``+/-1``; otherwise the raw ``0/1`` values come back as
    floats.  ``out`` may supply a reusable destination of length
    ``>= stop - start``; range validation is the caller's job
    (:meth:`repro.bitstream.PackedBitstream.unpack_range`).
    """
    n = stop - start
    word_lo = start // 8
    bits = np.unpackbits(
        words[word_lo : (stop + 7) // 8], count=stop - 8 * word_lo
    )[start - 8 * word_lo :]
    if out is None:
        result = bits.astype(np.float64)
    else:
        result = out[:n]
        result[:] = bits
    if bipolar:
        result *= 2.0
        result -= 1.0
    return result


def bernoulli_pack(
    raw: np.ndarray, thresholds: np.ndarray, out_words: np.ndarray
) -> np.ndarray:
    """Threshold-compare one stream's counter output into packed bits.

    ``raw`` is the stream's raw ``uint64`` counter output (two u32
    lanes per word, ``>= ceil(n / 2)`` words for ``n`` thresholds); bit
    ``t`` of the output is set iff lane ``t`` is below
    ``thresholds[t]``.  Writes ``numpy.packbits``-order words into
    ``out_words`` (length ``ceil(n / 8)``, final-byte padding zero) and
    returns it.
    """
    n = thresholds.size
    bits = default_pool.take("kernels.bernoulli_bits", n, dtype=np.bool_)
    np.less(raw.view(np.uint32)[:n], thresholds, out=bits)
    out_words[:] = np.packbits(bits)
    return out_words


def welch_bit_domain(
    words: np.ndarray,
    n_samples: int,
    nperseg: int,
    step: int,
    window: np.ndarray,
    window_spectrum: np.ndarray,
    means01: np.ndarray,
    acc: np.ndarray,
    block_segments: int = 16,
) -> int:
    """Blocked bit-domain Welch accumulation over one packed record.

    Adds ``sum_s |rfft(detrend(seg_s) * window)|^2`` into ``acc`` with
    the detrend folded into the spectrum: segments unpack as raw 0/1
    bits, are windowed and transformed as ``B = F[b w]``, and the
    per-segment mean subtraction becomes the exact rank-one power
    correction

        4 [ sum_s |B_s|^2 - 2 Re((sum_s m_s B_s) conj(W))
            + (sum_s m_s^2) |W|^2 ],

    with ``W = F[window]`` and ``m_s`` the popcount bit fractions
    (``means01``).  Bins where ``|W|`` is large (near DC — the only
    place the expansion cancels catastrophically) are recomputed by the
    direct per-segment ``|B - m W|^2``.  Matches the float detrend path
    to summation rounding.  Returns the number of segments accumulated.
    """
    from repro.dsp.fft_backend import rfft

    n_segments = means01.shape[0]
    window_power = window_spectrum.real**2 + window_spectrum.imag**2
    exact_bins = np.flatnonzero(window_power > window_power.max() * 1e-12)
    scratch = default_pool.take(
        "psd.unpack_block", (block_segments - 1) * step + nperseg
    )
    wblock = default_pool.take(
        "psd.windowed_block", (block_segments, nperseg)
    )
    for start in range(0, n_segments, block_segments):
        nb = min(block_segments, n_segments - start)
        lo = start * step
        hi = (start + nb - 1) * step + nperseg
        samples = unpack_block(words, lo, hi, out=scratch, bipolar=False)
        segments = sliding_window_view(samples, nperseg)[::step][:nb]
        buf = wblock[:nb]
        np.multiply(segments, window, out=buf)
        spectra = rfft(buf, axis=-1)
        power = spectra.real**2
        power += spectra.imag**2
        m = means01[start : start + nb]
        weighted = m.astype(np.complex128) @ spectra
        correction = power.sum(axis=0)
        correction -= 2.0 * (
            weighted.real * window_spectrum.real
            + weighted.imag * window_spectrum.imag
        )
        correction += (m @ m) * window_power
        direct = (
            spectra[:, exact_bins]
            - m[:, np.newaxis] * window_spectrum[exact_bins]
        )
        direct_power = direct.real**2
        direct_power += direct.imag**2
        correction[exact_bins] = direct_power.sum(axis=0)
        correction *= 4.0
        acc += correction
    return n_segments


# ----------------------------------------------------------------------
# Registration + parity checkers
# ----------------------------------------------------------------------
register_kernel(
    "popcount", "reference", popcount, doc="per-byte set-bit counts"
)
register_kernel(
    "segment_ones",
    "reference",
    segment_ones,
    doc="Welch-grid per-segment popcount sums over packed words",
)
register_kernel(
    "unpack_block",
    "reference",
    unpack_block,
    doc="windowed block unpack of packed words to float64",
)
register_kernel(
    "bernoulli_pack",
    "reference",
    bernoulli_pack,
    doc="Bernoulli u32 threshold-compare into packed words",
)
register_kernel(
    "welch_bit_domain",
    "reference",
    welch_bit_domain,
    doc="blocked bit-domain Welch spectral accumulation",
)


def _check_words(rng: np.random.Generator, n_samples: int) -> np.ndarray:
    """Random packed words with a zeroed final-byte padding."""
    words = rng.integers(0, 256, size=(n_samples + 7) // 8, dtype=np.uint8)
    pad = (-n_samples) % 8
    if pad:
        words[-1] &= (0xFF << pad) & 0xFF
    return words


def _check_popcount(candidate, ref) -> None:
    rng = np.random.default_rng(2005)
    for shape in ((0,), (1,), (257,), (4, 33)):
        arr = rng.integers(0, 256, size=shape, dtype=np.uint8)
        got, want = candidate(arr), ref(arr)
        assert got.shape == want.shape and np.array_equal(got, want), (
            f"popcount mismatch on shape {shape}"
        )


def _check_segment_ones(candidate, ref) -> None:
    rng = np.random.default_rng(2005)
    for n_samples, nperseg, step in ((512, 64, 32), (520, 64, 64), (64, 64, 8)):
        words = _check_words(rng, n_samples)
        got = candidate(words, n_samples, nperseg, step)
        want = ref(words, n_samples, nperseg, step)
        assert np.array_equal(got, want), (
            f"segment_ones mismatch at n={n_samples}, nperseg={nperseg}, "
            f"step={step}"
        )


def _check_unpack_block(candidate, ref) -> None:
    rng = np.random.default_rng(2005)
    n_samples = 301  # tail bits < 8: exercises the padding boundary
    words = _check_words(rng, n_samples)
    for start, stop in ((0, n_samples), (7, 123), (64, 64), (295, 301)):
        for bipolar in (True, False):
            got = candidate(words, start, stop, bipolar=bipolar)
            want = ref(words, start, stop, bipolar=bipolar)
            assert np.array_equal(got, want), (
                f"unpack_block mismatch on [{start}, {stop}), "
                f"bipolar={bipolar}"
            )
            out = np.empty(stop - start + 3)
            got_out = candidate(words, start, stop, out=out, bipolar=bipolar)
            assert np.array_equal(got_out, want), (
                f"unpack_block(out=...) mismatch on [{start}, {stop})"
            )


def _check_bernoulli_pack(candidate, ref) -> None:
    rng = np.random.default_rng(2005)
    for n in (1, 7, 128, 1001):
        raw = rng.integers(0, 1 << 64, size=(n + 1) // 2, dtype=np.uint64)
        thresholds = rng.integers(0, 1 << 32, size=n, dtype=np.uint32)
        got = candidate(raw, thresholds, np.empty((n + 7) // 8, np.uint8))
        want = ref(raw, thresholds, np.empty((n + 7) // 8, np.uint8))
        assert np.array_equal(got, want), f"bernoulli_pack mismatch at n={n}"


def _check_welch_bit_domain(candidate, ref) -> None:
    from repro.dsp.windows import get_window

    rng = np.random.default_rng(2005)
    nperseg, step = 256, 128
    window = np.asarray(get_window("hann", nperseg))
    window_spectrum = np.fft.rfft(window)
    for n_samples in (4096, 4104):
        words = _check_words(rng, n_samples)
        n_segments = 1 + (n_samples - nperseg) // step
        ones = segment_ones(words, n_samples, nperseg, step)
        means01 = ones / float(nperseg)
        got = np.zeros(nperseg // 2 + 1)
        want = np.zeros(nperseg // 2 + 1)
        assert (
            candidate(
                words, n_samples, nperseg, step, window, window_spectrum,
                means01, got,
            )
            == n_segments
        )
        ref(
            words, n_samples, nperseg, step, window, window_spectrum,
            means01, want,
        )
        scale = float(np.max(np.abs(want)))
        err = float(np.max(np.abs(got - want))) / scale
        assert err <= 1e-15, (
            f"welch_bit_domain exceeds 1e-15 scale-relative parity: {err:.3e}"
        )


register_check("popcount", _check_popcount)
register_check("segment_ones", _check_segment_ones)
register_check("unpack_block", _check_unpack_block)
register_check("bernoulli_pack", _check_bernoulli_pack)
register_check("welch_bit_domain", _check_welch_bit_domain)
