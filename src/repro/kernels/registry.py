"""Kernel registry: one interface, several implementations per kernel.

The hot loops of the reproduction — popcount segment sums, the
bit-domain spectral detrend, Bernoulli threshold-compare synthesis and
the windowed block unpack — are registered here once per *backend
tier* and dispatched at call time:

``"reference"``
    The plain-numpy implementations the equivalence tests pin.  Always
    present, always correct; every other tier is validated against it.

``"tuned"``
    Cache-blocked, scratch-preallocating numpy: larger FFT blocks with
    preallocated ``rfft(..., out=)`` spectra, power folded through a
    single ``einsum`` pass, per-record (not per-block) detrend
    corrections, and the ``numpy.bitwise_count`` popcount fast path.
    Integer kernels are bit-identical to reference; the spectral
    kernel matches to summation rounding (<= 1e-15 scale-relative).

``"numba"``
    Optional compiled tier (:mod:`repro.kernels.numba_backend`):
    auto-detected, lazily ``njit``-compiled on first use, and skipped
    cleanly when numba is not importable.  Kernels the tier does not
    implement fall back to ``tuned`` then ``reference``.

Selection is process-global (like the FFT backend): worker processes
inherit the parent's choice through the pool initializer (see
:class:`repro.engine.scheduler.WorkerPool`).  Switching to a
non-reference backend runs :func:`self_check` once per process — every
registered kernel is asserted against reference (exact for integer
kernels, <= 1e-15 scale-relative for spectral ones) before the tier
serves a single hot-path call.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "BACKEND_TIERS",
    "KernelSpec",
    "register_kernel",
    "register_check",
    "get_kernel",
    "kernel_names",
    "available_backends",
    "resolve_backend",
    "set_kernel_backend",
    "get_kernel_backend",
    "kernel_backend",
    "self_check",
    "report",
]

#: Backend tiers in fallback order: a backend serves its own kernels
#: first and falls back rightward for kernels it does not implement.
BACKEND_TIERS = ("reference", "tuned", "numba")

#: Fallback chain per selected backend.
_FALLBACK: Dict[str, Tuple[str, ...]] = {
    "reference": ("reference",),
    "tuned": ("tuned", "reference"),
    "numba": ("numba", "tuned", "reference"),
}


@dataclass
class KernelSpec:
    """One dispatchable kernel: its name, contract and implementations."""

    name: str
    doc: str = ""
    impls: Dict[str, Callable] = field(default_factory=dict)
    #: Parity checker: ``check(candidate, reference) -> None`` raising
    #: AssertionError / ConfigurationError on mismatch.
    check: Optional[Callable[[Callable, Callable], None]] = None


_REGISTRY: Dict[str, KernelSpec] = {}
_LOCK = threading.Lock()

#: Non-reference backends whose registered kernels already passed
#: :func:`self_check` in this process.
_CHECKED: set = set()

#: Backends with a self-check in flight (re-entrancy guard: the check
#: itself dispatches kernels).
_CHECKING: set = set()


def _default_backend() -> str:
    name = os.environ.get("REPRO_KERNEL_BACKEND", "tuned")
    if name == "auto" or name not in BACKEND_TIERS:
        return "tuned"
    return name


_active_backend: str = _default_backend()


def register_kernel(
    name: str, backend: str, fn: Callable, doc: str = ""
) -> Callable:
    """Register ``fn`` as the ``backend`` implementation of ``name``.

    Returns ``fn`` so it can be used as a decorator factory target.
    Registering the same (name, backend) twice replaces the entry —
    that is what lets the numba tier re-register its lazily compiled
    kernels over the module-import stubs.
    """
    if backend not in BACKEND_TIERS:
        raise ConfigurationError(
            f"unknown kernel backend {backend!r}; tiers: {BACKEND_TIERS}"
        )
    with _LOCK:
        spec = _REGISTRY.setdefault(name, KernelSpec(name=name))
        if doc and not spec.doc:
            spec.doc = doc
        spec.impls[backend] = fn
    return fn


def register_check(
    name: str, check: Callable[[Callable, Callable], None]
) -> None:
    """Attach the parity checker :func:`self_check` runs for ``name``."""
    with _LOCK:
        spec = _REGISTRY.setdefault(name, KernelSpec(name=name))
        spec.check = check


def kernel_names() -> List[str]:
    """Registered kernel names, sorted."""
    return sorted(_REGISTRY)


def _impl_for(name: str, backend: str) -> Callable:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(f"unknown kernel {name!r}")
    for tier in _FALLBACK[backend]:
        fn = spec.impls.get(tier)
        if fn is not None:
            return fn
    raise ConfigurationError(
        f"kernel {name!r} has no implementation reachable from backend "
        f"{backend!r} (registered: {sorted(spec.impls)})"
    )


def get_kernel(name: str, backend: Optional[str] = None) -> Callable:
    """The implementation of ``name`` for the active (or given) backend.

    Backends fall back down their tier chain for kernels they do not
    implement (``numba -> tuned -> reference``), so a partially
    implemented tier is usable, never broken.  The first dispatch of a
    not-yet-checked non-reference backend triggers :func:`self_check`
    — no tier serves a hot-path call before passing parity.
    """
    backend = backend or _active_backend
    if (
        backend != "reference"
        and backend not in _CHECKED
        and backend not in _CHECKING
    ):
        self_check(backend)
    return _impl_for(name, backend)


def available_backends() -> List[str]:
    """Backends that can actually serve kernels on this host.

    ``reference`` and ``tuned`` are always available; ``numba`` appears
    only when the numba import succeeds (auto-detection — the tier is
    not compiled until first use).
    """
    out = ["reference", "tuned"]
    from repro.kernels import numba_backend

    if numba_backend.numba_available():
        out.append("numba")
    return out


def resolve_backend(name: str) -> str:
    """Map a user-facing backend choice (``auto`` included) to a tier."""
    if name == "auto":
        return "numba" if "numba" in available_backends() else "tuned"
    if name not in BACKEND_TIERS:
        raise ConfigurationError(
            f"kernel backend must be one of {BACKEND_TIERS + ('auto',)}, "
            f"got {name!r}"
        )
    return name


def set_kernel_backend(name: str) -> None:
    """Select the kernel backend (process-global).

    ``"auto"`` picks the best available tier.  The first switch to a
    non-reference backend in a process runs :func:`self_check` for that
    backend — parity with reference is asserted before the tier serves
    a single call.
    """
    global _active_backend
    name = resolve_backend(name)
    if name == "numba":
        from repro.kernels import numba_backend

        if not numba_backend.numba_available():
            raise ConfigurationError(
                "numba kernel backend requested but numba is not "
                "installed; tuned/reference remain available"
            )
    if name != "reference" and name not in _CHECKED:
        self_check(name)
    _active_backend = name


def get_kernel_backend() -> str:
    """The active kernel backend tier."""
    return _active_backend


@contextmanager
def kernel_backend(name: str):
    """Temporarily select a kernel backend (restores on exit)."""
    previous = _active_backend
    set_kernel_backend(name)
    try:
        yield
    finally:
        set_kernel_backend(previous)


def self_check(backend: Optional[str] = None) -> int:
    """Assert every checked kernel of ``backend`` against reference.

    Runs each registered kernel's parity checker with the backend's
    implementation (honoring the fallback chain) against the reference
    implementation on synthetic inputs — exact equality for integer
    kernels, <= 1e-15 scale-relative for spectral accumulation.
    Returns the number of kernels checked; raises
    :class:`~repro.errors.ConfigurationError` on any mismatch.
    Results are cached per process, so the check runs once per
    backend, not once per call.
    """
    backend = resolve_backend(backend or _active_backend)
    checked = 0
    _CHECKING.add(backend)
    try:
        for name in kernel_names():
            spec = _REGISTRY[name]
            if spec.check is None:
                continue
            candidate = _impl_for(name, backend)
            ref = _impl_for(name, "reference")
            try:
                spec.check(candidate, ref)
            except AssertionError as exc:
                raise ConfigurationError(
                    f"kernel {name!r} backend {backend!r} failed parity "
                    f"self-check against reference: {exc}"
                ) from exc
            checked += 1
    finally:
        _CHECKING.discard(backend)
    _CHECKED.add(backend)
    return checked


def report() -> dict:
    """Environment + backend info (the ``bench envinfo`` payload).

    Embedded into every bench JSON section so recorded numbers carry
    the CPU count, library versions and the backends that actually
    executed.
    """
    import numpy as np

    from repro.dsp.fft_backend import get_fft_backend, plan_cache_info
    from repro.kernels import numba_backend

    try:
        import scipy

        scipy_version: Optional[str] = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a soft dependency
        scipy_version = None
    fft_name, fft_workers = get_fft_backend()
    return {
        "cpu_count": os.cpu_count() or 1,
        "numpy": np.__version__,
        "scipy": scipy_version,
        "numba": numba_backend.numba_version(),
        "has_bitwise_count": hasattr(np, "bitwise_count"),
        "kernel_backend": get_kernel_backend(),
        "kernel_backends_available": available_backends(),
        "kernels": kernel_names(),
        "fft_backend": fft_name,
        "fft_workers": fft_workers,
        "fft_plan_cache": plan_cache_info(),
    }
