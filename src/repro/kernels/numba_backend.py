"""Optional numba-compiled kernel tier (auto-detected, lazily built).

When numba is importable the integer hot kernels — popcount, the
Welch-grid segment popcount, the windowed block unpack and the
Bernoulli threshold-compare pack — register ``njit(parallel=True)``
implementations.  Compilation is deferred to the first call of each
kernel (importing this module never triggers LLVM), and the spectral
kernel is deliberately *not* reimplemented: FFT time dominates it and
the registry fallback chain serves the tuned tier's version.

When numba is absent everything here is inert: ``register()`` is a
no-op, :func:`repro.kernels.available_backends` omits the tier, and
selecting it raises a :class:`~repro.errors.ConfigurationError` —
skipped, never broken.  All compiled kernels are integer/bit exact,
so the registry self-check asserts them bit-identical to reference.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.kernels.registry import register_kernel

__all__ = ["numba_available", "numba_version", "register"]

_NUMBA = None
_IMPORT_TRIED = False

#: Lazily compiled dispatchers, keyed by kernel name.
_COMPILED: Dict[str, Callable] = {}


def _numba():
    global _NUMBA, _IMPORT_TRIED
    if not _IMPORT_TRIED:
        _IMPORT_TRIED = True
        try:
            import numba

            _NUMBA = numba
        except Exception:  # pragma: no cover - import-time env damage
            _NUMBA = None
    return _NUMBA


def numba_available() -> bool:
    """True when numba can be imported (tier auto-detection)."""
    return _numba() is not None


def numba_version() -> Optional[str]:
    """The numba version string, or ``None`` when unavailable."""
    nb = _numba()
    return getattr(nb, "__version__", None) if nb is not None else None


# ----------------------------------------------------------------------
# Compiled kernel builders (only ever called when numba imports)
# ----------------------------------------------------------------------
def _build_popcount():  # pragma: no cover - exercised by the CI numba leg
    numba = _numba()
    table = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    @numba.njit(parallel=True, cache=False)
    def _popcount_flat(arr, table, out):
        for i in numba.prange(arr.size):
            out[i] = table[arr[i]]

    def popcount(words: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(words, dtype=np.uint8)
        out = np.empty(arr.size, dtype=np.uint8)
        _popcount_flat(arr.reshape(-1), table, out)
        return out.reshape(arr.shape)

    return popcount


def _build_segment_ones():  # pragma: no cover - CI numba leg
    numba = _numba()
    table = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    @numba.njit(parallel=True, cache=False)
    def _segment_ones(words, n_segments, word_step, word_seg, table, out):
        for s in numba.prange(n_segments):
            lo = s * word_step
            total = np.int64(0)
            for w in range(lo, lo + word_seg):
                total += table[words[w]]
            out[s] = total

    def segment_ones(
        words: np.ndarray, n_samples: int, nperseg: int, step: int
    ) -> np.ndarray:
        n_segments = 1 + (n_samples - nperseg) // step
        out = np.empty(n_segments, dtype=np.int64)
        _segment_ones(
            np.ascontiguousarray(words, dtype=np.uint8),
            n_segments,
            step // 8,
            nperseg // 8,
            table,
            out,
        )
        return out

    return segment_ones


def _build_unpack_block():  # pragma: no cover - CI numba leg
    numba = _numba()

    @numba.njit(parallel=True, cache=False)
    def _unpack(words, start, n, bipolar, out):
        for i in numba.prange(n):
            idx = start + i
            bit = (words[idx >> 3] >> (7 - (idx & 7))) & 1
            if bipolar:
                out[i] = 2.0 * bit - 1.0
            else:
                out[i] = float(bit)

    def unpack_block(
        words: np.ndarray,
        start: int,
        stop: int,
        out: np.ndarray = None,
        bipolar: bool = True,
    ) -> np.ndarray:
        n = stop - start
        result = np.empty(n, dtype=np.float64) if out is None else out[:n]
        _unpack(
            np.ascontiguousarray(words, dtype=np.uint8),
            start,
            n,
            bipolar,
            result,
        )
        return result

    return unpack_block


def _build_bernoulli_pack():  # pragma: no cover - CI numba leg
    numba = _numba()

    @numba.njit(parallel=True, cache=False)
    def _pack(lanes, thresholds, n, out_words):
        for b in numba.prange(out_words.size):
            byte = 0
            base = b * 8
            for j in range(8):
                t = base + j
                if t < n and lanes[t] < thresholds[t]:
                    byte |= 1 << (7 - j)
            out_words[b] = byte

    def bernoulli_pack(
        raw: np.ndarray, thresholds: np.ndarray, out_words: np.ndarray
    ) -> np.ndarray:
        n = thresholds.size
        lanes = np.ascontiguousarray(raw).view(np.uint32)[:n]
        _pack(lanes, thresholds, n, out_words)
        return out_words

    return bernoulli_pack


_BUILDERS: Dict[str, Callable] = {
    "popcount": _build_popcount,
    "segment_ones": _build_segment_ones,
    "unpack_block": _build_unpack_block,
    "bernoulli_pack": _build_bernoulli_pack,
}


def _lazy(name: str) -> Callable:
    """A dispatcher that compiles the kernel on its first call."""

    def call(*args, **kwargs):
        fn = _COMPILED.get(name)
        if fn is None:  # pragma: no cover - CI numba leg
            fn = _BUILDERS[name]()
            _COMPILED[name] = fn
        return fn(*args, **kwargs)

    call.__name__ = f"numba_{name}"
    return call


def register() -> bool:
    """Register the compiled tier's kernels when numba is importable.

    Returns True when the tier registered.  Called once from
    :mod:`repro.kernels` at import; safe to call again (re-registration
    replaces the lazy dispatchers with identical ones).
    """
    if not numba_available():
        return False
    for name in _BUILDERS:  # pragma: no cover - CI numba leg
        register_kernel(name, "numba", _lazy(name))
    return True
