"""Multi-backend kernel tier for the reproduction's hot loops.

One registry (:mod:`repro.kernels.registry`) dispatches the hot
kernels — popcount segment-sum over packed words, bit-domain spectral
detrend, Bernoulli u32 threshold-compare synthesis, windowed block
unpack — across three implementation tiers:

- ``reference``: the plain-numpy PR 4 code paths, the parity baseline;
- ``tuned`` (default): cache-blocked numpy with preallocated FFT plans
  and the ``numpy.bitwise_count`` fast path;
- ``numba``: optional compiled tier, auto-detected and lazily built.

Select globally with :func:`set_kernel_backend` / the
``REPRO_KERNEL_BACKEND`` env var, or locally with the
:func:`kernel_backend` context manager; :func:`report` summarizes the
environment for benchmarks.  Every non-reference tier passes
:func:`self_check` (bit-identity, or <= 1e-15 scale-relative for the
spectral kernel) before it serves a single call.
"""

from repro.kernels import numba_backend as _numba_backend
from repro.kernels import reference, tuned  # noqa: F401  (register tiers)
from repro.kernels.registry import (
    BACKEND_TIERS,
    KernelSpec,
    available_backends,
    get_kernel,
    get_kernel_backend,
    kernel_backend,
    kernel_names,
    register_check,
    register_kernel,
    report,
    resolve_backend,
    self_check,
    set_kernel_backend,
)

_numba_backend.register()

__all__ = [
    "BACKEND_TIERS",
    "KernelSpec",
    "available_backends",
    "get_kernel",
    "get_kernel_backend",
    "kernel_backend",
    "kernel_names",
    "register_check",
    "register_kernel",
    "report",
    "resolve_backend",
    "self_check",
    "set_kernel_backend",
]
