"""Packed 1-bit record model: the bitstream as the hardware stores it.

The paper's digitizer emits one bit per sample, and the SoC stores
captures bit-packed in shared SRAM (section 4).  Representing those
records as float64 ``+/-1`` arrays — as the seed implementation did —
costs 64x the memory of the hardware format and dominates the transport
cost of multiprocess sweeps (pickling 8 MB per paper-scale record).

:class:`PackedBitstream` is the first-class packed record type: 8
samples per byte (``numpy.packbits`` order), bit ``1`` for ``+1`` and
bit ``0`` for ``-1``, carrying the sample rate and optional
spawn-seeded provenance so a record remains traceable to the generator
that produced it.  :class:`PackedRecordBatch` is the stacked form the
measurement engine ships through shared memory.  Both unpack to the
exact float64 ``+/-1`` arrays the float pipeline uses, so every
consumer (Welch kernels, normalization, Y-factor) sees bit-identical
values; blocked access (:meth:`PackedBitstream.unpack_range`,
:meth:`PackedBitstream.iter_blocks`) lets the DSP layer keep peak
memory at ~1 bit per stored sample by unpacking only one FFT block at
a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


def packed_words_required(n_samples: int) -> int:
    """Bytes needed to store ``n_samples`` 1-bit values (8 per byte)."""
    if n_samples < 0:
        raise ConfigurationError(f"n_samples must be >= 0, got {n_samples}")
    return (n_samples + 7) // 8


def _tail_mask(n_samples: int) -> int:
    """Bitmask of the valid (leading) bits in the final packed word."""
    used = n_samples % 8
    if used == 0:
        return 0xFF
    return (0xFF << (8 - used)) & 0xFF


@dataclass(frozen=True)
class RecordProvenance:
    """Where a packed record's random stream came from.

    ``spawn_key``/``entropy`` mirror the ``numpy.random.SeedSequence``
    fields of the generator that produced the record, so any record in
    a batch can be traced back to (and re-drawn from) its seed.
    ``rng_mode`` records which synthesis path drew the record —
    ``"compat"`` (per-record ``default_rng`` replay) or ``"philox"``
    (counter-based batch fill; see :mod:`repro.signals.batch_rng`) —
    since the two modes produce different realizations from the same
    seed identity.
    """

    entropy: Optional[int] = None
    spawn_key: Tuple[int, ...] = ()
    state: Optional[str] = None
    rng_mode: str = "compat"

    @classmethod
    def from_rng(
        cls,
        rng: np.random.Generator,
        state: Optional[str] = None,
        rng_mode: str = "compat",
    ) -> "RecordProvenance":
        """Capture the seed-sequence identity of a generator."""
        seq = rng.bit_generator.seed_seq
        entropy = getattr(seq, "entropy", None)
        spawn_key = tuple(getattr(seq, "spawn_key", ()) or ())
        if isinstance(entropy, (list, tuple)):
            entropy = int(entropy[0]) if entropy else None
        return cls(
            entropy=int(entropy) if entropy is not None else None,
            spawn_key=spawn_key,
            state=state,
            rng_mode=rng_mode,
        )

    def to_dict(self) -> dict:
        """Stable JSON-able form (the store's serialization contract).

        Round-trips exactly through :meth:`from_dict`: the dict holds
        only ints, strings and ``None``, with the spawn key as a list,
        so canonical-JSON digests of a provenance are identical before
        and after a disk round trip.
        """
        return {
            "entropy": self.entropy,
            "spawn_key": [int(k) for k in self.spawn_key],
            "state": self.state,
            "rng_mode": self.rng_mode,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecordProvenance":
        """Inverse of :meth:`to_dict` (equality-exact)."""
        entropy = data.get("entropy")
        return cls(
            entropy=int(entropy) if entropy is not None else None,
            spawn_key=tuple(int(k) for k in data.get("spawn_key", ())),
            state=data.get("state"),
            rng_mode=data.get("rng_mode", "compat"),
        )


def _as_sign_array(samples) -> np.ndarray:
    """Validate a +/-1 record of any numeric dtype, returned as-is."""
    arr = np.asarray(samples)
    if arr.dtype == bool:
        raise ConfigurationError(
            "boolean arrays are ambiguous for +/-1 bitstreams; convert "
            "explicitly (True->+1, False->-1) before packing"
        )
    if not np.all(np.abs(arr) == 1):
        bad = np.unique(np.asarray(arr, dtype=float)[np.abs(arr) != 1])
        raise ConfigurationError(
            f"bitstream must contain only +/-1 values, found {bad[:5]}"
        )
    return arr


class PackedBitstream:
    """An immutable 1-bit record stored 8 samples per byte.

    Parameters
    ----------
    words:
        ``uint8`` array of packed samples (``numpy.packbits`` bit
        order); padding bits beyond ``n_samples`` must be zero.
    n_samples:
        Number of valid samples.
    sample_rate:
        Sample rate in Hz.
    provenance:
        Optional :class:`RecordProvenance` of the generating stream.
    """

    __slots__ = ("words", "n_samples", "sample_rate", "provenance")

    def __init__(
        self,
        words: np.ndarray,
        n_samples: int,
        sample_rate: float,
        provenance: Optional[RecordProvenance] = None,
        validate: bool = True,
        copy: Optional[bool] = None,
    ):
        arr = np.asarray(words, dtype=np.uint8)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"packed words must be 1-D, got shape {arr.shape}"
            )
        n_samples = int(n_samples)
        if n_samples < 0:
            raise ConfigurationError(
                f"n_samples must be >= 0, got {n_samples}"
            )
        if arr.size != packed_words_required(n_samples):
            raise ConfigurationError(
                f"{n_samples} samples need {packed_words_required(n_samples)}"
                f" packed words, got {arr.size}"
            )
        if not np.isfinite(sample_rate) or sample_rate <= 0:
            raise ConfigurationError(
                f"sample_rate must be a positive finite number, got "
                f"{sample_rate!r}"
            )
        # Own the buffer so the record cannot drift under a caller's
        # writes; ``copy=False`` is the internal escape hatch for fresh
        # private arrays.  Either way the held array is frozen.
        if copy is None:
            copy = arr.flags.writeable and arr is words
        if copy:
            arr = arr.copy()
        if arr.flags.writeable:
            arr = arr.view()
            arr.setflags(write=False)
        object.__setattr__(self, "words", arr)
        object.__setattr__(self, "n_samples", n_samples)
        object.__setattr__(self, "sample_rate", float(sample_rate))
        object.__setattr__(self, "provenance", provenance)
        if validate:
            self.validate()

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("PackedBitstream is immutable")

    def __getstate__(self):
        return (self.words, self.n_samples, self.sample_rate, self.provenance)

    def __setstate__(self, state):
        # The immutability __setattr__ breaks the default slots
        # protocol, so restore (and re-freeze the unpickled words)
        # explicitly — records travel through the engine's process
        # backend by pickle.
        words, n_samples, sample_rate, provenance = state
        arr = np.asarray(words, dtype=np.uint8)
        if arr.flags.writeable:
            arr.setflags(write=False)
        object.__setattr__(self, "words", arr)
        object.__setattr__(self, "n_samples", n_samples)
        object.__setattr__(self, "sample_rate", sample_rate)
        object.__setattr__(self, "provenance", provenance)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def pack(
        cls,
        signal: Union[Waveform, np.ndarray, Sequence[float]],
        sample_rate: Optional[float] = None,
        provenance: Optional[RecordProvenance] = None,
    ) -> "PackedBitstream":
        """Pack a ``+/-1`` record (Waveform or array) into 1 bit/sample."""
        if isinstance(signal, Waveform):
            samples, rate = signal.samples, signal.sample_rate
        else:
            samples = np.asarray(signal)
            if samples.ndim != 1:
                raise ConfigurationError(
                    f"record must be 1-D, got shape {samples.shape}"
                )
            if sample_rate is None:
                raise ConfigurationError(
                    "sample_rate must be provided for raw arrays"
                )
            rate = float(sample_rate)
        samples = _as_sign_array(samples)
        words = np.packbits(samples > 0)
        return cls(
            words, samples.size, rate, provenance=provenance,
            validate=False, copy=False,
        )

    @classmethod
    def from_bits(
        cls,
        bits: np.ndarray,
        sample_rate: float,
        provenance: Optional[RecordProvenance] = None,
    ) -> "PackedBitstream":
        """Pack an already-thresholded 0/1 (or boolean) bit array."""
        arr = np.asarray(bits)
        if arr.ndim != 1:
            raise ConfigurationError(f"bits must be 1-D, got shape {arr.shape}")
        return cls(
            np.packbits(arr != 0),
            arr.size,
            sample_rate,
            provenance=provenance,
            validate=False,
            copy=False,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Bytes of packed storage (the real record footprint)."""
        return self.words.nbytes

    @property
    def duration(self) -> float:
        """Record length in seconds."""
        return self.n_samples / self.sample_rate

    def __len__(self) -> int:
        return self.n_samples

    def __eq__(self, other):
        if not isinstance(other, PackedBitstream):
            return NotImplemented
        return (
            self.n_samples == other.n_samples
            and self.sample_rate == other.sample_rate
            and bool(np.all(self.words == other.words))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedBitstream(n={self.n_samples}, fs={self.sample_rate:g} Hz, "
            f"{self.nbytes} B)"
        )

    def validate(self) -> None:
        """Check the packed invariant: padding bits are zero.

        Any packed word decodes to valid ``+/-1`` samples, so the only
        corruption a packed record can carry is nonzero padding in the
        final word (which would silently shift a round-trip).  This is
        the packed-domain counterpart of the float ``|x| == 1`` check —
        O(1) instead of O(n), no unpack round-trip.
        """
        if self.n_samples == 0 or self.n_samples % 8 == 0:
            return
        tail = int(self.words[-1])
        if tail & ~_tail_mask(self.n_samples) & 0xFF:
            raise ConfigurationError(
                f"packed bitstream has nonzero padding bits in the final "
                f"word (0x{tail:02x} with {self.n_samples % 8} valid bits)"
            )

    # ------------------------------------------------------------------
    # Unpacking
    # ------------------------------------------------------------------
    def unpack_bits(self) -> np.ndarray:
        """The raw 0/1 bits as ``uint8`` (1 byte/sample scratch)."""
        return np.unpackbits(self.words, count=self.n_samples)

    def unpack(self) -> np.ndarray:
        """The full record as a float64 ``+/-1`` array.

        Bit-exact inverse of :meth:`pack`: bit 1 -> ``+1.0``, bit 0 ->
        ``-1.0``.
        """
        out = self.unpack_bits().astype(np.float64)
        out *= 2.0
        out -= 1.0
        return out

    def unpack_range(
        self,
        start: int,
        stop: int,
        out: Optional[np.ndarray] = None,
        bipolar: bool = True,
    ) -> np.ndarray:
        """Unpack samples ``[start, stop)`` to float64 ``+/-1``.

        This is the blocked-access primitive the Welch kernels use: only
        the requested window is materialized, so a full-record PSD never
        holds more than one FFT block of floats.  ``out`` may supply a
        reusable destination buffer of length ``>= stop - start``.
        With ``bipolar=False`` the raw ``0/1`` bits come back as floats
        instead — the ``2b - 1`` mapping is skipped, which saves two
        full passes over the block for consumers (the bit-domain Welch
        path) that fold the affine map into later exact arithmetic.
        """
        if not 0 <= start <= stop <= self.n_samples:
            raise ConfigurationError(
                f"invalid range [{start}, {stop}) for {self.n_samples} samples"
            )
        if out is not None and out.shape[0] < stop - start:
            raise ConfigurationError(
                f"out buffer has {out.shape[0]} samples, need {stop - start}"
            )
        from repro.kernels import get_kernel

        return get_kernel("unpack_block")(
            self.words, start, stop, out=out, bipolar=bipolar
        )

    def iter_blocks(self, block_samples: int) -> Iterator[np.ndarray]:
        """Yield successive float64 ``+/-1`` blocks of the record."""
        if block_samples < 1:
            raise ConfigurationError(
                f"block_samples must be >= 1, got {block_samples}"
            )
        for start in range(0, self.n_samples, block_samples):
            yield self.unpack_range(
                start, min(start + block_samples, self.n_samples)
            )

    def to_waveform(self) -> Waveform:
        """The record as a float ``+/-1`` :class:`Waveform`."""
        return Waveform(self.unpack(), self.sample_rate)


class PackedRecordBatch:
    """A stack of equal-length packed records sharing one sample rate.

    The batched counterpart of :class:`PackedBitstream` — ``words`` is
    ``(n_records, n_words)`` ``uint8`` — and the transport format of
    the measurement engine's process backend: at paper scale a row is
    125 kB instead of the 8 MB float64 record.
    """

    __slots__ = ("words", "n_samples", "sample_rate", "provenance")

    def __init__(
        self,
        words: np.ndarray,
        n_samples: int,
        sample_rate: float,
        provenance: Optional[Sequence[Optional[RecordProvenance]]] = None,
        validate: bool = True,
        copy: Optional[bool] = None,
    ):
        arr = np.asarray(words, dtype=np.uint8)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"packed batch words must be 2-D, got shape {arr.shape}"
            )
        n_samples = int(n_samples)
        if arr.shape[1] != packed_words_required(n_samples):
            raise ConfigurationError(
                f"{n_samples} samples need {packed_words_required(n_samples)}"
                f" packed words per record, got {arr.shape[1]}"
            )
        # Own the buffer so the validated batch cannot drift under a
        # caller's writes.  ``copy=False`` is the internal/zero-copy
        # escape hatch (fresh private arrays, shared-memory views);
        # either way the held array is frozen.
        if copy is None:
            copy = arr.flags.writeable and arr is words
        if copy:
            arr = arr.copy()
        if arr.flags.writeable:
            arr = arr.view()
            arr.setflags(write=False)
        if not np.isfinite(sample_rate) or sample_rate <= 0:
            raise ConfigurationError(
                f"sample_rate must be a positive finite number, got "
                f"{sample_rate!r}"
            )
        prov: Optional[List[Optional[RecordProvenance]]]
        if provenance is not None:
            prov = list(provenance)
            if len(prov) != arr.shape[0]:
                raise ConfigurationError(
                    f"got {arr.shape[0]} records but {len(prov)} provenance "
                    "entries"
                )
        else:
            prov = None
        object.__setattr__(self, "words", arr)
        object.__setattr__(self, "n_samples", n_samples)
        object.__setattr__(self, "sample_rate", float(sample_rate))
        object.__setattr__(self, "provenance", prov)
        if validate:
            self.validate()

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("PackedRecordBatch is immutable")

    def __getstate__(self):
        return (self.words, self.n_samples, self.sample_rate, self.provenance)

    def __setstate__(self, state):
        words, n_samples, sample_rate, provenance = state
        arr = np.asarray(words, dtype=np.uint8)
        if arr.flags.writeable:
            arr.setflags(write=False)
        object.__setattr__(self, "words", arr)
        object.__setattr__(self, "n_samples", n_samples)
        object.__setattr__(self, "sample_rate", sample_rate)
        object.__setattr__(self, "provenance", provenance)

    # ------------------------------------------------------------------
    @classmethod
    def pack(
        cls,
        records: np.ndarray,
        sample_rate: float,
        provenance: Optional[Sequence[Optional[RecordProvenance]]] = None,
    ) -> "PackedRecordBatch":
        """Pack a ``(n_records, n_samples)`` ``+/-1`` stack."""
        arr = np.asarray(records)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"records must be 2-D, got shape {arr.shape}"
            )
        arr = _as_sign_array(arr)
        words = np.packbits(arr > 0, axis=-1)
        return cls(
            words, arr.shape[1], sample_rate, provenance=provenance,
            validate=False, copy=False,
        )

    @classmethod
    def from_records(
        cls, records: Sequence[PackedBitstream]
    ) -> "PackedRecordBatch":
        """Stack individual packed records (equal length and rate)."""
        records = list(records)
        if not records:
            raise ConfigurationError("cannot stack an empty record list")
        first = records[0]
        for rec in records[1:]:
            if rec.n_samples != first.n_samples:
                raise ConfigurationError(
                    f"record length mismatch: {first.n_samples} vs "
                    f"{rec.n_samples} samples"
                )
            if rec.sample_rate != first.sample_rate:
                raise ConfigurationError(
                    f"sample-rate mismatch: {first.sample_rate} vs "
                    f"{rec.sample_rate} Hz"
                )
        return cls(
            np.vstack([rec.words for rec in records]),
            first.n_samples,
            first.sample_rate,
            provenance=[rec.provenance for rec in records],
            validate=False,
            copy=False,
        )

    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        """Number of stacked records."""
        return self.words.shape[0]

    @property
    def nbytes(self) -> int:
        """Total packed bytes across the batch."""
        return self.words.nbytes

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_records, n_samples)`` — the logical (unpacked) shape."""
        return (self.words.shape[0], self.n_samples)

    def __len__(self) -> int:
        return self.words.shape[0]

    def __getitem__(self, index: int) -> PackedBitstream:
        prov = self.provenance[index] if self.provenance is not None else None
        return PackedBitstream(
            self.words[index],
            self.n_samples,
            self.sample_rate,
            provenance=prov,
            validate=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedRecordBatch(records={self.n_records}, "
            f"n={self.n_samples}, fs={self.sample_rate:g} Hz, "
            f"{self.nbytes} B)"
        )

    def validate(self) -> None:
        """Check zero padding bits on every record (no unpack)."""
        if self.n_samples == 0 or self.n_samples % 8 == 0:
            return
        bad = self.words[:, -1] & (~_tail_mask(self.n_samples) & 0xFF)
        if np.any(bad):
            rows = np.nonzero(bad)[0]
            raise ConfigurationError(
                f"packed batch has nonzero padding bits in record(s) "
                f"{rows[:5].tolist()}"
            )

    def records(self) -> List[PackedBitstream]:
        """All rows as individual :class:`PackedBitstream` objects."""
        return [self[i] for i in range(self.n_records)]

    def unpack(self) -> np.ndarray:
        """The whole batch as a ``(n_records, n_samples)`` float64 stack.

        Materializes the full float representation — use
        :meth:`__getitem__` plus blocked access when peak memory
        matters.
        """
        bits = np.unpackbits(self.words, axis=-1, count=self.n_samples)
        out = bits.astype(np.float64)
        out *= 2.0
        out -= 1.0
        return out


#: Anything the packed-aware layers accept as a record stack.
RecordsLike = Union[np.ndarray, PackedRecordBatch]


def is_packed(records) -> bool:
    """True when ``records`` is a packed record or batch."""
    return isinstance(records, (PackedBitstream, PackedRecordBatch))
