"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro run table2
    python -m repro run table3 --fast
    python -m repro run fig10
    python -m repro run production --backend process --workers 4

``--fast`` shrinks record lengths for a quick look; default sizes match
the benchmark suite (paper scale).  ``--backend``/``--workers`` pick
the execution backend for the sweep/production experiments: every
experiment of a ``run`` invocation shares one
:class:`~repro.engine.MeasurementScheduler` (and, on the process
backend, one persistent worker pool).
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.reporting.series import render_series
from repro.reporting.tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.scheduler import MeasurementScheduler

#: An experiment runner: (fast, scheduler) -> rendered table/series.
ExperimentRunner = Callable[[bool, "MeasurementScheduler"], str]


def _run_table1(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.table1 import run_table1

    result = run_table1()
    return render_table(
        ["NF (dB)", "F", "example"],
        [[r.nf_db, r.noise_factor, r.example] for r in result.rows],
        title="Table 1",
    )


def _run_table2(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.matlab_sim import MatlabSimConfig
    from repro.experiments.table2 import run_table2

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if fast else None
    result = run_table2(config, seed=2005)
    return render_table(
        ["method", "ratio", "F", "NF (dB)", "error (%)"],
        [
            [r.method, r.power_ratio, r.noise_factor, r.nf_db, r.ratio_error_pct]
            for r in result.rows
        ],
        title=f"Table 2 (true ratio {result.true_power_ratio:.4f})",
    )


def _run_table3(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.table3 import run_table3

    result = run_table3(
        mode="paper", n_samples=2**17 if fast else 2**20, seed=2005
    )
    return render_table(
        ["opamp", "expected (dB)", "measured (dB)", "error (dB)"],
        [
            [r.opamp, r.expected_nf_db, r.measured_nf_db, r.error_db]
            for r in result.rows
        ],
        title=f"Table 3 ({result.mode} mode)",
    )


def _run_fig7(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.fig7 import run_fig7
    from repro.experiments.matlab_sim import MatlabSimConfig

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if fast else None
    result = run_fig7(config, seed=2005)
    return render_table(
        ["state", "noise RMS", "ref amplitude", "crest factor"],
        [
            [s.state, s.noise_rms, s.reference_amplitude, s.crest_factor]
            for s in (result.hot, result.cold)
        ],
        title=f"Figure 7 (power ratio {result.rms_ratio_squared:.4f})",
    )


def _run_fig8(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.fig8 import run_fig8
    from repro.experiments.matlab_sim import MatlabSimConfig

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if fast else None
    result = run_fig8(config, seed=2005)
    return render_table(
        ["quantity", "hot", "cold"],
        [
            ["line power", result.line_power_hot, result.line_power_cold],
            ["floor density", result.floor_density_hot, result.floor_density_cold],
        ],
        title="Figure 8 (raw bitstream levels)",
    )


def _run_fig9(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.fig9 import run_fig9
    from repro.experiments.matlab_sim import MatlabSimConfig

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if fast else None
    result = run_fig9(config, seed=2005)
    return render_table(
        ["stage", "hot/cold floor ratio"],
        [
            ["before normalization", result.ratio_before],
            ["after normalization", result.ratio_after],
            ["true power ratio", result.true_power_ratio],
        ],
        title="Figure 9",
    )


def _run_fig10(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.fig10 import run_fig10

    result = run_fig10(n_average=2 if fast else 4, seed=2005, scheduler=sched)
    ok = [p for p in result.points if not p.failed]
    return render_series(
        [100 * p.reference_ratio for p in ok],
        [p.error_pct for p in ok],
        x_label="Vref/Vnoise (%)",
        y_label="error (%)",
        title="Figure 10",
    )


def _run_fig13(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.fig13 import run_fig13

    result = run_fig13(n_samples=2**17 if fast else 2**20, seed=2005)
    return render_table(
        ["quantity", "value"],
        [
            ["measured NF (dB)", result.bist.noise_figure_db],
            ["expected NF (dB)", result.expected_nf_db],
            ["Y (floor ratio)", result.floor_ratio_after],
        ],
        title="Figure 13",
    )


def _run_uncertainty(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.uncertainty import run_uncertainty

    result = run_uncertainty(
        end_to_end_n_samples=2**16 if fast else 2**18, seed=2005,
        scheduler=sched,
    )
    return render_table(
        ["NF (dB)", "sigma analytic (dB)", "MC std (dB)", "within 0.3 dB"],
        [
            [r.nf_db, r.sigma_nf_analytic_db, r.nf_std_montecarlo_db, r.within_p3db]
            for r in result.rows
        ],
        title="Uncertainty budget (5% hot-temperature error)",
    )


def _run_spot_nf(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.spot_nf import run_spot_nf

    result = run_spot_nf(n_samples=2**17 if fast else 2**19, seed=2005)
    return render_table(
        ["band (Hz)", "expected (dB)", "linear (dB)", "corrected (dB)"],
        [
            [
                f"{r.f_low_hz:.0f}-{r.f_high_hz:.0f}",
                r.expected_nf_db,
                r.measured_nf_db,
                r.corrected_nf_db,
            ]
            for r in result.rows
        ],
        title="Spot NF per octave band (flicker DUT)",
    )


def _run_resources(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.resources import run_resources

    result = run_resources(n_samples=2**16 if fast else 2**20, seed=2005)
    return render_table(
        ["resource", "value"],
        [
            ["1-bit capture memory (B)", result.onebit_memory_bytes],
            ["12-bit ADC memory (B)", result.adc_memory_bytes_12bit],
            ["saving", result.memory_saving_vs_12bit],
            ["DSP cycles", result.report.dsp_cycles],
            ["total test time (s)", result.report.total_test_time_s],
        ],
        title="SoC resources",
    )


def _run_production(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.production import run_production

    result = run_production(
        n_devices=8 if fast else 24,
        n_samples=2**15 if fast else 2**17,
        seed=2005,
        scheduler=sched,
    )
    return render_table(
        [
            "guardband (sigma)",
            "guardband (dB)",
            "pass",
            "retest",
            "fail",
            "escapes",
            "overkill",
        ],
        [
            [
                r.guardband_sigmas,
                r.guardband_db,
                r.outcome.n_pass,
                r.outcome.n_retest,
                r.outcome.n_fail,
                r.outcome.n_escapes,
                r.outcome.n_overkill,
            ]
            for r in result.rows
        ],
        title=(
            f"Production screen - {result.n_devices} devices, limit "
            f"{result.limit_db} dB, {result.n_plan_groups} plan group(s)"
        ),
    )


def _run_record_length(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.record_length import run_record_length

    lengths = (2**14, 2**15, 2**16) if fast else None
    kwargs = {} if lengths is None else {"lengths": lengths, "n_trials": 3}
    result = run_record_length(seed=2005, scheduler=sched, **kwargs)
    return render_table(
        ["n_samples", "trials", "NF mean (dB)", "NF std (dB)", "error (dB)"],
        [
            [p.n_samples, p.n_trials, p.nf_mean_db, p.nf_std_db, p.mean_error_db]
            for p in result.points
        ],
        title=(
            f"Record-length ablation (expected NF "
            f"{result.expected_nf_db:.2f} dB)"
        ),
    )


def _run_robustness(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.robustness import run_robustness

    result = run_robustness(
        n_samples=2**15 if fast else 2**18, seed=2005, scheduler=sched
    )
    return render_table(
        ["kind", "level", "NF (dB)", "shift (dB)"],
        [
            [
                p.kind,
                p.relative_level,
                "failed" if p.nf_db is None else p.nf_db,
                "-" if p.shift_db is None else p.shift_db,
            ]
            for p in result.points
        ],
        title=(
            f"Comparator robustness (baseline "
            f"{result.baseline_nf_db:.2f} dB)"
        ),
    )


def _run_gain_sensitivity(fast: bool, sched: MeasurementScheduler) -> str:
    from repro.experiments.gain_sensitivity import run_gain_sensitivity

    result = run_gain_sensitivity(
        n_samples=2**15 if fast else 2**17, seed=2005, scheduler=sched
    )
    return render_table(
        ["drift", "direct analytic (dB)", "direct sim (dB)", "Y-factor (dB)"],
        [
            [
                p.gain_drift,
                p.direct_error_analytic_db,
                p.direct_error_simulated_db,
                p.yfactor_error_simulated_db,
            ]
            for p in result.points
        ],
        title=(
            f"Gain-drift sensitivity (expected NF "
            f"{result.expected_nf_db:.2f} dB)"
        ),
    )


EXPERIMENTS: Dict[str, ExperimentRunner] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig13": _run_fig13,
    "uncertainty": _run_uncertainty,
    "resources": _run_resources,
    "spot_nf": _run_spot_nf,
    "production": _run_production,
    "record_length": _run_record_length,
    "robustness": _run_robustness,
    "gain_sensitivity": _run_gain_sensitivity,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Noise Figure Evaluation "
        "Using Low Cost BIST' (DATE 2005).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run.add_argument(
        "--fast",
        action="store_true",
        help="reduced record lengths for a quick look",
    )
    run.add_argument(
        "--backend",
        choices=("serial", "process"),
        default="serial",
        help="execution backend for the scheduler-driven experiments "
        "(production, record_length, robustness, gain_sensitivity, "
        "fig10, uncertainty); process = persistent worker pool; "
        "other experiments always run serial",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker cap for the process backend (default: CPU count)",
    )
    run.add_argument(
        "--rng-mode",
        choices=("compat", "philox"),
        default="compat",
        help="noise-synthesis mode for the scheduler-driven experiments: "
        "compat replays per-record generator streams bit for bit; "
        "philox is the fast counter-based mode (deterministic per "
        "seed, statistically equivalent, not bit-identical; largest "
        "gains on white-noise simulation benches, where records are "
        "synthesized directly as packed bits)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run" and args.workers is not None:
        if args.backend != "process":
            parser.error("--workers requires --backend process")
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    from repro.engine.scheduler import MeasurementScheduler

    # One scheduler per invocation: `run all --backend process` reuses a
    # single worker pool across every experiment.
    with MeasurementScheduler(
        backend=args.backend, max_workers=args.workers, rng_mode=args.rng_mode
    ) as sched:
        if args.experiment == "all":
            for name in sorted(EXPERIMENTS):
                print(EXPERIMENTS[name](args.fast, sched))
                print()
            return 0
        print(EXPERIMENTS[args.experiment](args.fast, sched))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
