"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro run table2
    python -m repro run table3 --fast
    python -m repro run fig10
    python -m repro run production --backend process --workers 4
    python -m repro run production --store ./nfstore --json
    python -m repro run record_length --store ./nfstore --resume
    python -m repro store ls ./nfstore
    python -m repro store info ./nfstore [KEY]
    python -m repro store gc ./nfstore
    python -m repro store compact ./nfstore
    python -m repro store evict ./nfstore --budget 100000000
    python -m repro store reindex ./nfstore
    python -m repro chaos --plan transient --seed 7 --backend process
    python -m repro serve --store ./nfstore --backend process
    python -m repro submit lot --param n_devices=24 --wait --json
    python -m repro stats --socket ./nfstore/service.sock
    python -m repro stats --socket ./nfstore/service.sock --watch
    python -m repro --log-level info --log-json serve --store ./nfstore

``--fast`` shrinks record lengths for a quick look; default sizes match
the benchmark suite (paper scale).  ``--backend``/``--workers`` pick
the execution backend for the sweep/production experiments: every
experiment of a ``run`` invocation shares one
:class:`~repro.engine.MeasurementScheduler` (and, on the process
backend, one persistent worker pool).  ``--store`` attaches a
persistent :class:`~repro.store.ResultStore` (measurements cache and
survive the process), ``--resume`` replays an interrupted sweep
computing only what the store is missing, and ``--json`` switches the
scheduler-driven production/record_length/robustness outputs to
machine-readable JSON.  ``--max-retries``/``--task-timeout`` configure
the process backend's fault tolerance (task retry budget and hung-
worker detection).  ``--kernel-backend``/``--fft-backend`` select the
compute tiers (``repro.kernels`` dispatch and the FFT library) for the
whole invocation — results are bit-identical across backends, only
wall-clock changes.  The ``store`` subcommand inspects, compacts
(``compact``: merge small payloads into per-shard packs), size-bounds
(``evict --budget``), reindexes (``reindex``: rebuild the persistent
enumeration index) and garbage-collects a store directory;
``run --cache-budget`` applies the same eviction online while a sweep
writes.  The ``chaos`` subcommand runs the
production screen under a named fault-injection plan and verifies the
flagship robustness guarantee from the shell: the faulted outcome must
be bit-identical to a fault-free run.  ``bench envinfo`` prints the
compute environment (CPU count, library versions, active backends)
that every benchmark JSON section embeds::

    python -m repro run production --kernel-backend tuned --fft-backend scipy
    python -m repro bench envinfo

``serve`` runs the supervised measurement daemon of
:mod:`repro.service` (write-ahead job journal, admission control,
graceful SIGTERM/SIGINT drain, liveness watchdog — see
docs/SERVICE.md), ``submit`` sends one measure/lot/retest job to it,
and ``stats`` asks a running daemon for its telemetry: the
ServiceReport by default, the raw Prometheus exposition with
``--prometheus``, refreshing in place with ``--watch`` (see
docs/OBSERVABILITY.md).  The global ``--log-level``/``--log-json``
flags route every diagnostic through :mod:`logging` — with
``--log-json`` each record is one JSON object carrying the active
trace span id and job key, joinable against the daemon's span
timelines.  Every long-running command is interrupt-safe:
SIGINT/SIGTERM drain the worker pool (killing hung workers after a
grace period) and exit with the distinct code 130 instead of
stranding processes.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.reporting.series import render_series
from repro.reporting.tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.scheduler import MeasurementScheduler

_LOG = logging.getLogger("repro.cli")


@dataclass(frozen=True)
class RunOptions:
    """Per-invocation options every experiment runner receives."""

    fast: bool = False
    resume: bool = False
    as_json: bool = False


#: An experiment runner: (options, scheduler) -> rendered output.
ExperimentRunner = Callable[[RunOptions, "MeasurementScheduler"], str]

#: Experiments whose runners honor ``--json`` / ``--resume`` (the
#: scheduler-driven, store-aware ones).
JSON_EXPERIMENTS = frozenset(
    {"production", "production_retest", "record_length", "robustness"}
)
RESUMABLE_EXPERIMENTS = JSON_EXPERIMENTS


def _dump_json(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True)


def _run_table1(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.table1 import run_table1

    result = run_table1()
    return render_table(
        ["NF (dB)", "F", "example"],
        [[r.nf_db, r.noise_factor, r.example] for r in result.rows],
        title="Table 1",
    )


def _run_table2(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.matlab_sim import MatlabSimConfig
    from repro.experiments.table2 import run_table2

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if opts.fast else None
    result = run_table2(config, seed=2005)
    return render_table(
        ["method", "ratio", "F", "NF (dB)", "error (%)"],
        [
            [r.method, r.power_ratio, r.noise_factor, r.nf_db, r.ratio_error_pct]
            for r in result.rows
        ],
        title=f"Table 2 (true ratio {result.true_power_ratio:.4f})",
    )


def _run_table3(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.table3 import run_table3

    result = run_table3(
        mode="paper", n_samples=2**17 if opts.fast else 2**20, seed=2005
    )
    return render_table(
        ["opamp", "expected (dB)", "measured (dB)", "error (dB)"],
        [
            [r.opamp, r.expected_nf_db, r.measured_nf_db, r.error_db]
            for r in result.rows
        ],
        title=f"Table 3 ({result.mode} mode)",
    )


def _run_fig7(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.fig7 import run_fig7
    from repro.experiments.matlab_sim import MatlabSimConfig

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if opts.fast else None
    result = run_fig7(config, seed=2005)
    return render_table(
        ["state", "noise RMS", "ref amplitude", "crest factor"],
        [
            [s.state, s.noise_rms, s.reference_amplitude, s.crest_factor]
            for s in (result.hot, result.cold)
        ],
        title=f"Figure 7 (power ratio {result.rms_ratio_squared:.4f})",
    )


def _run_fig8(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.fig8 import run_fig8
    from repro.experiments.matlab_sim import MatlabSimConfig

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if opts.fast else None
    result = run_fig8(config, seed=2005)
    return render_table(
        ["quantity", "hot", "cold"],
        [
            ["line power", result.line_power_hot, result.line_power_cold],
            ["floor density", result.floor_density_hot, result.floor_density_cold],
        ],
        title="Figure 8 (raw bitstream levels)",
    )


def _run_fig9(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.fig9 import run_fig9
    from repro.experiments.matlab_sim import MatlabSimConfig

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if opts.fast else None
    result = run_fig9(config, seed=2005)
    return render_table(
        ["stage", "hot/cold floor ratio"],
        [
            ["before normalization", result.ratio_before],
            ["after normalization", result.ratio_after],
            ["true power ratio", result.true_power_ratio],
        ],
        title="Figure 9",
    )


def _run_fig10(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.fig10 import run_fig10

    result = run_fig10(n_average=2 if opts.fast else 4, seed=2005, scheduler=sched)
    ok = [p for p in result.points if not p.failed]
    return render_series(
        [100 * p.reference_ratio for p in ok],
        [p.error_pct for p in ok],
        x_label="Vref/Vnoise (%)",
        y_label="error (%)",
        title="Figure 10",
    )


def _run_fig13(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.fig13 import run_fig13

    result = run_fig13(n_samples=2**17 if opts.fast else 2**20, seed=2005)
    return render_table(
        ["quantity", "value"],
        [
            ["measured NF (dB)", result.bist.noise_figure_db],
            ["expected NF (dB)", result.expected_nf_db],
            ["Y (floor ratio)", result.floor_ratio_after],
        ],
        title="Figure 13",
    )


def _run_uncertainty(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.uncertainty import run_uncertainty

    result = run_uncertainty(
        end_to_end_n_samples=2**16 if opts.fast else 2**18, seed=2005,
        scheduler=sched,
    )
    return render_table(
        ["NF (dB)", "sigma analytic (dB)", "MC std (dB)", "within 0.3 dB"],
        [
            [r.nf_db, r.sigma_nf_analytic_db, r.nf_std_montecarlo_db, r.within_p3db]
            for r in result.rows
        ],
        title="Uncertainty budget (5% hot-temperature error)",
    )


def _run_spot_nf(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.spot_nf import run_spot_nf

    result = run_spot_nf(n_samples=2**17 if opts.fast else 2**19, seed=2005)
    return render_table(
        ["band (Hz)", "expected (dB)", "linear (dB)", "corrected (dB)"],
        [
            [
                f"{r.f_low_hz:.0f}-{r.f_high_hz:.0f}",
                r.expected_nf_db,
                r.measured_nf_db,
                r.corrected_nf_db,
            ]
            for r in result.rows
        ],
        title="Spot NF per octave band (flicker DUT)",
    )


def _run_resources(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.resources import run_resources

    result = run_resources(n_samples=2**16 if opts.fast else 2**20, seed=2005)
    return render_table(
        ["resource", "value"],
        [
            ["1-bit capture memory (B)", result.onebit_memory_bytes],
            ["12-bit ADC memory (B)", result.adc_memory_bytes_12bit],
            ["saving", result.memory_saving_vs_12bit],
            ["DSP cycles", result.report.dsp_cycles],
            ["total test time (s)", result.report.total_test_time_s],
        ],
        title="SoC resources",
    )


def _guardband_rows_json(rows) -> List[dict]:
    return [
        {
            "guardband_sigmas": r.guardband_sigmas,
            "guardband_db": r.guardband_db,
            "n_pass": r.outcome.n_pass,
            "n_retest": r.outcome.n_retest,
            "n_fail": r.outcome.n_fail,
            "n_escapes": r.outcome.n_escapes,
            "n_overkill": r.outcome.n_overkill,
        }
        for r in rows
    ]


#: Guard-band sweep table shape, shared by production and retest.
_GUARDBAND_HEADERS = [
    "guardband (sigma)",
    "guardband (dB)",
    "pass",
    "retest",
    "fail",
    "escapes",
    "overkill",
]


def _guardband_table_rows(rows) -> List[list]:
    return [
        [
            r.guardband_sigmas,
            r.guardband_db,
            r.outcome.n_pass,
            r.outcome.n_retest,
            r.outcome.n_fail,
            r.outcome.n_escapes,
            r.outcome.n_overkill,
        ]
        for r in rows
    ]


def _run_production(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.production import run_production

    result = run_production(
        n_devices=8 if opts.fast else 24,
        n_samples=2**15 if opts.fast else 2**17,
        seed=2005,
        scheduler=sched,
        resume=opts.resume,
    )
    if opts.as_json:
        return _dump_json(
            {
                "experiment": "production",
                "limit_db": result.limit_db,
                "measurement_sigma_db": result.measurement_sigma_db,
                "n_devices": result.n_devices,
                "n_plan_groups": result.n_plan_groups,
                "true_nf_db": result.true_nf_db,
                "measured_nf_db": result.measured_nf_db,
                "rows": _guardband_rows_json(result.rows),
            }
        )
    return render_table(
        _GUARDBAND_HEADERS,
        _guardband_table_rows(result.rows),
        title=(
            f"Production screen - {result.n_devices} devices, limit "
            f"{result.limit_db} dB, {result.n_plan_groups} plan group(s)"
        ),
    )


def _run_production_retest(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.production import run_production_retest

    result = run_production_retest(
        n_devices=8 if opts.fast else 24,
        n_samples=2**15 if opts.fast else 2**17,
        seed=2005,
        scheduler=sched,
        resume=opts.resume,
    )
    if opts.as_json:
        return _dump_json(
            {
                "experiment": "production_retest",
                "limit_db": result.limit_db,
                "measurement_sigma_db": result.measurement_sigma_db,
                "retest_guardband_sigmas": result.retest_guardband_sigmas,
                "n_devices": result.n_devices,
                "n_retested": result.n_retested,
                "retest_indices": result.retest_indices,
                "initial_from_store": result.initial_from_store,
                "true_nf_db": result.true_nf_db,
                "initial_nf_db": result.initial_nf_db,
                "merged_nf_db": result.merged_nf_db,
                "rows": _guardband_rows_json(result.rows),
            }
        )
    return render_table(
        _GUARDBAND_HEADERS,
        _guardband_table_rows(result.rows),
        title=(
            f"Production retest - {result.n_retested}/{result.n_devices} "
            f"devices re-measured"
            + (" (initial screen from store)" if result.initial_from_store
               else "")
        ),
    )


def _run_record_length(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.record_length import run_record_length

    lengths = (2**14, 2**15, 2**16) if opts.fast else None
    kwargs = {} if lengths is None else {"lengths": lengths, "n_trials": 3}
    result = run_record_length(
        seed=2005, scheduler=sched, resume=opts.resume, **kwargs
    )
    if opts.as_json:
        return _dump_json(
            {
                "experiment": "record_length",
                "expected_nf_db": result.expected_nf_db,
                "points": [
                    {
                        "n_samples": p.n_samples,
                        "n_trials": p.n_trials,
                        "nf_mean_db": p.nf_mean_db,
                        "nf_std_db": p.nf_std_db,
                        "mean_error_db": p.mean_error_db,
                    }
                    for p in result.points
                ],
            }
        )
    return render_table(
        ["n_samples", "trials", "NF mean (dB)", "NF std (dB)", "error (dB)"],
        [
            [p.n_samples, p.n_trials, p.nf_mean_db, p.nf_std_db, p.mean_error_db]
            for p in result.points
        ],
        title=(
            f"Record-length ablation (expected NF "
            f"{result.expected_nf_db:.2f} dB)"
        ),
    )


def _run_robustness(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.robustness import run_robustness

    result = run_robustness(
        n_samples=2**15 if opts.fast else 2**18, seed=2005, scheduler=sched,
        resume=opts.resume,
    )
    if opts.as_json:
        return _dump_json(
            {
                "experiment": "robustness",
                "baseline_nf_db": result.baseline_nf_db,
                "expected_nf_db": result.expected_nf_db,
                "points": [
                    {
                        "kind": p.kind,
                        "relative_level": p.relative_level,
                        "nf_db": p.nf_db,
                        "shift_db": p.shift_db,
                    }
                    for p in result.points
                ],
            }
        )
    return render_table(
        ["kind", "level", "NF (dB)", "shift (dB)"],
        [
            [
                p.kind,
                p.relative_level,
                "failed" if p.nf_db is None else p.nf_db,
                "-" if p.shift_db is None else p.shift_db,
            ]
            for p in result.points
        ],
        title=(
            f"Comparator robustness (baseline "
            f"{result.baseline_nf_db:.2f} dB)"
        ),
    )


def _run_gain_sensitivity(opts: RunOptions, sched: MeasurementScheduler) -> str:
    from repro.experiments.gain_sensitivity import run_gain_sensitivity

    result = run_gain_sensitivity(
        n_samples=2**15 if opts.fast else 2**17, seed=2005, scheduler=sched
    )
    return render_table(
        ["drift", "direct analytic (dB)", "direct sim (dB)", "Y-factor (dB)"],
        [
            [
                p.gain_drift,
                p.direct_error_analytic_db,
                p.direct_error_simulated_db,
                p.yfactor_error_simulated_db,
            ]
            for p in result.points
        ],
        title=(
            f"Gain-drift sensitivity (expected NF "
            f"{result.expected_nf_db:.2f} dB)"
        ),
    )


EXPERIMENTS: Dict[str, ExperimentRunner] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig13": _run_fig13,
    "uncertainty": _run_uncertainty,
    "resources": _run_resources,
    "spot_nf": _run_spot_nf,
    "production": _run_production,
    "production_retest": _run_production_retest,
    "record_length": _run_record_length,
    "robustness": _run_robustness,
    "gain_sensitivity": _run_gain_sensitivity,
}


def _add_retry_arguments(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance knobs shared by ``run`` and ``chaos``."""
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-dispatch a failed task up to N times before dead-"
        "lettering it (process backend; default: 2)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="arm hung-worker detection: a task result overdue by this "
        "much gets the workers killed, respawned and the task "
        "re-dispatched (process backend; default: off)",
    )


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """The compute-tier knobs shared by ``run`` and ``chaos``."""
    parser.add_argument(
        "--kernel-backend",
        choices=("reference", "tuned", "numba", "auto"),
        default=None,
        metavar="TIER",
        help="kernel tier for the hot compute paths (reference/tuned/"
        "numba/auto; default: tuned, or REPRO_KERNEL_BACKEND); every "
        "tier is parity-checked against the reference before use, so "
        "results are identical — only wall-clock changes",
    )
    parser.add_argument(
        "--fft-backend",
        choices=("numpy", "scipy"),
        default=None,
        metavar="LIB",
        help="FFT library for the batched transforms (default: numpy); "
        "scipy's pocketfft is bit-identical and adds a workers= "
        "thread pool on multi-core hosts",
    )


def _apply_backend_flags(parser: argparse.ArgumentParser, args) -> None:
    """Select the requested compute tiers (process-global, workers
    inherit them through the pool initializer)."""
    from repro.errors import ConfigurationError

    if getattr(args, "kernel_backend", None) is not None:
        from repro.kernels import set_kernel_backend

        try:
            set_kernel_backend(args.kernel_backend)
        except ConfigurationError as exc:
            parser.error(str(exc))
    if getattr(args, "fft_backend", None) is not None:
        from repro.dsp.fft_backend import set_fft_backend

        # Parent-side analysis gets the full thread fan-out; worker
        # processes pin workers=1 through the pool initializer.
        workers = -1 if args.fft_backend == "scipy" else None
        try:
            set_fft_backend(args.fft_backend, workers=workers)
        except ConfigurationError as exc:
            parser.error(str(exc))


def _retry_policy(args):
    """The RetryPolicy the CLI flags describe (None = pool defaults)."""
    if args.max_retries is None and args.task_timeout is None:
        return None
    from repro.engine.scheduler import RetryPolicy

    kwargs = {}
    if args.max_retries is not None:
        kwargs["max_retries"] = args.max_retries
    if args.task_timeout is not None:
        kwargs["task_timeout_s"] = args.task_timeout
    return RetryPolicy(**kwargs)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Noise Figure Evaluation "
        "Using Low Cost BIST' (DATE 2005).",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="diagnostic verbosity on stderr (default: warning)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit diagnostics as one JSON object per line, each "
        "carrying the active trace span id and job key where known "
        "(joinable against the daemon's span timelines)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run.add_argument(
        "--fast",
        action="store_true",
        help="reduced record lengths for a quick look",
    )
    run.add_argument(
        "--backend",
        choices=("serial", "process"),
        default="serial",
        help="execution backend for the scheduler-driven experiments "
        "(production, record_length, robustness, gain_sensitivity, "
        "fig10, uncertainty); process = persistent worker pool; "
        "other experiments always run serial",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker cap for the process backend (default: CPU count)",
    )
    run.add_argument(
        "--rng-mode",
        choices=("compat", "philox"),
        default="compat",
        help="noise-synthesis mode for the scheduler-driven experiments: "
        "compat replays per-record generator streams bit for bit; "
        "philox is the fast counter-based mode (deterministic per "
        "seed, statistically equivalent, not bit-identical; largest "
        "gains on white-noise simulation benches, where records are "
        "synthesized directly as packed bits)",
    )
    run.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="attach a persistent result store: measurements of the "
        "scheduler-driven experiments are cached under provenance "
        "keys (cache hits are bit-identical to recomputes) and "
        "survive the process",
    )
    run.add_argument(
        "--cache-budget",
        type=int,
        default=None,
        metavar="BYTES",
        dest="cache_budget",
        help="cap the attached store's payload size: after warm writes "
        "the engine evicts oldest entries (outcomes stay pinned) "
        "until the store fits (requires --store)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="replay an interrupted sweep from the store, measuring "
        "only the missing tasks (requires --store; "
        + "/".join(sorted(RESUMABLE_EXPERIMENTS))
        + " only)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable JSON output ("
        + "/".join(sorted(JSON_EXPERIMENTS))
        + " only)",
    )
    _add_retry_arguments(run)
    _add_backend_arguments(run)
    chaos = sub.add_parser(
        "chaos",
        help="run the production screen under injected faults and "
        "verify the outcome matches a fault-free run bit for bit",
    )
    chaos.add_argument(
        "--plan",
        default="transient",
        help="fault plan name (see repro.faults.FAULT_PLANS; default: "
        "transient)",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="fault-injection seed (re-keys the plan's deterministic "
        "fault sequence; default: 0)",
    )
    chaos.add_argument(
        "--backend",
        choices=("serial", "process"),
        default="process",
        help="execution backend (default: process — worker-level faults "
        "need worker processes)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker cap for the process backend (default: CPU count)",
    )
    chaos.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="attach a result store to the faulted run: store-level "
        "faults (truncated/corrupted payloads) only fire on store "
        "writes, and a second, resumed pass exercises read-side "
        "quarantine and recovery",
    )
    chaos.add_argument(
        "--fast",
        action="store_true",
        help="reduced lot size and record length for a quick check",
    )
    _add_retry_arguments(chaos)
    _add_backend_arguments(chaos)
    store = sub.add_parser(
        "store", help="inspect, compact or garbage-collect a result store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    ls = store_sub.add_parser(
        "ls",
        help="list stored entries (persistent-index fast path; index "
        "stats go to stderr)",
    )
    info = store_sub.add_parser(
        "info", help="store summary, or one entry's metadata (JSON)"
    )
    gc = store_sub.add_parser(
        "gc", help="remove stale-schema entries and abandoned temp files"
    )
    compact = store_sub.add_parser(
        "compact",
        help="merge each shard's small payload files into one pack "
        "container (payload bytes are preserved exactly; reads "
        "resolve packs transparently)",
    )
    evict = store_sub.add_parser(
        "evict",
        help="evict oldest entries until the store fits a byte budget "
        "(production outcomes stay pinned unless --unpin-outcomes)",
    )
    reindex = store_sub.add_parser(
        "reindex",
        help="(re)build the persistent index from a tree walk and "
        "verify it (recovery path for legacy or damaged indexes)",
    )
    for sub_parser in (ls, info, gc, compact, evict, reindex):
        sub_parser.add_argument("dir", help="store directory")
    info.add_argument(
        "key",
        nargs="?",
        default=None,
        help="full key or unique prefix of one entry",
    )
    gc.add_argument(
        "--all",
        action="store_true",
        dest="gc_all",
        help="remove every entry, not just dead ones",
    )
    compact.add_argument(
        "--kind",
        action="append",
        dest="kinds",
        choices=("results", "records", "outcomes"),
        default=None,
        help="compact only this kind (repeatable; default: all kinds)",
    )
    evict.add_argument(
        "--budget",
        type=int,
        required=True,
        metavar="BYTES",
        help="target total payload size in bytes",
    )
    evict.add_argument(
        "--unpin-outcomes",
        action="store_true",
        help="allow evicting production outcome manifests too "
        "(default: outcomes are pinned — they are tiny and hold "
        "lot provenance)",
    )
    serve = sub.add_parser(
        "serve",
        help="run the supervised measurement daemon (journaled job "
        "queue over a Unix/TCP JSON-line socket; SIGTERM drains)",
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        required=True,
        help="result-store root; the job journal lives under "
        "<DIR>/service/ and every job resumes against this store",
    )
    serve.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="Unix socket path (default: <store>/service.sock)",
    )
    serve.add_argument(
        "--host",
        default=None,
        help="listen on TCP host:--port instead of a Unix socket",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="N",
        help="TCP port with --host (default: ephemeral, printed in the "
        "ready event)",
    )
    serve.add_argument(
        "--backend",
        choices=("serial", "process"),
        default="process",
        help="execution backend for the shared scheduler (default: "
        "process)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker cap for the process backend (default: CPU count)",
    )
    serve.add_argument(
        "--max-depth",
        type=int,
        default=64,
        metavar="N",
        help="admission-queue bound; submissions beyond it are shed "
        "with an explicit REJECTED(backpressure) response "
        "(default: 64)",
    )
    serve.add_argument(
        "--max-group-devices",
        type=int,
        default=8,
        metavar="N",
        help="devices per planned sub-batch — the drain/deadline/"
        "preemption granularity of bulk lots (default: 8)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long a drain waits for the in-flight sub-batch "
        "before killing workers (default: 30)",
    )
    serve.add_argument(
        "--watchdog-stall",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="liveness watchdog: a running job with no heartbeat and "
        "no pool progress for this long gets its workers killed and "
        "respawned (default: 60)",
    )
    serve.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on journal appends (accepted jobs still "
        "survive SIGKILL, but not power loss; for tests)",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the final ServiceReport as JSON when the daemon "
        "drains",
    )
    _add_retry_arguments(serve)
    _add_backend_arguments(serve)
    submit = sub.add_parser(
        "submit",
        help="submit one job to a running measurement daemon",
    )
    submit.add_argument(
        "kind",
        choices=("measure", "lot", "retest"),
        help="job kind (interactive measure jobs preempt bulk lots at "
        "sub-batch boundaries)",
    )
    submit.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="daemon Unix socket path",
    )
    submit.add_argument(
        "--host", default=None, help="daemon TCP host (with --port)"
    )
    submit.add_argument(
        "--port", type=int, default=0, metavar="N", help="daemon TCP port"
    )
    submit.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        default=None,
        help="one experiment parameter (repeatable; VALUE parsed as "
        "JSON, falling back to string)",
    )
    submit.add_argument(
        "--params",
        metavar="JSON",
        default=None,
        help="experiment parameters as one JSON object",
    )
    submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget from acceptance; an over-budget job is "
        "killed at its next sub-batch checkpoint",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job reaches a terminal state",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="socket timeout, and wait budget with --wait "
        "(default: 300)",
    )
    submit.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the ack (and terminal job state with --wait) as "
        "JSON",
    )
    stats = sub.add_parser(
        "stats",
        help="query a running daemon's telemetry (ServiceReport, "
        "Prometheus metrics, span traces)",
    )
    stats.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="daemon Unix socket path",
    )
    stats.add_argument(
        "--host", default=None, help="daemon TCP host (with --port)"
    )
    stats.add_argument(
        "--port", type=int, default=0, metavar="N", help="daemon TCP port"
    )
    stats.add_argument(
        "--watch",
        action="store_true",
        help="refresh the view every --interval seconds until "
        "interrupted",
    )
    stats.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period with --watch (default: 2)",
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="print the daemon's metrics in Prometheus text exposition "
        "format instead of the report view (scrape-friendly)",
    )
    stats.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="socket timeout (default: 10)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the raw stats report (and obs snapshot) as JSON",
    )
    bench = sub.add_parser(
        "bench", help="benchmark utilities (environment reporting)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_sub.add_parser(
        "envinfo",
        help="print the compute environment as JSON: CPU count, "
        "numpy/scipy/numba versions, active kernel and FFT backends "
        "(the same record every benchmark JSON section embeds)",
    )
    return parser


def _store_enumerate(store):
    """``(index, via)`` — persistent-index fast path, tree walk fallback.

    ``via`` is ``"index"`` (O(changed) segment replay, no walk) or
    ``"walk"`` (ground-truth directory walk; a warning points the user
    at ``store reindex`` so subsequent listings stay cheap).
    """
    fast = store.load_index()
    if fast is not None:
        return fast, "index"
    _LOG.warning(
        "store has no persistent index, enumerating via tree "
        "walk (run `store reindex` to build one)"
    )
    return store.index(), "walk"


def _store_main(args) -> int:
    """The ``store`` subcommand: ls / info / gc / compact / evict /
    reindex."""
    from repro.store import ResultStore

    store = ResultStore(args.dir)
    if args.store_command == "ls":
        index, via = _store_enumerate(store)
        for entry in index:
            print(f"{entry.key}  {entry.kind:8s}  {entry.nbytes:>10d} B")
        stats = store.index_stats()
        if stats is not None:
            # Stats go to stderr so stdout stays one parseable entry
            # per line.
            print(
                f"# index: {stats['n_entries']} entries, "
                f"{stats['n_segments']} segment(s), "
                f"{stats['index_bytes']} index B, "
                f"{stats['payload_bytes']} payload B (via {via})",
                file=sys.stderr,
            )
        return 0
    if args.store_command == "info":
        if args.key is None:
            index, via = _store_enumerate(store)
            summary = index.summary()
            summary["enumerated_via"] = via
            summary["index"] = store.index_stats()
            print(_dump_json(summary))
            return 0
        index, _ = _store_enumerate(store)
        matches = index.find(args.key)
        # One key may carry several kinds (a measurement's result plus
        # its pooled records); ambiguity means several *keys* matched.
        keys = {entry.key for entry in matches}
        if len(keys) != 1:
            print(
                f"key {args.key!r} matches {len(keys)} keys",
                file=sys.stderr,
            )
            return 1
        print(
            _dump_json(
                {
                    "key": matches[0].key,
                    "entries": [
                        {
                            "kind": entry.kind,
                            "nbytes": entry.nbytes,
                            "meta": store.read_meta(entry.kind, entry.key),
                        }
                        for entry in matches
                    ],
                }
            )
        )
        return 0
    if args.store_command == "compact":
        stats = store.compact(kinds=args.kinds or None)
        print(_dump_json(stats))
        return 0
    if args.store_command == "evict":
        pin_kinds = () if args.unpin_outcomes else ("outcomes",)
        stats = store.evict(args.budget, pin_kinds=pin_kinds)
        print(_dump_json(stats))
        return 0
    if args.store_command == "reindex":
        stats = store.rebuild_index()
        stats["verify"] = store.verify_index()
        print(_dump_json(stats))
        return 0 if stats["verify"]["consistent"] else 1
    removed = store.gc(all_entries=args.gc_all)
    print(_dump_json(removed))
    return 0


def _chaos_main(args) -> int:
    """The ``chaos`` subcommand: faulted run vs clean run, bit for bit.

    Runs the production screen once fault-free (the reference), once
    under the named fault plan, and — with ``--store`` — once more
    resumed against the store the faulted run damaged (read-side
    quarantine and recompute).  Prints a JSON report (injections by
    site, retry/respawn telemetry, per-group wall-clock) and exits
    non-zero unless every faulted outcome matches the reference
    exactly.
    """
    from repro.engine.scheduler import MeasurementScheduler
    from repro.experiments.production import run_production
    from repro.faults import inject, resolve_plan

    plan = resolve_plan(args.plan, seed=args.seed)
    policy = _retry_policy(args)
    kwargs = dict(
        n_devices=8 if args.fast else 24,
        n_samples=2**14 if args.fast else 2**17,
        seed=2005,
        report=True,
    )
    with MeasurementScheduler(
        backend=args.backend, max_workers=args.workers, retry=policy
    ) as sched:
        reference = run_production(scheduler=sched, **kwargs)

    store = None
    if args.store is not None:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    runs = []
    with inject(plan) as injector:
        with MeasurementScheduler(
            backend=args.backend,
            max_workers=args.workers,
            store=store,
            retry=policy,
        ) as sched:
            runs.append(("faulted", run_production(scheduler=sched, **kwargs)))
            if store is not None:
                # Second pass over the damaged store: corrupted entries
                # quarantine on read and recompute.
                runs.append(
                    (
                        "faulted_resume",
                        run_production(scheduler=sched, resume=True, **kwargs),
                    )
                )

    identical = all(
        r.measured_nf_db == reference.measured_nf_db for _, r in runs
    )
    print(
        _dump_json(
            {
                "plan": plan.describe(),
                "identical": identical,
                "injections": injector.summary(),
                "runs": {
                    name: r.run_report.describe() for name, r in runs
                },
            }
        )
    )
    return 0 if identical else 1


def _bench_main(args) -> int:
    """The ``bench`` subcommand: envinfo."""
    from repro.kernels import report

    print(_dump_json(report()))
    return 0


def _serve_main(args) -> int:
    """The ``serve`` subcommand: run the supervised daemon until drained.

    Prints a one-line ``ready`` JSON event (socket/host/port) once the
    listener is up, then serves until SIGTERM/SIGINT or a ``drain``
    request.  The exit code is the daemon's drain verdict: 0 when
    every acknowledged job finished, 70 (``EXIT_JOBS_DROPPED``) when
    jobs were left unfinished — they stay journaled, and restarting
    the daemon on the same store resumes them.
    """
    from repro.service import MeasurementService, ServiceConfig

    if args.host is None and args.port:
        _LOG.error("repro serve: --port requires --host")
        return 2
    config = ServiceConfig(
        store_root=args.store,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        backend=args.backend,
        max_workers=args.workers,
        max_depth=args.max_depth,
        max_group_devices=args.max_group_devices,
        drain_grace_s=args.drain_grace,
        watchdog_stall_s=args.watchdog_stall,
        journal_fsync=not args.no_fsync,
        retry=_retry_policy(args),
    )
    service = MeasurementService(config)

    def _ready(endpoint: dict) -> None:
        print(json.dumps({"event": "ready", **endpoint}), flush=True)

    code = service.run(ready_callback=_ready)
    report = service.report().describe()
    if args.as_json:
        print(
            _dump_json(
                {"event": "drained", "exit_code": code, "report": report}
            )
        )
    else:
        print(
            f"drained: {report['completed']} completed, "
            f"{report['failed']} failed, {report['dropped']} dropped, "
            f"{report['shed']} shed (exit {code})"
        )
    return code


def _service_address(args, command: str):
    """The daemon address the flags describe, or ``None`` (logged)."""
    if args.host is not None:
        return (args.host, args.port)
    if args.socket is not None:
        return args.socket
    _LOG.error(
        "repro %s: need --socket PATH or --host/--port", command
    )
    return None


def _render_stats(report: dict) -> str:
    """A compact human view of one ServiceReport dict."""
    pool = report.get("pool") or {}
    journal = report.get("journal") or {}
    lines = [
        (
            f"uptime {report.get('uptime_s', 0.0):.1f}s  "
            f"queue depth {report.get('queue_depth', 0)}  "
            f"draining {report.get('draining', False)}"
        ),
        (
            f"jobs: accepted {report.get('accepted', 0)}, "
            f"completed {report.get('completed', 0)}, "
            f"failed {report.get('failed', 0)}, "
            f"dropped {report.get('dropped', 0)}, "
            f"shed {report.get('shed', 0)}, "
            f"duplicates {report.get('duplicates', 0)}, "
            f"cached {report.get('cached_hits', 0)}"
        ),
        (
            f"kills: deadline {report.get('deadline_kills', 0)}, "
            f"watchdog {report.get('watchdog_kills', 0)}; "
            f"replayed {report.get('journal_replayed', 0)}"
        ),
        (
            f"journal: {journal.get('segments', 0)} segment(s), "
            f"{journal.get('bytes', 0)} B, "
            f"{report.get('records_since_rotate', 0)} record(s) since "
            f"rotation"
        ),
        (
            f"pool: attempts {pool.get('attempts', 0)}, "
            f"retries {pool.get('retries', 0)}, "
            f"timeouts {pool.get('timeouts', 0)}, "
            f"respawns {pool.get('respawns', 0)}, "
            f"spawns {pool.get('spawns', 0)}"
        ),
        (
            f"backends: kernel {report.get('kernel_backend', '?')}, "
            f"fft {report.get('fft_backend', '?')}"
        ),
    ]
    snap = report.get("obs")
    if snap:
        n_counters = len(snap.get("counters", ()))
        n_hists = len(snap.get("histograms", ()))
        lines.append(
            f"obs: {n_counters} counter(s), {n_hists} histogram(s) "
            f"(repro stats --prometheus for the full exposition)"
        )
    return "\n".join(lines)


def _stats_main(args) -> int:
    """The ``stats`` subcommand: one-shot or ``--watch`` telemetry view.

    Talks to a running daemon over the same socket ``submit`` uses:
    the ``stats`` op for the report view, the ``metrics`` op for
    ``--prometheus``.  ``--watch`` redraws every ``--interval``
    seconds until interrupted (exit 0 on Ctrl-C — stopping a watch is
    not an error).
    """
    from repro.service import ServiceClient
    from repro.service.client import ServiceConnectionError

    address = _service_address(args, "stats")
    if address is None:
        return 2
    interval = max(0.2, float(args.interval))
    first = True
    try:
        while True:
            try:
                with ServiceClient(
                    address, timeout_s=args.timeout
                ) as client:
                    if args.prometheus:
                        body = client.metrics().get("prometheus", "")
                    elif args.as_json:
                        body = _dump_json(client.stats())
                    else:
                        body = _render_stats(client.stats())
            except ServiceConnectionError as exc:
                _LOG.error("repro stats: %s", exc)
                return 1
            if args.watch and not first and not args.as_json:
                # Home + clear-to-end redraw keeps the view in place.
                sys.stdout.write("\x1b[H\x1b[2J")
            print(body, flush=True)
            if not args.watch:
                return 0
            first = False
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _submit_main(args) -> int:
    """The ``submit`` subcommand: one job to a running daemon.

    Submission is resilient by construction: the spec's content
    address is its idempotency token, so a lost connection is retried
    with a resubmit and at most one execution ever happens.
    """
    from repro.errors import ConfigurationError
    from repro.service import JobSpec, ServiceClient
    from repro.service.client import ServiceConnectionError

    params = {}
    if args.params is not None:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as exc:
            _LOG.error("repro submit: bad --params JSON: %s", exc)
            return 2
    for pair in args.param or []:
        key, sep, value = pair.partition("=")
        if not sep:
            _LOG.error(
                "repro submit: --param needs KEY=VALUE, got %r", pair
            )
            return 2
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    address = _service_address(args, "submit")
    if address is None:
        return 2
    try:
        spec = JobSpec(
            kind=args.kind, params=params, deadline_s=args.deadline
        )
    except ConfigurationError as exc:
        _LOG.error("repro submit: %s", exc)
        return 2
    try:
        with ServiceClient(address, timeout_s=args.timeout) as client:
            ack = client.submit_resilient(
                spec, wait=args.wait, wait_timeout_s=args.timeout
            )
    except ServiceConnectionError as exc:
        _LOG.error(
            "repro submit: %s", exc, extra={"key": spec.key()[:12]}
        )
        return 1
    if args.as_json:
        print(_dump_json(ack))
    else:
        line = f"{ack.get('status', 'error')} {ack.get('key', '')[:12]}"
        job = ack.get("job")
        if job is not None:
            line += f" -> {job['state']}"
            if job.get("error"):
                line += f" ({job['error']})"
        print(line)
    status = ack.get("status")
    if status not in ("accepted", "duplicate", "cached"):
        return 1
    if args.wait:
        job = ack.get("job") or {}
        return 0 if job.get("state") == "ok" else 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    ``run`` and ``chaos`` are interrupt-safe: SIGINT/SIGTERM raise
    through the scheduler context (persisting whatever each
    experiment already committed), the worker pool is drained with a
    kill-after-grace fallback for hung workers, and the process exits
    with the distinct code ``EXIT_INTERRUPTED`` (130).  ``serve``
    installs its own drain handlers in the daemon's event loop.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.obs.logs import setup_logging

    setup_logging(level=args.log_level, as_json=args.log_json)
    if args.command == "serve":
        _apply_backend_flags(parser, args)
        return _serve_main(args)
    if args.command == "submit":
        return _submit_main(args)
    if args.command == "stats":
        return _stats_main(args)
    from repro.service.lifecycle import (
        EXIT_INTERRUPTED,
        ServiceInterrupt,
        trap_signals,
    )

    try:
        with trap_signals():
            return _dispatch(parser, args)
    except ServiceInterrupt as exc:
        _LOG.warning(
            "interrupted by signal %s; worker pool drained, committed "
            "results persisted",
            exc.signum,
        )
        return EXIT_INTERRUPTED


def _dispatch(parser: argparse.ArgumentParser, args) -> int:
    """Everything except serve/submit (which manage their own signals)."""
    if args.command == "store":
        return _store_main(args)
    if args.command == "bench":
        return _bench_main(args)
    if args.command == "chaos":
        _apply_backend_flags(parser, args)
        return _chaos_main(args)
    if args.command == "run":
        _apply_backend_flags(parser, args)
        if args.workers is not None and args.backend != "process":
            parser.error("--workers requires --backend process")
        if args.resume and args.store is None:
            parser.error("--resume requires --store")
        if args.cache_budget is not None and args.store is None:
            parser.error("--cache-budget requires --store")
        if args.as_json and args.experiment not in JSON_EXPERIMENTS:
            parser.error(
                "--json supports " + "/".join(sorted(JSON_EXPERIMENTS))
            )
        if args.resume and args.experiment not in RESUMABLE_EXPERIMENTS:
            parser.error(
                "--resume supports " + "/".join(sorted(RESUMABLE_EXPERIMENTS))
            )
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    from repro.engine.scheduler import MeasurementScheduler

    store = None
    if args.store is not None:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    opts = RunOptions(
        fast=args.fast, resume=args.resume, as_json=args.as_json
    )
    # One scheduler per invocation: `run all --backend process` reuses a
    # single worker pool (and one store) across every experiment.
    with MeasurementScheduler(
        backend=args.backend,
        max_workers=args.workers,
        rng_mode=args.rng_mode,
        store=store,
        retry=_retry_policy(args),
        cache_budget_bytes=getattr(args, "cache_budget", None),
    ) as sched:
        try:
            if args.experiment == "all":
                for name in sorted(EXPERIMENTS):
                    print(EXPERIMENTS[name](opts, sched))
                    print()
                return 0
            print(EXPERIMENTS[args.experiment](opts, sched))
        except BaseException:
            # Interrupt (or any raise) mid-experiment: drain the pool
            # with a kill-after-grace fallback so hung workers cannot
            # block the exit, then let the signal/exception surface.
            from repro.service.lifecycle import drain_scheduler

            drain_scheduler(sched, kill_after_s=10.0, force_close=True)
            raise
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
