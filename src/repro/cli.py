"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro run table2
    python -m repro run table3 --fast
    python -m repro run fig10

``--fast`` shrinks record lengths for a quick look; default sizes match
the benchmark suite (paper scale).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.reporting.series import render_series
from repro.reporting.tables import render_table


def _run_table1(fast: bool) -> str:
    from repro.experiments.table1 import run_table1

    result = run_table1()
    return render_table(
        ["NF (dB)", "F", "example"],
        [[r.nf_db, r.noise_factor, r.example] for r in result.rows],
        title="Table 1",
    )


def _run_table2(fast: bool) -> str:
    from repro.experiments.matlab_sim import MatlabSimConfig
    from repro.experiments.table2 import run_table2

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if fast else None
    result = run_table2(config, seed=2005)
    return render_table(
        ["method", "ratio", "F", "NF (dB)", "error (%)"],
        [
            [r.method, r.power_ratio, r.noise_factor, r.nf_db, r.ratio_error_pct]
            for r in result.rows
        ],
        title=f"Table 2 (true ratio {result.true_power_ratio:.4f})",
    )


def _run_table3(fast: bool) -> str:
    from repro.experiments.table3 import run_table3

    result = run_table3(
        mode="paper", n_samples=2**17 if fast else 2**20, seed=2005
    )
    return render_table(
        ["opamp", "expected (dB)", "measured (dB)", "error (dB)"],
        [
            [r.opamp, r.expected_nf_db, r.measured_nf_db, r.error_db]
            for r in result.rows
        ],
        title=f"Table 3 ({result.mode} mode)",
    )


def _run_fig7(fast: bool) -> str:
    from repro.experiments.fig7 import run_fig7
    from repro.experiments.matlab_sim import MatlabSimConfig

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if fast else None
    result = run_fig7(config, seed=2005)
    return render_table(
        ["state", "noise RMS", "ref amplitude", "crest factor"],
        [
            [s.state, s.noise_rms, s.reference_amplitude, s.crest_factor]
            for s in (result.hot, result.cold)
        ],
        title=f"Figure 7 (power ratio {result.rms_ratio_squared:.4f})",
    )


def _run_fig8(fast: bool) -> str:
    from repro.experiments.fig8 import run_fig8
    from repro.experiments.matlab_sim import MatlabSimConfig

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if fast else None
    result = run_fig8(config, seed=2005)
    return render_table(
        ["quantity", "hot", "cold"],
        [
            ["line power", result.line_power_hot, result.line_power_cold],
            ["floor density", result.floor_density_hot, result.floor_density_cold],
        ],
        title="Figure 8 (raw bitstream levels)",
    )


def _run_fig9(fast: bool) -> str:
    from repro.experiments.fig9 import run_fig9
    from repro.experiments.matlab_sim import MatlabSimConfig

    config = MatlabSimConfig(n_samples=250_000, nperseg=5000) if fast else None
    result = run_fig9(config, seed=2005)
    return render_table(
        ["stage", "hot/cold floor ratio"],
        [
            ["before normalization", result.ratio_before],
            ["after normalization", result.ratio_after],
            ["true power ratio", result.true_power_ratio],
        ],
        title="Figure 9",
    )


def _run_fig10(fast: bool) -> str:
    from repro.experiments.fig10 import run_fig10

    result = run_fig10(n_average=2 if fast else 4, seed=2005)
    ok = [p for p in result.points if not p.failed]
    return render_series(
        [100 * p.reference_ratio for p in ok],
        [p.error_pct for p in ok],
        x_label="Vref/Vnoise (%)",
        y_label="error (%)",
        title="Figure 10",
    )


def _run_fig13(fast: bool) -> str:
    from repro.experiments.fig13 import run_fig13

    result = run_fig13(n_samples=2**17 if fast else 2**20, seed=2005)
    return render_table(
        ["quantity", "value"],
        [
            ["measured NF (dB)", result.bist.noise_figure_db],
            ["expected NF (dB)", result.expected_nf_db],
            ["Y (floor ratio)", result.floor_ratio_after],
        ],
        title="Figure 13",
    )


def _run_uncertainty(fast: bool) -> str:
    from repro.experiments.uncertainty import run_uncertainty

    result = run_uncertainty(
        end_to_end_n_samples=2**16 if fast else 2**18, seed=2005
    )
    return render_table(
        ["NF (dB)", "sigma analytic (dB)", "MC std (dB)", "within 0.3 dB"],
        [
            [r.nf_db, r.sigma_nf_analytic_db, r.nf_std_montecarlo_db, r.within_p3db]
            for r in result.rows
        ],
        title="Uncertainty budget (5% hot-temperature error)",
    )


def _run_spot_nf(fast: bool) -> str:
    from repro.experiments.spot_nf import run_spot_nf

    result = run_spot_nf(n_samples=2**17 if fast else 2**19, seed=2005)
    return render_table(
        ["band (Hz)", "expected (dB)", "linear (dB)", "corrected (dB)"],
        [
            [
                f"{r.f_low_hz:.0f}-{r.f_high_hz:.0f}",
                r.expected_nf_db,
                r.measured_nf_db,
                r.corrected_nf_db,
            ]
            for r in result.rows
        ],
        title="Spot NF per octave band (flicker DUT)",
    )


def _run_resources(fast: bool) -> str:
    from repro.experiments.resources import run_resources

    result = run_resources(n_samples=2**16 if fast else 2**20, seed=2005)
    return render_table(
        ["resource", "value"],
        [
            ["1-bit capture memory (B)", result.onebit_memory_bytes],
            ["12-bit ADC memory (B)", result.adc_memory_bytes_12bit],
            ["saving", result.memory_saving_vs_12bit],
            ["DSP cycles", result.report.dsp_cycles],
            ["total test time (s)", result.report.total_test_time_s],
        ],
        title="SoC resources",
    )


EXPERIMENTS: Dict[str, Callable[[bool], str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig13": _run_fig13,
    "uncertainty": _run_uncertainty,
    "resources": _run_resources,
    "spot_nf": _run_spot_nf,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Noise Figure Evaluation "
        "Using Low Cost BIST' (DATE 2005).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run.add_argument(
        "--fast",
        action="store_true",
        help="reduced record lengths for a quick look",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS):
            print(EXPERIMENTS[name](args.fast))
            print()
        return 0
    print(EXPERIMENTS[args.experiment](args.fast))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
