"""Task executors for the measurement engine's ``map_sweep``.

Two backends: plain in-process iteration and a process-pool fan-out.
Both receive one child generator per task (spawned by the caller from a
single seed), so a sweep's results are reproducible and independent of
the backend — a task sees the same generator whether it runs inline or
in a worker process (``numpy`` generators pickle with their full
state).

The process backend prefers a caller-supplied persistent
:class:`~repro.engine.scheduler.WorkerPool` (one pool spawn amortized
over a whole session of sweeps); without one it falls back to a
throwaway ``ProcessPoolExecutor`` per call.  Packed record payloads
found inside tasks travel through shared memory
(:func:`repro.engine.shm.publish_packed_tasks`) instead of pickle.

Worker functions must be picklable (module-level) for the process
backend; the serial backend accepts anything callable.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.engine.shm import (
    map_over_workers,
    publish_packed_tasks,
    resolve_shared_task,
)
from repro.errors import ConfigurationError


def _invoke(payload):
    fn, task, rng = payload
    return fn(task, rng)


def _invoke_shared(payload):
    """Worker entry for tasks carrying shared-memory record references."""
    fn, task, rng = payload
    handles: dict = {}
    try:
        return fn(resolve_shared_task(task, handles), rng)
    finally:
        for handle in handles.values():
            handle.close()


def run_serial(
    fn: Callable,
    tasks: Sequence,
    rngs: Sequence[np.random.Generator],
) -> List:
    """Run ``fn(task, rng)`` for each task, in order, in this process."""
    return [fn(task, rng) for task, rng in zip(tasks, rngs)]


def run_with_processes(
    fn: Callable,
    tasks: Sequence,
    rngs: Sequence[np.random.Generator],
    max_workers: Optional[int] = None,
    pool=None,
) -> List:
    """Run ``fn(task, rng)`` over a process pool; results keep task order.

    Each task ships with its own pre-spawned generator, so results are
    identical to :func:`run_serial` regardless of scheduling.  An empty
    task list returns ``[]`` without spawning any worker process.
    ``pool`` may supply a persistent
    :class:`~repro.engine.scheduler.WorkerPool` to reuse across calls;
    the pool then sizes the fan-out from its own worker cap and
    ``max_workers`` is not consulted.
    """
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be >= 1, got {max_workers}"
        )
    tasks = list(tasks)
    if not tasks:
        return []
    shared_tasks, blocks = publish_packed_tasks(tasks)
    worker = _invoke_shared if blocks else _invoke
    payloads = [(fn, task, rng) for task, rng in zip(shared_tasks, rngs)]
    try:
        if pool is not None:
            return pool.map(worker, payloads)
        workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        workers = max(1, min(workers, len(tasks)))
        return map_over_workers(worker, payloads, workers, None)
    finally:
        for block in blocks:
            block.close()
