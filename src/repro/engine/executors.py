"""Task executors for the measurement engine's ``map_sweep``.

Two backends: plain in-process iteration and a ``ProcessPoolExecutor``
fan-out.  Both receive one child generator per task (spawned by the
caller from a single seed), so a sweep's results are reproducible and
independent of the backend — a task sees the same generator whether it
runs inline or in a worker process (``numpy`` generators pickle with
their full state).

Worker functions must be picklable (module-level) for the process
backend; the serial backend accepts anything callable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


def _invoke(payload):
    fn, task, rng = payload
    return fn(task, rng)


def run_serial(
    fn: Callable,
    tasks: Sequence,
    rngs: Sequence[np.random.Generator],
) -> List:
    """Run ``fn(task, rng)`` for each task, in order, in this process."""
    return [fn(task, rng) for task, rng in zip(tasks, rngs)]


def run_with_processes(
    fn: Callable,
    tasks: Sequence,
    rngs: Sequence[np.random.Generator],
    max_workers: Optional[int] = None,
) -> List:
    """Run ``fn(task, rng)`` over a process pool; results keep task order.

    Each task ships with its own pre-spawned generator, so results are
    identical to :func:`run_serial` regardless of scheduling.
    """
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be >= 1, got {max_workers}"
        )
    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    workers = max(1, min(workers, len(tasks)))
    payloads = [(fn, task, rng) for task, rng in zip(tasks, rngs)]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_invoke, payloads))
