"""Shared-memory transport of packed record batches.

The engine's process backend used to pickle every record to its worker
— 8 MB of float64 per paper-scale record, which dominated the fan-out
cost.  With the packed record model the batch is written once into a
``multiprocessing.shared_memory`` block (1 bit/sample) and workers
attach read-only views; the only pickled payload per task is a small
descriptor plus the Welch parameters, and the only pickled result is
the PSD row (~40 kB).

:func:`welch_batch_shared` is the engine-facing entry point: it fans
the per-record Welch transforms of a :class:`~repro.bitstream.
PackedRecordBatch` over a ``ProcessPoolExecutor`` and returns the same
``(n_records, n_bins)`` PSD matrix the in-process kernel produces —
bit-identical, since workers run the identical blocked packed kernel.
Hosts without POSIX shared memory fall back to pickling the packed
words (still 64x smaller than the float records).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bitstream import PackedBitstream, PackedRecordBatch
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WelchParams:
    """The analysis parameters a worker needs (small, picklable)."""

    nperseg: int
    window: str
    overlap: float
    detrend: bool
    block_segments: int


@dataclass(frozen=True)
class SharedBatchDescriptor:
    """Locates a packed batch inside a shared-memory block."""

    shm_name: str
    n_records: int
    n_words: int
    n_samples: int
    sample_rate: float


class SharedPackedBatch:
    """A packed record batch published in POSIX shared memory.

    Context manager: the parent creates the block, copies the packed
    words in, hands :attr:`descriptor` to workers, and unlinks the
    block on exit.  Workers (see ``_shared_welch_worker``) attach by
    name, wrap the buffer in a zero-copy
    :class:`~repro.bitstream.PackedRecordBatch`, and close their
    handle when done.
    """

    def __init__(self, batch: PackedRecordBatch):
        if batch.n_records == 0:
            raise ConfigurationError("cannot share an empty record batch")
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, batch.nbytes)
        )
        view = np.ndarray(
            batch.words.shape, dtype=np.uint8, buffer=self._shm.buf
        )
        view[:] = batch.words
        self.descriptor = SharedBatchDescriptor(
            shm_name=self._shm.name,
            n_records=batch.n_records,
            n_words=batch.words.shape[1],
            n_samples=batch.n_samples,
            sample_rate=batch.sample_rate,
        )

    def __enter__(self) -> "SharedPackedBatch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release the parent handle and unlink the block."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


def _psd_rows(
    batch: PackedRecordBatch, indices: Sequence[int], params: WelchParams
) -> np.ndarray:
    """Welch PSD rows of the selected records (the shared kernel)."""
    from repro.dsp.psd import welch  # local: workers import lazily

    rows = np.empty((len(indices), params.nperseg // 2 + 1))
    for k, i in enumerate(indices):
        rows[k] = welch(
            batch[i],
            nperseg=params.nperseg,
            window=params.window,
            overlap=params.overlap,
            detrend=params.detrend,
            block_segments=params.block_segments,
        ).psd
    return rows


def _shared_welch_worker(payload) -> Tuple[List[int], np.ndarray]:
    """Process-pool worker: attach, transform its records, detach."""
    descriptor, indices, params = payload
    shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    try:
        words = np.ndarray(
            (descriptor.n_records, descriptor.n_words),
            dtype=np.uint8,
            buffer=shm.buf,
        )
        batch = PackedRecordBatch(
            words,
            descriptor.n_samples,
            descriptor.sample_rate,
            validate=False,
            copy=False,  # read-only view over the shared block
        )
        rows = _psd_rows(batch, indices, params)
    finally:
        shm.close()
    return list(indices), rows


def _pickled_welch_worker(payload) -> Tuple[List[int], np.ndarray]:
    """Fallback worker: the packed words travel by pickle (64x smaller
    than float records, but still copied per task)."""
    words, n_samples, sample_rate, indices, params = payload
    batch = PackedRecordBatch(
        words, n_samples, sample_rate, validate=False, copy=False
    )
    return list(indices), _psd_rows(batch, indices, params)


def _chunk_indices(n_records: int, n_chunks: int) -> List[List[int]]:
    chunks = np.array_split(np.arange(n_records), n_chunks)
    return [chunk.tolist() for chunk in chunks if chunk.size]


def welch_batch_shared(
    batch: PackedRecordBatch,
    params: WelchParams,
    max_workers: Optional[int] = None,
) -> np.ndarray:
    """Batched Welch PSDs computed by worker processes over shared memory.

    Returns the ``(n_records, n_bins)`` PSD matrix, rows in record
    order — bit-identical to the in-process packed kernel (same code
    runs in each worker).
    """
    import os

    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    workers = max(1, min(workers, batch.n_records))
    psd = np.empty((batch.n_records, params.nperseg // 2 + 1))
    chunks = _chunk_indices(batch.n_records, workers)
    try:
        shared: Optional[SharedPackedBatch] = SharedPackedBatch(batch)
    except (OSError, ValueError):  # pragma: no cover - no POSIX shm
        shared = None
    if shared is not None:
        with shared:
            payloads = [
                (shared.descriptor, chunk, params) for chunk in chunks
            ]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for indices, rows in pool.map(_shared_welch_worker, payloads):
                    psd[indices] = rows
    else:  # pragma: no cover - exercised only without /dev/shm
        payloads = [
            (batch.words, batch.n_samples, batch.sample_rate, chunk, params)
            for chunk in chunks
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for indices, rows in pool.map(_pickled_welch_worker, payloads):
                psd[indices] = rows
    return psd
