"""Shared-memory transport of packed record batches.

The engine's process backend used to pickle every record to its worker
— 8 MB of float64 per paper-scale record, which dominated the fan-out
cost.  With the packed record model the batch is written once into a
``multiprocessing.shared_memory`` block (1 bit/sample) and workers
attach read-only views; the only pickled payload per task is a small
descriptor plus the Welch parameters.

The *return* path is shared-memory too: the parent publishes a
:class:`SharedResultBlock` (one float64 row per record) alongside the
batch, workers write their PSD rows straight into it
(:func:`publish_results`) and ship only the row indices back through
the pool — the pickled result shrinks from ~40 kB of spectrum per
record to a few bytes of header.  Workers that fail to attach the
block (host without POSIX shm, injected fault) fall back to pickling
their rows, bit-identically — the bytes in the block are the bytes the
pickle would have carried.

:func:`welch_batch_shared` is the engine-facing entry point: it fans
the per-record Welch transforms of a :class:`~repro.bitstream.
PackedRecordBatch` over worker processes — a caller-supplied persistent
:class:`~repro.engine.scheduler.WorkerPool` or, failing that, a
throwaway ``ProcessPoolExecutor`` — and returns the same
``(n_records, n_bins)`` PSD matrix the in-process kernel produces —
bit-identical, since workers run the identical blocked packed kernel.
Hosts without POSIX shared memory fall back to pickling the packed
words (still 64x smaller than the float records).

:func:`publish_packed_tasks` extends the same transport to ``map_sweep``
payloads: packed records and batches found inside sweep tasks are
written once into shared-memory blocks and replaced by tiny row/batch
references, so sweep workers stop receiving pickled record bodies
altogether (:func:`resolve_shared_task` rebuilds them worker-side).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bitstream import PackedBitstream, PackedRecordBatch
from repro.errors import ConfigurationError
from repro.faults.injector import shm_fault
from repro import obs


@dataclass(frozen=True)
class WelchParams:
    """The analysis parameters a worker needs (small, picklable).

    ``bit_domain`` selects the popcount detrend fast path of the
    packed Welch kernel (engine fast mode; see
    :func:`repro.dsp.psd.accumulate_packed_spectral_power`).
    """

    nperseg: int
    window: str
    overlap: float
    detrend: bool
    block_segments: int
    bit_domain: bool = False
    #: Kernel backend tier the worker should analyze under (``None`` =
    #: the worker's own default).  Lets throwaway pools honor the
    #: parent's :func:`repro.kernels.set_kernel_backend` selection;
    #: persistent pools also pin it at spawn via their initializer.
    kernel_backend: Optional[str] = None


@dataclass(frozen=True)
class SharedBatchDescriptor:
    """Locates a packed batch inside a shared-memory block."""

    shm_name: str
    n_records: int
    n_words: int
    n_samples: int
    sample_rate: float


class SharedPackedBatch:
    """A packed record batch published in POSIX shared memory.

    Context manager: the parent creates the block, copies the packed
    words in, hands :attr:`descriptor` to workers, and unlinks the
    block on exit.  Workers (see ``_shared_welch_worker``) attach by
    name, wrap the buffer in a zero-copy
    :class:`~repro.bitstream.PackedRecordBatch`, and close their
    handle when done.
    """

    def __init__(self, batch: PackedRecordBatch):
        if batch.n_records == 0:
            raise ConfigurationError("cannot share an empty record batch")
        if shm_fault():
            # Injected publish failure: indistinguishable from a host
            # without (or out of) POSIX shared memory, so it exercises
            # the callers' pickled fallbacks.
            raise OSError("injected shared-memory publish failure")
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, batch.nbytes)
        )
        view = np.ndarray(
            batch.words.shape, dtype=np.uint8, buffer=self._shm.buf
        )
        view[:] = batch.words
        self.descriptor = SharedBatchDescriptor(
            shm_name=self._shm.name,
            n_records=batch.n_records,
            n_words=batch.words.shape[1],
            n_samples=batch.n_samples,
            sample_rate=batch.sample_rate,
        )

    def __enter__(self) -> "SharedPackedBatch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release the parent handle and unlink the block."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


@dataclass(frozen=True)
class SharedResultDescriptor:
    """Locates a float64 result matrix inside a shared-memory block."""

    shm_name: str
    n_records: int
    n_bins: int


class SharedResultBlock:
    """A ``(n_records, n_bins)`` float64 result matrix in shared memory.

    The return-path counterpart of :class:`SharedPackedBatch`: the
    parent creates the block before fanning tasks out, workers write
    their finished PSD rows into it (:func:`publish_results`) and ship
    only the row indices back, and the parent reads the rows straight
    out of :meth:`rows`.  Creation draws the same ``shm_publish``
    fault-injection site as the outbound batch, so chaos plans
    exercise the return direction's pickled fallback too.
    """

    def __init__(self, n_records: int, n_bins: int):
        if n_records <= 0 or n_bins <= 0:
            raise ConfigurationError(
                f"result block needs positive dims, got "
                f"({n_records}, {n_bins})"
            )
        if shm_fault():
            raise OSError("injected shared-memory result-publish failure")
        self._shm = shared_memory.SharedMemory(
            create=True, size=n_records * n_bins * 8
        )
        self.descriptor = SharedResultDescriptor(
            shm_name=self._shm.name, n_records=n_records, n_bins=n_bins
        )

    def rows(self) -> np.ndarray:
        """Parent-side view of the result matrix (valid until close)."""
        return np.ndarray(
            (self.descriptor.n_records, self.descriptor.n_bins),
            dtype=np.float64,
            buffer=self._shm.buf,
        )

    def __enter__(self) -> "SharedResultBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release the parent handle and unlink the block."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


def _as_slice(indices: Sequence[int]):
    """A slice for contiguous ascending indices, the list otherwise.

    Slice indexing scatters with one straight ``memcpy`` and gathers
    as a view (no temporary) — the common full-lot case where a worker
    owns a contiguous index range stays zero-copy on the gather side.
    """
    idx = list(indices)
    if idx and idx == list(range(idx[0], idx[0] + len(idx))):
        return slice(idx[0], idx[0] + len(idx))
    return idx


def publish_results(
    descriptor: SharedResultDescriptor,
    indices: Sequence[int],
    rows: np.ndarray,
) -> bool:
    """Worker-side: write finished rows into the shared result block.

    Returns False when the block cannot be attached or written (host
    without POSIX shm, block gone, injected fault upstream) — the
    caller then ships ``rows`` back by pickle instead, bit-identically.
    """
    try:
        shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    except (OSError, ValueError):
        return False
    try:
        view = np.ndarray(
            (descriptor.n_records, descriptor.n_bins),
            dtype=np.float64,
            buffer=shm.buf,
        )
        view[_as_slice(indices)] = rows
    finally:
        shm.close()
    return True


def collect_results(
    outcomes: Sequence[Tuple[List[int], Optional[np.ndarray]]],
    result_block: Optional[SharedResultBlock],
    psd: np.ndarray,
) -> None:
    """Merge worker outcomes into ``psd`` (parent-side).

    Workers that published into the shared result block returned
    ``(indices, None)`` — their rows are copied out of the block in one
    pass; pickled fallbacks carry their rows inline.
    """
    shared_indices: List[int] = []
    for indices, rows in outcomes:
        if rows is None:
            shared_indices.extend(indices)
        else:
            psd[_as_slice(indices)] = rows
    if shared_indices:
        if result_block is None:  # pragma: no cover - defensive
            raise ConfigurationError(
                "workers published rows to a shared result block the "
                "parent does not hold"
            )
        shared_indices.sort()
        select = _as_slice(shared_indices)
        psd[select] = result_block.rows()[select]


def _psd_rows(
    batch: PackedRecordBatch, indices: Sequence[int], params: WelchParams
) -> np.ndarray:
    """Welch PSD rows of the selected records (the shared kernel)."""
    from contextlib import nullcontext

    from repro.dsp.psd import welch  # local: workers import lazily
    from repro.kernels import kernel_backend

    select = (
        kernel_backend(params.kernel_backend)
        if params.kernel_backend
        else nullcontext()
    )
    rows = np.empty((len(indices), params.nperseg // 2 + 1))
    with select:
        for k, i in enumerate(indices):
            with obs.timed("worker.welch_row_seconds"):
                rows[k] = welch(
                    batch[i],
                    nperseg=params.nperseg,
                    window=params.window,
                    overlap=params.overlap,
                    detrend=params.detrend,
                    block_segments=params.block_segments,
                    bit_domain=params.bit_domain,
                ).psd
    obs.inc("worker.welch_rows", len(indices))
    return rows


def _return_rows(
    indices: Sequence[int],
    rows: np.ndarray,
    result_ref: Optional[SharedResultDescriptor],
) -> Tuple[List[int], Optional[np.ndarray]]:
    """Ship rows via the shared result block, falling back to pickle."""
    if result_ref is not None and publish_results(result_ref, indices, rows):
        obs.inc("shm.rows_published", len(indices))
        return list(indices), None
    obs.inc("shm.rows_pickled", len(indices))
    return list(indices), rows


def _shared_welch_worker(payload) -> Tuple[List[int], Optional[np.ndarray]]:
    """Process-pool worker: attach, transform its records, detach."""
    descriptor, indices, params, result_ref = payload
    shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    try:
        words = np.ndarray(
            (descriptor.n_records, descriptor.n_words),
            dtype=np.uint8,
            buffer=shm.buf,
        )
        batch = PackedRecordBatch(
            words,
            descriptor.n_samples,
            descriptor.sample_rate,
            validate=False,
            copy=False,  # read-only view over the shared block
        )
        rows = _psd_rows(batch, indices, params)
    finally:
        shm.close()
    return _return_rows(indices, rows, result_ref)


def _pickled_welch_worker(payload) -> Tuple[List[int], Optional[np.ndarray]]:
    """Fallback worker: the packed words travel by pickle (64x smaller
    than float records, but still copied per task)."""
    words, n_samples, sample_rate, indices, params, result_ref = payload
    batch = PackedRecordBatch(
        words, n_samples, sample_rate, validate=False, copy=False
    )
    return _return_rows(indices, _psd_rows(batch, indices, params), result_ref)


def _chunk_indices(n_records: int, n_chunks: int) -> List[List[int]]:
    chunks = np.array_split(np.arange(n_records), n_chunks)
    return [chunk.tolist() for chunk in chunks if chunk.size]


def map_over_workers(worker, payloads, workers: int, pool) -> List:
    """Fan payloads out — on the persistent pool when one is given."""
    if pool is not None:
        return pool.map(worker, payloads)
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(worker, payloads))


def welch_batch_shared(
    batch: PackedRecordBatch,
    params: WelchParams,
    max_workers: Optional[int] = None,
    pool=None,
) -> np.ndarray:
    """Batched Welch PSDs computed by worker processes over shared memory.

    Returns the ``(n_records, n_bins)`` PSD matrix, rows in record
    order — bit-identical to the in-process packed kernel (same code
    runs in each worker).  ``pool`` may supply a persistent
    :class:`~repro.engine.scheduler.WorkerPool`; without one a
    throwaway ``ProcessPoolExecutor`` is spawned for the call.

    Records travel out through a :class:`SharedPackedBatch` and PSD
    rows travel back through a :class:`SharedResultBlock`; either leg
    degrades independently to its pickled equivalent (no POSIX shm, or
    an injected ``shm_publish`` fault) with bit-identical results.
    """
    import os

    if pool is not None:
        workers = pool.max_workers
    elif max_workers is not None:
        workers = max_workers
    else:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, batch.n_records))
    n_bins = params.nperseg // 2 + 1
    psd = np.empty((batch.n_records, n_bins))
    chunks = _chunk_indices(batch.n_records, workers)
    try:
        with obs.timed("shm.publish_seconds"):
            shared: Optional[SharedPackedBatch] = SharedPackedBatch(batch)
    except (OSError, ValueError):  # no POSIX shm, or an injected fault
        shared = None
        obs.inc("shm.publish_fallbacks")
    try:
        result_block: Optional[SharedResultBlock] = SharedResultBlock(
            batch.n_records, n_bins
        )
    except (OSError, ValueError):  # no POSIX shm, or an injected fault
        result_block = None
    result_ref = result_block.descriptor if result_block is not None else None
    try:
        if shared is not None:
            payloads = [
                (shared.descriptor, chunk, params, result_ref)
                for chunk in chunks
            ]
            outcomes = map_over_workers(
                _shared_welch_worker, payloads, workers, pool
            )
        else:
            payloads = [
                (
                    batch.words,
                    batch.n_samples,
                    batch.sample_rate,
                    chunk,
                    params,
                    result_ref,
                )
                for chunk in chunks
            ]
            outcomes = map_over_workers(
                _pickled_welch_worker, payloads, workers, pool
            )
        with obs.timed("shm.collect_seconds"):
            collect_results(outcomes, result_block, psd)
    finally:
        if shared is not None:
            shared.close()
        if result_block is not None:
            result_block.close()
    return psd


# ----------------------------------------------------------------------
# Shared-memory sweep payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedRecordRef:
    """Stand-in for one :class:`PackedBitstream` inside a sweep task."""

    descriptor: SharedBatchDescriptor
    row: int
    provenance: object = None


@dataclass(frozen=True)
class SharedBatchRef:
    """Stand-in for a whole :class:`PackedRecordBatch` inside a task."""

    descriptor: SharedBatchDescriptor
    provenance: object = None


def _scan_payload(obj, found: List) -> None:
    """Collect packed records from a task without rebuilding it.

    Walks tuples, lists and dict values (the shapes sweep tasks take);
    every :class:`PackedBitstream` / :class:`PackedRecordBatch` lands
    in ``found`` once, in encounter order.
    """
    if isinstance(obj, (PackedBitstream, PackedRecordBatch)):
        found.append(obj)
    elif isinstance(obj, (tuple, list)):
        for item in obj:
            _scan_payload(item, found)
    elif isinstance(obj, dict):
        for item in obj.values():
            _scan_payload(item, found)


def _rebuild_tuple(obj: tuple, items: List) -> tuple:
    """Rebuild a tuple preserving NamedTuple subclasses."""
    if hasattr(obj, "_fields"):  # NamedTuple: keep the task's type
        return type(obj)(*items)
    return tuple(items)


def _rewrite_payload(obj, refs: Dict[int, object]):
    """Replace packed records in a task with their shared references."""
    if isinstance(obj, (PackedBitstream, PackedRecordBatch)):
        return refs[id(obj)]
    if isinstance(obj, tuple):
        return _rebuild_tuple(
            obj, [_rewrite_payload(item, refs) for item in obj]
        )
    if isinstance(obj, list):
        return [_rewrite_payload(item, refs) for item in obj]
    if isinstance(obj, dict):
        return {k: _rewrite_payload(v, refs) for k, v in obj.items()}
    return obj


def publish_packed_tasks(tasks: Sequence) -> Tuple[List, List]:
    """Move packed record payloads out of sweep tasks into shared memory.

    Scans every task (tuples / lists / dicts, recursively) for
    :class:`PackedBitstream` / :class:`PackedRecordBatch` payloads,
    writes them once into shared-memory blocks — individual records of
    equal length and rate coalesce into one block — and returns
    ``(rewritten_tasks, blocks)`` where each payload is replaced by a
    :class:`SharedRecordRef` / :class:`SharedBatchRef`.  The caller
    must keep the returned :class:`SharedPackedBatch` blocks open until
    every worker finished, then ``close()`` them.

    Tasks without packed payloads come back unchanged with no blocks;
    hosts without POSIX shared memory also fall back to the original
    tasks (the packed words then travel by pickle, still 64x smaller
    than float records).
    """
    tasks = list(tasks)
    found: List = []
    for task in tasks:
        _scan_payload(task, found)
    if not found:
        return tasks, []
    seen: set = set()
    found_records: List[PackedBitstream] = []
    found_batches: List[PackedRecordBatch] = []
    for obj in found:
        if id(obj) in seen:  # one row per object, however often shared
            continue
        seen.add(id(obj))
        if isinstance(obj, PackedBitstream):
            found_records.append(obj)
        else:
            found_batches.append(obj)

    blocks: List[SharedPackedBatch] = []
    refs: Dict[int, object] = {}
    try:
        # Equal-shape single records share one block, one row each.
        by_shape: Dict[Tuple[int, float], List[PackedBitstream]] = {}
        for record in found_records:
            by_shape.setdefault(
                (record.n_samples, record.sample_rate), []
            ).append(record)
        for group in by_shape.values():
            shared = SharedPackedBatch(PackedRecordBatch.from_records(group))
            blocks.append(shared)
            for row, record in enumerate(group):
                refs[id(record)] = SharedRecordRef(
                    shared.descriptor, row, record.provenance
                )
        for batch in found_batches:
            shared = SharedPackedBatch(batch)
            blocks.append(shared)
            refs[id(batch)] = SharedBatchRef(
                shared.descriptor, batch.provenance
            )
    except (OSError, ValueError):  # no POSIX shm, or an injected fault
        for block in blocks:
            block.close()
        return tasks, []

    rewritten = [_rewrite_payload(task, refs) for task in tasks]
    return rewritten, blocks


def _attach_words(
    descriptor: SharedBatchDescriptor,
    handles: Dict[str, shared_memory.SharedMemory],
) -> np.ndarray:
    if descriptor.shm_name not in handles:
        handles[descriptor.shm_name] = shared_memory.SharedMemory(
            name=descriptor.shm_name
        )
    return np.ndarray(
        (descriptor.n_records, descriptor.n_words),
        dtype=np.uint8,
        buffer=handles[descriptor.shm_name].buf,
    )


def resolve_shared_task(task, handles: Dict[str, shared_memory.SharedMemory]):
    """Worker-side inverse of :func:`publish_packed_tasks`.

    Rebuilds packed records from their shared-memory references.  The
    packed words are *copied* out of the shared block (a packed-size
    memcpy, 64x smaller than the floats) so the rebuilt records stay
    valid after the block is detached — sweep functions may stash or
    return them freely.
    """

    def walk(obj):
        if isinstance(obj, SharedRecordRef):
            words = _attach_words(obj.descriptor, handles)
            return PackedBitstream(
                words[obj.row].copy(),
                obj.descriptor.n_samples,
                obj.descriptor.sample_rate,
                provenance=obj.provenance,
                validate=False,
                copy=False,
            )
        if isinstance(obj, SharedBatchRef):
            words = _attach_words(obj.descriptor, handles)
            return PackedRecordBatch(
                words.copy(),
                obj.descriptor.n_samples,
                obj.descriptor.sample_rate,
                provenance=obj.provenance,
                validate=False,
                copy=False,
            )
        if isinstance(obj, tuple):
            return _rebuild_tuple(obj, [walk(item) for item in obj])
        if isinstance(obj, list):
            return [walk(item) for item in obj]
        if isinstance(obj, dict):
            return {k: walk(v) for k, v in obj.items()}
        return obj

    return walk(task)
