"""The batched measurement engine.

:class:`MeasurementEngine` turns the serial measurement loops of the
seed implementation into stacked-array batch runs:

* a single two-state NF measurement (:meth:`MeasurementEngine.measure`)
  acquires hot and cold records as one ``(2, n_samples)`` batch;
* a repeated measurement (:meth:`MeasurementEngine.run_batch`) stacks
  all ``2 * n_repeats`` records and produces every repeat's
  :class:`~repro.core.bist.BISTResult` from one batched Welch pass over
  the ``(n_records, n_segments, nperseg)`` framing;
* parameter sweeps (:meth:`MeasurementEngine.map_sweep`) fan out over
  tasks with per-task child seeds, in-process or on a
  ``ProcessPoolExecutor``.

Random-number discipline: the engine spawns child generators in exactly
the order the serial code paths do (``estimator.measure`` spawns
``(hot, cold)``; ``RepeatedMeasurement`` spawns one child per repeat
which then spawns ``(hot, cold)``), so every record is bit-exact equal
to its serial counterpart and results are reproducible from one seed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.core.bist import (
    BISTResult,
    OneBitNoiseFigureBIST,
    check_bitstream_samples,
)
from repro.dsp.psd import DEFAULT_BLOCK_SEGMENTS, welch_batch
from repro.dsp.spectrum import SpectrumBatch
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs

from repro.engine.executors import run_serial, run_with_processes

_BACKENDS = ("vectorized", "process")


@runtime_checkable
class BatchAcquirer(Protocol):
    """Anything that can capture a batch of bitstreams.

    Implementations return ``(bitstreams, sample_rate)`` where
    ``bitstreams`` is ``(n_records, n_samples)`` and row ``i`` is the
    record for ``(states[i], rngs[i])`` — bit-exact equal to the
    corresponding serial acquisition.  Both
    :class:`~repro.instruments.testbench.PrototypeTestbench` and
    :class:`~repro.experiments.matlab_sim.MatlabSimulation` implement
    this protocol.
    """

    def acquire_bitstreams(
        self, states: Sequence[str], rngs: Sequence[GeneratorLike]
    ) -> Tuple[np.ndarray, float]: ...


class MeasurementEngine:
    """Vectorized batch runner for 1-bit NF measurements and sweeps.

    Parameters
    ----------
    backend:
        ``"vectorized"`` keeps everything in-process (stacked-array
        batches); ``"process"`` additionally fans :meth:`map_sweep`
        tasks over a ``ProcessPoolExecutor``.
    max_workers:
        Worker cap for the process backend (default: CPU count).
    block_segments:
        Segments per batched FFT call in the Welch kernel (see
        :mod:`repro.dsp.psd`).
    """

    def __init__(
        self,
        backend: str = "vectorized",
        max_workers: Optional[int] = None,
        block_segments: int = DEFAULT_BLOCK_SEGMENTS,
    ):
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if block_segments < 1:
            raise ConfigurationError(
                f"block_segments must be >= 1, got {block_segments}"
            )
        self.backend = backend
        self.max_workers = max_workers
        self.block_segments = int(block_segments)

    # ------------------------------------------------------------------
    # Batched spectral estimation
    # ------------------------------------------------------------------
    def spectra_of(
        self,
        records: np.ndarray,
        sample_rate: float,
        estimator: OneBitNoiseFigureBIST,
    ) -> SpectrumBatch:
        """Welch PSDs of stacked bitstream records, batched.

        The batch counterpart of ``estimator.spectrum_of``: one blocked
        batched FFT pipeline over the ``(n_records, n_segments,
        nperseg)`` framing, with the estimator's analysis parameters.
        """
        config = estimator.config
        return welch_batch(
            records,
            nperseg=config.nperseg,
            sample_rate=sample_rate,
            window=config.window,
            overlap=config.overlap,
            detrend=True,
            block_segments=self.block_segments,
        )

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def measure(
        self,
        source: BatchAcquirer,
        estimator: OneBitNoiseFigureBIST,
        rng: GeneratorLike = None,
    ) -> BISTResult:
        """One two-state NF measurement with batched hot/cold records.

        Mirrors ``estimator.measure(source.acquire_bitstream, rng)``
        (same generator spawning, bit-exact records) but acquires both
        states as one stacked batch and shares one batched Welch pass.
        """
        gen = make_rng(rng)
        rng_hot, rng_cold = spawn_rngs(gen, 2)
        results = self._measure_pairs(
            source, estimator, [(rng_hot, rng_cold)], allow_failures=False
        )
        return results[0]

    def run_batch(
        self,
        source: BatchAcquirer,
        estimator: OneBitNoiseFigureBIST,
        n_repeats: int,
        rng: GeneratorLike = None,
        allow_failures: bool = False,
    ) -> List[Optional[BISTResult]]:
        """``n_repeats`` independent NF measurements as one batch.

        Mirrors the serial repeat loop of
        :class:`~repro.core.averaging.RepeatedMeasurement`: one child
        generator per repeat, each spawning its own hot/cold pair.  All
        ``2 * n_repeats`` records are acquired as a single stack and
        measured from one batched Welch pass.

        Returns one entry per repeat, in order.  With
        ``allow_failures``, repeats whose reference line is lost
        (:class:`~repro.errors.MeasurementError`) yield ``None`` instead
        of aborting the batch.
        """
        if n_repeats < 1:
            raise ConfigurationError(
                f"n_repeats must be >= 1, got {n_repeats}"
            )
        gen = make_rng(rng)
        pairs = [
            tuple(spawn_rngs(child, 2)) for child in spawn_rngs(gen, n_repeats)
        ]
        return self._measure_pairs(source, estimator, pairs, allow_failures)

    def _measure_pairs(
        self,
        source: BatchAcquirer,
        estimator: OneBitNoiseFigureBIST,
        pairs: Sequence[Tuple[np.random.Generator, np.random.Generator]],
        allow_failures: bool,
    ) -> List[Optional[BISTResult]]:
        states: List[str] = []
        rngs: List[np.random.Generator] = []
        for rng_hot, rng_cold in pairs:
            states += ["hot", "cold"]
            rngs += [rng_hot, rng_cold]
        records, sample_rate = source.acquire_bitstreams(states, rngs)
        records = np.asarray(records, dtype=float)
        if records.ndim != 2 or records.shape[0] != len(states):
            raise ConfigurationError(
                f"acquirer returned shape {records.shape} for "
                f"{len(states)} records"
            )
        if sample_rate != estimator.config.sample_rate_hz:
            raise ConfigurationError(
                f"acquired sample rate {sample_rate} Hz does not match "
                f"configured {estimator.config.sample_rate_hz} Hz"
            )
        check_bitstream_samples(records, "batched")
        batch = self.spectra_of(records, sample_rate, estimator)
        results: List[Optional[BISTResult]] = []
        for i in range(len(pairs)):
            try:
                results.append(
                    estimator.estimate_from_spectra(batch[2 * i], batch[2 * i + 1])
                )
            except MeasurementError:
                if not allow_failures:
                    raise
                results.append(None)
        return results

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def map_sweep(
        self,
        fn: Callable,
        tasks: Sequence,
        seed: GeneratorLike = None,
        rngs: Optional[Sequence[GeneratorLike]] = None,
    ) -> List:
        """Run ``fn(task, rng)`` over independent sweep tasks, in order.

        Each task receives its own child generator — spawned from
        ``seed`` unless an explicit ``rngs`` sequence is given (use the
        latter to keep seed-compatibility with an existing serial
        sweep).  The ``"process"`` backend distributes tasks over a
        ``ProcessPoolExecutor``; since the generators travel with the
        tasks, results are identical across backends.  ``fn`` must be a
        module-level callable for the process backend (pickling).
        """
        tasks = list(tasks)
        if rngs is None:
            rngs = spawn_rngs(make_rng(seed), len(tasks))
        else:
            rngs = list(rngs)
            if len(rngs) != len(tasks):
                raise ConfigurationError(
                    f"got {len(tasks)} tasks but {len(rngs)} generators"
                )
        if not tasks:
            return []
        if self.backend == "process":
            return run_with_processes(fn, tasks, rngs, self.max_workers)
        return run_serial(fn, tasks, rngs)


#: The ISSUE-facing short alias.
Engine = MeasurementEngine
