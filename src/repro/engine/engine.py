"""The batched measurement engine.

:class:`MeasurementEngine` turns the serial measurement loops of the
seed implementation into stacked-array batch runs:

* a single two-state NF measurement (:meth:`MeasurementEngine.measure`)
  acquires hot and cold records as one ``(2, n_samples)`` batch;
* a repeated measurement (:meth:`MeasurementEngine.run_batch`) stacks
  all ``2 * n_repeats`` records and produces every repeat's
  :class:`~repro.core.bist.BISTResult` from one batched Welch pass over
  the ``(n_records, n_segments, nperseg)`` framing;
* a multi-device screen (:meth:`MeasurementEngine.measure_devices`)
  stacks records across *different* DUT models — each device's analog
  chain runs with its own parameters and per-record noise densities,
  then every record shares one digitize pass (per-record reference
  rows) and one batched Welch pass;
* parameter sweeps (:meth:`MeasurementEngine.map_sweep`) fan out over
  tasks with per-task child seeds, in-process or on a
  ``ProcessPoolExecutor``.

Records travel packed by default (1 bit/sample,
:class:`~repro.bitstream.PackedRecordBatch`): acquirers that implement
the packed protocol hand back packed batches, the Welch kernels unpack
one FFT block at a time, and the process backend ships batches through
a shared-memory pool (:mod:`repro.engine.shm`) instead of pickling
float64 records.  Acquirers without a packed path keep working — the
engine falls back to float records transparently, and results are
identical either way (the packed pipeline is bit-exact).

Random-number discipline: the engine spawns child generators in exactly
the order the serial code paths do (``estimator.measure`` spawns
``(hot, cold)``; ``RepeatedMeasurement`` spawns one child per repeat
which then spawns ``(hot, cold)``), so every record is bit-exact equal
to its serial counterpart and results are reproducible from one seed.
"""

from __future__ import annotations

import functools
import inspect
import time
from dataclasses import dataclass
from typing import (
    Callable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.bitstream import PackedRecordBatch
from repro.core.bist import (
    BISTResult,
    OneBitNoiseFigureBIST,
    check_bitstream_samples,
)
from repro.digitizer.digitizer import OneBitDigitizer
from repro.dsp.psd import DEFAULT_BLOCK_SEGMENTS, _welch_grid, welch_batch
from repro.dsp.spectrum import SpectrumBatch
from repro.dsp.windows import get_window
from repro.errors import ConfigurationError, MeasurementError
from repro.faults.injector import active_injector
from repro.kernels import get_kernel_backend
from repro import obs
from repro.signals.batch_rng import validate_rng_mode
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.store.io import put_result_direct
from repro.store.keys import measurement_key
from repro.store.store import ResultStore

from repro.engine.executors import run_serial, run_with_processes
from repro.engine.scheduler import RetryPolicy, WorkerPool
from repro.engine.shm import WelchParams, welch_batch_shared

_BACKENDS = ("vectorized", "process")

#: Store interaction modes: whether cached results are consulted
#: (``read``) and whether fresh results are persisted (``write``).
_CACHE_MODES = ("off", "read", "write", "readwrite")

#: Smallest packed batch the process backend fans out to workers.  A
#: fresh ``ProcessPoolExecutor`` costs pool spawn + per-child import —
#: far more than transforming a hot/cold pair in-process — so tiny
#: batches (a single ``measure``) always stay local.
MIN_SHARED_WELCH_RECORDS = 4

#: Smallest ``(key, result)`` batch :meth:`MeasurementEngine.
#: persist_results` fans out to worker-direct store writes.  Below it
#: the parent writes inline — dispatch overhead would eat the win.
MIN_DIRECT_STORE_ITEMS = 4

#: Single-measurement writes between engine-side budget checks;
#: bounding the store costs an enumeration, so it is amortized.
_BUDGET_CHECK_EVERY = 32


@runtime_checkable
class BatchAcquirer(Protocol):
    """Anything that can capture a batch of bitstreams.

    Implementations return ``(bitstreams, sample_rate)`` where
    ``bitstreams`` is ``(n_records, n_samples)`` (or a
    :class:`~repro.bitstream.PackedRecordBatch` when asked for packed
    records) and row ``i`` is the record for ``(states[i], rngs[i])`` —
    bit-exact equal to the corresponding serial acquisition.  Both
    :class:`~repro.instruments.testbench.PrototypeTestbench` and
    :class:`~repro.experiments.matlab_sim.MatlabSimulation` implement
    this protocol (including the optional ``packed`` keyword).
    """

    def acquire_bitstreams(
        self, states: Sequence[str], rngs: Sequence[GeneratorLike]
    ) -> Tuple[np.ndarray, float]: ...


@runtime_checkable
class AnalogBatchAcquirer(Protocol):
    """A bench that can expose its analog chain for cross-device batching.

    ``acquire_analog_batch(states, rngs)`` runs the analog front-end
    only — per-record child generators spawned exactly as in
    ``acquire_bitstreams`` — and returns
    ``(analog, reference, dig_rngs, sample_rate, digitizer)``:

    * ``analog``: ``(n_records, n_samples)`` analog records;
    * ``reference``: the bench's comparator reference (1-D);
    * ``dig_rngs``: the per-record digitizer generators (already
      spawned, so a later shared ``digitize_batch`` is bit-exact);
    * ``sample_rate``: simulation rate in Hz;
    * ``digitizer``: the bench's :class:`OneBitDigitizer`.

    This is what lets :meth:`MeasurementEngine.measure_devices` stack
    records across different DUT models into one digitize + Welch pass.
    """

    def acquire_analog_batch(
        self, states: Sequence[str], rngs: Sequence[GeneratorLike]
    ) -> Tuple[np.ndarray, np.ndarray, list, float, OneBitDigitizer]: ...


def _accepts_kwarg(fn, name: str) -> bool:
    """Whether a callable takes a keyword argument.

    Third-party acquirers that predate ``packed=`` / ``rng_mode=``
    keep working — the engine only forwards knobs a signature admits.
    """
    try:
        return name in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


def _accepts_packed(acquire) -> bool:
    """True when an ``acquire_bitstreams`` implementation takes
    ``packed=`` (third-party float-only acquirers keep working)."""
    return _accepts_kwarg(acquire, "packed")


@dataclass(frozen=True)
class DeviceBatch:
    """An acquired multi-device record batch awaiting analysis.

    The intermediate of the two-phase
    :meth:`MeasurementEngine.acquire_devices` /
    :meth:`MeasurementEngine.analyze_devices` API that lets the
    scheduler overlap one plan group's (serial) acquisition with the
    previous group's Welch fan-out on the worker pool.  ``records`` is
    the hot/cold-interleaved stack (packed when the engine is),
    ``estimators`` one estimator per device.
    """

    records: Union[np.ndarray, "PackedRecordBatch"]
    sample_rate: float
    estimators: Tuple[OneBitNoiseFigureBIST, ...]

    @property
    def n_devices(self) -> int:
        return len(self.estimators)


class MeasurementEngine:
    """Vectorized batch runner for 1-bit NF measurements and sweeps.

    Parameters
    ----------
    backend:
        ``"vectorized"`` keeps everything in-process (stacked-array
        batches); ``"process"`` additionally fans :meth:`map_sweep`
        tasks over a ``ProcessPoolExecutor`` and computes batched Welch
        passes in worker processes fed from a shared-memory pool of
        packed records.
    max_workers:
        Worker cap for the process backend (default: CPU count).
    block_segments:
        Segments per batched FFT call in the Welch kernel (see
        :mod:`repro.dsp.psd`).
    packed:
        Acquire and transport records bit-packed (1 bit/sample) when
        the acquirer supports it.  Packed results are bit-exact equal
        to the float pipeline; disable only to A/B the two paths.
    pool:
        An existing :class:`~repro.engine.scheduler.WorkerPool` to
        share (e.g. one pool across several engines of a session).
        Without one, a ``"process"`` engine lazily creates — and owns —
        its own persistent pool on first fan-out; call :meth:`close`
        (or use the engine as a context manager) to release its worker
        processes.
    rng_mode:
        Noise-synthesis mode threaded to every acquirer that accepts
        it (see :mod:`repro.signals.batch_rng`): ``"compat"``
        (default) replays the per-record ``default_rng`` streams bit
        for bit; ``"philox"`` is the fast mode — counter-based 2-D
        noise fills (and, where the acquirer supports it, direct
        packed-record synthesis) plus the popcount bit-domain detrend
        in the packed Welch kernels.  Philox results are deterministic
        per seed and statistically equivalent to compat, not
        bit-identical.
    store:
        A :class:`~repro.store.ResultStore` to consult and fill.  With
        one attached, :meth:`measure` computes each measurement's
        provenance key (:meth:`task_key`) and returns the stored
        result on a hit — bit-identical to a recompute by the store's
        serialization contract — and planned scheduler runs persist
        and resume through the same keys.  Uncacheable tasks
        (``rng=None``, unfingerprintable sources) transparently bypass
        the store.
    cache:
        Store interaction mode: ``"readwrite"`` (default), ``"read"``
        (hit but never write — e.g. frozen golden stores), ``"write"``
        (record but never trust — cache-warming / validation runs) or
        ``"off"``.  Ignored without a ``store``.
    store_records:
        Also persist the pooled packed records behind each
        :meth:`measure` acquisition (under the measurement's own key),
        so later runs can re-analyze without re-acquiring — the
        provenance-allowing record reuse the retest planner exploits.
        Records are only stored for packed acquisitions (float stacks
        are 64x the size and transcode losslessly anyway).
    retry:
        A :class:`~repro.engine.scheduler.RetryPolicy` the engine's
        own worker pool runs under (task retries with backoff, hung-
        worker timeouts, pool respawn budget).  ``None`` uses the
        pool's defaults; ignored when an external ``pool`` is shared
        in (that pool keeps its own policy).
    cache_budget_bytes:
        Bound the attached store to a byte budget: after writes the
        engine evicts oldest entries (lot manifests stay pinned) until
        live payload bytes fit (see :meth:`ResultStore.evict
        <repro.store.ResultStore.evict>`).  Eviction is cache
        management — every evicted payload is recomputable from its
        provenance.  ``None`` (default) leaves the store unbounded.
    """

    def __init__(
        self,
        backend: str = "vectorized",
        max_workers: Optional[int] = None,
        block_segments: int = DEFAULT_BLOCK_SEGMENTS,
        packed: bool = True,
        pool: Optional[WorkerPool] = None,
        rng_mode: str = "compat",
        store: Optional[ResultStore] = None,
        cache: str = "readwrite",
        store_records: bool = False,
        retry: Optional[RetryPolicy] = None,
        cache_budget_bytes: Optional[int] = None,
    ):
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        if cache not in _CACHE_MODES:
            raise ConfigurationError(
                f"cache must be one of {_CACHE_MODES}, got {cache!r}"
            )
        if store is not None and not isinstance(store, ResultStore):
            raise ConfigurationError(
                f"store must be a ResultStore, got {type(store).__name__}"
            )
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if block_segments < 1:
            raise ConfigurationError(
                f"block_segments must be >= 1, got {block_segments}"
            )
        if cache_budget_bytes is not None and cache_budget_bytes < 1:
            raise ConfigurationError(
                f"cache_budget_bytes must be >= 1, got {cache_budget_bytes}"
            )
        self.backend = backend
        self.max_workers = max_workers
        self.block_segments = int(block_segments)
        self.packed = bool(packed)
        self.rng_mode = validate_rng_mode(rng_mode)
        self.store = store
        self.cache = cache
        self.store_records = bool(store_records)
        self.retry = retry
        self.cache_budget_bytes = (
            int(cache_budget_bytes) if cache_budget_bytes is not None else None
        )
        self._pool = pool
        self._owns_pool = pool is None
        # Writes since the last budget check — bounding the store is
        # O(entries), so it runs every _BUDGET_CHECK_EVERY single
        # writes (and after every group persist), not per write.
        self._budget_writes = 0

    # ------------------------------------------------------------------
    # Result store
    # ------------------------------------------------------------------
    @property
    def cache_reads(self) -> bool:
        """Whether stored results are consulted before measuring."""
        return self.store is not None and self.cache in ("read", "readwrite")

    @property
    def cache_writes(self) -> bool:
        """Whether fresh results are persisted to the store."""
        return self.store is not None and self.cache in ("write", "readwrite")

    def task_key(
        self,
        source,
        estimator: OneBitNoiseFigureBIST,
        rng: GeneratorLike,
    ) -> Optional[str]:
        """Content address of ``measure(source, estimator, rng)``.

        ``None`` when no store is attached or the task is uncacheable —
        an OS-entropy seed (``rng=None``) or a source the fingerprinter
        cannot reduce deterministically.  Uncacheable tasks simply run
        without store participation; they are never an error.
        """
        if self.store is None:
            return None
        try:
            return measurement_key(
                source, estimator, rng, rng_mode=self.rng_mode
            )
        except (ConfigurationError, TypeError, ValueError):
            # Unfingerprintable source/estimator: uncacheable, not fatal.
            return None

    def persist_results(self, items: Sequence[Tuple[str, BISTResult]]) -> int:
        """Persist ``(key, result)`` pairs; returns how many were new.

        The warm-write fast path: on the process backend, when the
        engine's pool ships this store's root to its workers (see
        :attr:`~repro.engine.scheduler.WorkerPool.store_root`) and no
        fault injector is active, serialization and publish fan out to
        the workers — each writes its shard directly, eliminating the
        parent round-trip.  Otherwise (serial backend, shared pool on a
        different store, tiny batches, chaos runs — store-damage
        decisions are drawn parent-side, so injected runs keep the
        parent-funneled path and their deterministic fault streams) the
        parent writes inline.  Both paths run the same serialization
        and sealing code, so the bytes on disk are identical.
        """
        items = [
            (key, result)
            for key, result in items
            if key is not None and result is not None
        ]
        if not items or not self.cache_writes:
            return 0
        pool = self.worker_pool
        if (
            pool is not None
            and pool.store_root == str(self.store.root)
            and len(items) >= MIN_DIRECT_STORE_ITEMS
            and active_injector() is None
        ):
            written = sum(map(bool, pool.map(put_result_direct, items)))
            obs.inc("engine.persist_direct", len(items))
        else:
            written = sum(
                bool(self.store.put_result(key, result))
                for key, result in items
            )
            obs.inc("engine.persist_parent", len(items))
        self._budget_writes += written
        self._maybe_enforce_budget(force=True)
        return written

    def _maybe_enforce_budget(self, force: bool = False) -> None:
        """Evict down to ``cache_budget_bytes`` when due (amortized)."""
        if self.cache_budget_bytes is None or self.store is None:
            return
        if not force and self._budget_writes < _BUDGET_CHECK_EVERY:
            return
        self._budget_writes = 0
        if self.store.approx_total_bytes() > self.cache_budget_bytes:
            self.store.evict(self.cache_budget_bytes)

    # ------------------------------------------------------------------
    # Pool lifetime
    # ------------------------------------------------------------------
    @property
    def worker_pool(self) -> Optional[WorkerPool]:
        """The persistent pool behind every process fan-out.

        Created lazily (spawning workers costs real time, so a
        ``"process"`` engine that never fans out never pays it) and
        reused across ``map_sweep`` calls and batched Welch passes.
        ``None`` on the in-process backend.
        """
        if self.backend != "process":
            return None
        if self._pool is None:
            # Workers of a write-capable store-backed engine get the
            # store root shipped through the pool initializer, so
            # planned runs can publish results worker-direct.
            self._pool = WorkerPool(
                max_workers=self.max_workers,
                policy=self.retry,
                store_root=(
                    str(self.store.root) if self.cache_writes else None
                ),
            )
        return self._pool

    def close(self) -> None:
        """Release the engine's worker processes (idempotent).

        Only a pool the engine created itself is shut down; a pool
        passed in by the caller stays the caller's responsibility.  The
        engine remains usable — the next fan-out respawns.
        """
        if self._owns_pool and self._pool is not None:
            self._pool.close()
        self._maybe_enforce_budget(force=True)

    def __enter__(self) -> "MeasurementEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def bit_domain(self) -> bool:
        """Whether the packed Welch kernels run the popcount fast path.

        On in philox mode only: the bit-domain detrend matches the
        float path to <= 1e-10 instead of bit-for-bit, and compat mode
        guarantees bit-identity end to end.
        """
        return self.rng_mode == "philox"

    # ------------------------------------------------------------------
    # Batched spectral estimation
    # ------------------------------------------------------------------
    def spectra_of(
        self,
        records: Union[np.ndarray, PackedRecordBatch],
        sample_rate: float,
        estimator: OneBitNoiseFigureBIST,
    ) -> SpectrumBatch:
        """Welch PSDs of stacked bitstream records, batched.

        The batch counterpart of ``estimator.spectrum_of``: one blocked
        batched FFT pipeline over the ``(n_records, n_segments,
        nperseg)`` framing, with the estimator's analysis parameters.
        ``records`` may be a float stack or a
        :class:`~repro.bitstream.PackedRecordBatch`; packed batches of
        at least :data:`MIN_SHARED_WELCH_RECORDS` records on the
        ``"process"`` backend are shipped to worker processes through
        shared memory (no float64 pickling) and transformed there,
        with bit-identical results (smaller batches stay in-process —
        pool spawn costs more than a hot/cold pair's FFTs).
        """
        config = estimator.config
        obs_t0 = time.monotonic() if obs.enabled() else 0.0
        if (
            self.backend == "process"
            and isinstance(records, PackedRecordBatch)
            and records.n_records >= MIN_SHARED_WELCH_RECORDS
        ):
            if sample_rate is not None and float(sample_rate) != records.sample_rate:
                raise ConfigurationError(
                    f"sample_rate {sample_rate} Hz does not match the "
                    f"packed batch rate {records.sample_rate} Hz"
                )
            params = WelchParams(
                nperseg=config.nperseg,
                window=config.window,
                overlap=config.overlap,
                detrend=True,
                block_segments=self.block_segments,
                bit_domain=self.bit_domain,
                kernel_backend=get_kernel_backend(),
            )
            psd = welch_batch_shared(
                records, params, self.max_workers, pool=self.worker_pool
            )
            win = get_window(config.window, config.nperseg)
            freqs, enbw_hz = _welch_grid(
                win, config.nperseg, records.sample_rate
            )
            if obs_t0:
                obs.observe(
                    "engine.welch_seconds", time.monotonic() - obs_t0,
                    {"path": "shared"},
                )
            return SpectrumBatch(freqs, psd, enbw_hz=enbw_hz)
        out = welch_batch(
            records,
            nperseg=config.nperseg,
            sample_rate=sample_rate,
            window=config.window,
            overlap=config.overlap,
            detrend=True,
            block_segments=self.block_segments,
            bit_domain=self.bit_domain,
        )
        if obs_t0:
            obs.observe(
                "engine.welch_seconds", time.monotonic() - obs_t0,
                {"path": "inprocess"},
            )
        return out

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def measure(
        self,
        source: BatchAcquirer,
        estimator: OneBitNoiseFigureBIST,
        rng: GeneratorLike = None,
    ) -> BISTResult:
        """One two-state NF measurement with batched hot/cold records.

        Mirrors ``estimator.measure(source.acquire_bitstream, rng)``
        (same generator spawning, bit-exact records) but acquires both
        states as one stacked batch and shares one batched Welch pass.

        With a :class:`~repro.store.ResultStore` attached (``store=`` /
        ``cache=``), the measurement's provenance key is consulted
        first: a stored result is returned as-is (bit-identical to a
        recompute), stored pooled records short-circuit the acquisition
        and only re-run the analysis, and a full miss measures normally
        and persists.  Uncacheable tasks (``rng=None``) bypass the
        store entirely.
        """
        # Key on the caller's seed, not the resolved generator — an
        # OS-entropy run (rng=None) must stay uncacheable even though
        # the generator it resolves to has a readable state.
        key = self.task_key(source, estimator, rng)
        gen = make_rng(rng)
        obs.inc("engine.measurements")
        if key is not None and self.cache_reads:
            cached = self.store.get_result(key)
            if cached is not None:
                # Consume the same lineage a cold measure would: a
                # caller reusing this generator must see identical
                # spawn counts whether the store hit or not.
                spawn_rngs(gen, 2)
                obs.inc("engine.store_hits")
                return cached
            obs.inc("engine.store_misses")
            pooled = self.store.get_records(key)
            if pooled is not None:
                obs.inc("engine.record_hits")
                # Provenance-matched pooled records: the acquisition
                # already happened in some earlier run — re-analyze
                # only (same batched Welch pass as a live measure).
                spawn_rngs(gen, 2)
                batch = self.spectra_of(
                    pooled, pooled.sample_rate, estimator
                )
                result = self._estimate_pairs(batch, [estimator], False)[0]
                if self.cache_writes:
                    self.store.put_result(key, result)
                return result
        rng_hot, rng_cold = spawn_rngs(gen, 2)
        results, records = self._measure_pairs(
            source, estimator, [(rng_hot, rng_cold)], allow_failures=False
        )
        if key is not None and self.cache_writes:
            self.store.put_result(key, results[0])
            if self.store_records and isinstance(records, PackedRecordBatch):
                self.store.put_records(key, records)
            self._budget_writes += 1
            self._maybe_enforce_budget()
        return results[0]

    def run_batch(
        self,
        source: BatchAcquirer,
        estimator: OneBitNoiseFigureBIST,
        n_repeats: int,
        rng: GeneratorLike = None,
        allow_failures: bool = False,
    ) -> List[Optional[BISTResult]]:
        """``n_repeats`` independent NF measurements as one batch.

        Mirrors the serial repeat loop of
        :class:`~repro.core.averaging.RepeatedMeasurement`: one child
        generator per repeat, each spawning its own hot/cold pair.  All
        ``2 * n_repeats`` records are acquired as a single stack and
        measured from one batched Welch pass.

        Returns one entry per repeat, in order.  With
        ``allow_failures``, repeats whose reference line is lost
        (:class:`~repro.errors.MeasurementError`) yield ``None`` instead
        of aborting the batch.
        """
        if n_repeats < 1:
            raise ConfigurationError(
                f"n_repeats must be >= 1, got {n_repeats}"
            )
        gen = make_rng(rng)
        pairs = [
            tuple(spawn_rngs(child, 2)) for child in spawn_rngs(gen, n_repeats)
        ]
        results, _ = self._measure_pairs(
            source, estimator, pairs, allow_failures
        )
        return results

    def _acquire(
        self,
        source: BatchAcquirer,
        states: Sequence[str],
        rngs: Sequence[GeneratorLike],
    ):
        """Acquire a record batch, packed when source and engine allow.

        The engine's ``rng_mode`` travels along to acquirers whose
        signature accepts it; acquirers without the knob stay on their
        (compat) path.
        """
        acquire = source.acquire_bitstreams
        kwargs = {}
        if self.packed and _accepts_packed(acquire):
            kwargs["packed"] = True
        if self.rng_mode != "compat" and _accepts_kwarg(acquire, "rng_mode"):
            kwargs["rng_mode"] = self.rng_mode
        with obs.timed("engine.acquire_seconds"):
            return acquire(states, rngs, **kwargs)

    def _measure_pairs(
        self,
        source: BatchAcquirer,
        estimator: OneBitNoiseFigureBIST,
        pairs: Sequence[Tuple[np.random.Generator, np.random.Generator]],
        allow_failures: bool,
    ) -> Tuple[List[Optional[BISTResult]], Union[np.ndarray, PackedRecordBatch]]:
        states: List[str] = []
        rngs: List[np.random.Generator] = []
        for rng_hot, rng_cold in pairs:
            states += ["hot", "cold"]
            rngs += [rng_hot, rng_cold]
        records, sample_rate = self._acquire(source, states, rngs)
        if isinstance(records, PackedRecordBatch):
            n_records = records.n_records
        else:
            records = np.asarray(records, dtype=float)
            n_records = records.shape[0] if records.ndim == 2 else -1
        if n_records != len(states):
            shape = (
                records.shape
                if isinstance(records, (np.ndarray, PackedRecordBatch))
                else type(records)
            )
            raise ConfigurationError(
                f"acquirer returned shape {shape} for {len(states)} records"
            )
        if sample_rate != estimator.config.sample_rate_hz:
            raise ConfigurationError(
                f"acquired sample rate {sample_rate} Hz does not match "
                f"configured {estimator.config.sample_rate_hz} Hz"
            )
        check_bitstream_samples(records, "batched")
        batch = self.spectra_of(records, sample_rate, estimator)
        results = self._estimate_pairs(
            batch, [estimator] * len(pairs), allow_failures
        )
        return results, records

    def _estimate_pairs(
        self,
        batch: SpectrumBatch,
        estimators: Sequence[OneBitNoiseFigureBIST],
        allow_failures: bool,
    ) -> List[Optional[BISTResult]]:
        """Per-pair Y-factor estimation over a hot/cold-interleaved batch."""
        results: List[Optional[BISTResult]] = []
        for i, estimator in enumerate(estimators):
            try:
                results.append(
                    estimator.estimate_from_spectra(batch[2 * i], batch[2 * i + 1])
                )
            except MeasurementError:
                if not allow_failures:
                    raise
                results.append(None)
        return results

    # ------------------------------------------------------------------
    # Multi-device batching
    # ------------------------------------------------------------------
    def measure_devices(
        self,
        sources: Sequence[AnalogBatchAcquirer],
        estimators: Union[
            OneBitNoiseFigureBIST, Sequence[OneBitNoiseFigureBIST]
        ],
        rng: GeneratorLike = None,
        rngs: Optional[Sequence[GeneratorLike]] = None,
        allow_failures: bool = False,
    ) -> List[Optional[BISTResult]]:
        """One NF measurement per device, stacked into a single batch.

        Every entry of ``sources`` is a bench with its own DUT model
        (its own noise densities, gains, reference amplitude and
        digitizer).  The per-device analog chains run with per-record
        child generators spawned exactly as :meth:`measure` would
        spawn them; each device's two records are digitized (packed)
        against its own reference as soon as they are rendered, and
        all ``2 * n_devices`` packed records then share one batched
        Welch pass — so device ``i``'s result is bit-exact equal to
        ``measure(sources[i], estimators[i], rng=rngs[i])`` while the
        whole screen runs as one giant batch.

        Peak memory stays one device wide: each device's analog
        records are digitized (and packed) as soon as they are
        rendered, so only the 1-bit records of the whole lot
        accumulate.

        ``estimators`` is one estimator per device (or a single shared
        one); all must share the same analysis parameters, and every
        bench must produce records of the same length and output
        sample rate (screens with heterogeneous analysis fall back to
        :meth:`map_sweep`).

        ``measure_devices`` is :meth:`acquire_devices` followed by
        :meth:`analyze_devices`; callers that want to overlap one
        batch's acquisition with another's analysis (the scheduler's
        pipelined plan execution) use the two phases directly.
        """
        batch = self.acquire_devices(sources, estimators, rng=rng, rngs=rngs)
        return self.analyze_devices(batch, allow_failures=allow_failures)

    def acquire_devices(
        self,
        sources: Sequence[AnalogBatchAcquirer],
        estimators: Union[
            OneBitNoiseFigureBIST, Sequence[OneBitNoiseFigureBIST]
        ],
        rng: GeneratorLike = None,
        rngs: Optional[Sequence[GeneratorLike]] = None,
    ) -> DeviceBatch:
        """The acquisition phase of :meth:`measure_devices`.

        Runs every device's analog chain and digitizes (packs) its two
        records, exactly as ``measure_devices`` would, and returns the
        accumulated :class:`DeviceBatch` without analyzing it.  Pure
        serial CPU work — no worker-pool involvement — so a pipelined
        scheduler can run it while the pool is busy with the previous
        batch's Welch fan-out.
        """
        sources = list(sources)
        if not sources:
            raise ConfigurationError("need at least one device")
        if isinstance(estimators, OneBitNoiseFigureBIST):
            estimators = [estimators] * len(sources)
        else:
            estimators = list(estimators)
        if len(estimators) != len(sources):
            raise ConfigurationError(
                f"got {len(sources)} devices but {len(estimators)} estimators"
            )
        if rngs is None:
            rngs = spawn_rngs(make_rng(rng), len(sources))
        else:
            rngs = list(rngs)
            if len(rngs) != len(sources):
                raise ConfigurationError(
                    f"got {len(sources)} devices but {len(rngs)} generators"
                )
        config = estimators[0].config
        for estimator in estimators[1:]:
            other = estimator.config
            if (
                other.nperseg != config.nperseg
                or other.window != config.window
                or other.overlap != config.overlap
                or other.sample_rate_hz != config.sample_rate_hz
            ):
                raise ConfigurationError(
                    "multi-device batching needs identical analysis "
                    "parameters across estimators (nperseg/window/"
                    "overlap/sample rate); use map_sweep for "
                    "heterogeneous screens"
                )

        device_records: List = []
        out_rate: Optional[float] = None
        obs_t0 = time.monotonic() if obs.enabled() else 0.0
        for source, device_rng in zip(sources, rngs):
            gen = make_rng(device_rng)
            rng_hot, rng_cold = spawn_rngs(gen, 2)
            # In philox mode a packed engine routes each device through
            # its own full acquire_bitstreams — the exact call (and
            # generator spawns) engine.measure makes — so fast-mode
            # acquirers reach their direct packed synthesis
            # (MatlabSimulation's Bernoulli path) inside planned
            # screens too, and planned philox results stay identical
            # to per-task philox measurement.
            acquire_bits = getattr(source, "acquire_bitstreams", None)
            if (
                self.packed
                and self.rng_mode != "compat"
                and acquire_bits is not None
                and _accepts_packed(acquire_bits)
                and _accepts_kwarg(acquire_bits, "rng_mode")
            ):
                pair, device_rate = acquire_bits(
                    ["hot", "cold"],
                    [rng_hot, rng_cold],
                    packed=True,
                    rng_mode=self.rng_mode,
                )
                if (
                    not isinstance(pair, PackedRecordBatch)
                    or pair.n_records != 2
                ):
                    raise ConfigurationError(
                        "packed device acquisition must return a "
                        "2-record PackedRecordBatch, got "
                        f"{type(pair).__name__}"
                    )
                if out_rate is None:
                    out_rate = float(device_rate)
                elif float(device_rate) != out_rate:
                    raise ConfigurationError(
                        f"output sample-rate mismatch across devices: "
                        f"{out_rate} vs {device_rate} Hz"
                    )
                device_records.append(pair)
                continue
            acquire_analog = source.acquire_analog_batch
            kwargs = {}
            if self.rng_mode != "compat" and _accepts_kwarg(
                acquire_analog, "rng_mode"
            ):
                kwargs["rng_mode"] = self.rng_mode
            analog, reference, device_dig_rngs, rate, dig = acquire_analog(
                ["hot", "cold"], [rng_hot, rng_cold], **kwargs
            )
            analog = np.asarray(analog, dtype=float)
            if analog.ndim != 2 or analog.shape[0] != 2:
                raise ConfigurationError(
                    f"device analog batch must be (2, n_samples), got "
                    f"{analog.shape}"
                )
            device_rate = float(rate) / dig.sampler.divider
            if out_rate is None:
                out_rate = device_rate
            elif device_rate != out_rate:
                raise ConfigurationError(
                    f"output sample-rate mismatch across devices: "
                    f"{out_rate} vs {device_rate} Hz"
                )
            # Digitize immediately — the device's analog floats die
            # here, so the lot accumulates only (packed) records.
            device_records.append(
                dig.digitize_batch(
                    analog,
                    np.asarray(reference, dtype=float),
                    float(rate),
                    device_dig_rngs,
                    overwrite_input=not self.packed,
                    packed=self.packed,
                    rng_mode=self.rng_mode,
                )
            )
        if self.packed:
            records: Union[np.ndarray, PackedRecordBatch] = (
                PackedRecordBatch.from_records(
                    [rec[i] for rec in device_records for i in range(2)]
                )
            )
        else:
            widths = {rec.shape[-1] for rec in device_records}
            if len(widths) > 1:
                raise ConfigurationError(
                    f"record-length mismatch across devices: "
                    f"{sorted(widths)}"
                )
            records = np.vstack(device_records)
        if out_rate != config.sample_rate_hz:
            raise ConfigurationError(
                f"acquired sample rate {out_rate} Hz does not match "
                f"configured {config.sample_rate_hz} Hz"
            )
        check_bitstream_samples(records, "multi-device")
        if obs_t0:
            obs.observe(
                "engine.acquire_devices_seconds",
                time.monotonic() - obs_t0,
            )
            obs.inc("engine.devices_acquired", len(sources))
        return DeviceBatch(
            records=records,
            sample_rate=out_rate,
            estimators=tuple(estimators),
        )

    def analyze_devices(
        self, batch: DeviceBatch, allow_failures: bool = False
    ) -> List[Optional[BISTResult]]:
        """The analysis phase of :meth:`measure_devices`.

        One batched Welch pass over the acquired records (fanned over
        the worker pool on the process backend) followed by per-device
        Y-factor estimation, results in device order.
        """
        with obs.timed("engine.analyze_devices_seconds"):
            spectra = self.spectra_of(
                batch.records, batch.sample_rate, batch.estimators[0]
            )
            return self._estimate_pairs(
                spectra, batch.estimators, allow_failures
            )

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def map_sweep(
        self,
        fn: Callable,
        tasks: Sequence,
        seed: GeneratorLike = None,
        rngs: Optional[Sequence[GeneratorLike]] = None,
    ) -> List:
        """Run ``fn(task, rng)`` over independent sweep tasks, in order.

        Each task receives its own child generator — spawned from
        ``seed`` unless an explicit ``rngs`` sequence is given (use the
        latter to keep seed-compatibility with an existing serial
        sweep).  The ``"process"`` backend distributes tasks over the
        engine's persistent :class:`~repro.engine.scheduler.WorkerPool`
        (spawned once, reused across sweeps until :meth:`close`), and
        packed records found inside tasks travel through shared memory
        instead of pickle; since the generators travel with the tasks,
        results are identical across backends.  ``fn`` must be a
        module-level callable for the process backend (pickling).

        A non-compat engine ``rng_mode`` is forwarded to workers whose
        signature accepts an ``rng_mode`` keyword (as a
        ``functools.partial``, so process-backend pickling still sees
        the module-level function); workers without the knob keep
        their own (compat) synthesis.
        """
        tasks = list(tasks)
        if rngs is None:
            rngs = spawn_rngs(make_rng(seed), len(tasks))
        else:
            rngs = list(rngs)
            if len(rngs) != len(tasks):
                raise ConfigurationError(
                    f"got {len(tasks)} tasks but {len(rngs)} generators"
                )
        if not tasks:
            return []
        if self.rng_mode != "compat" and _accepts_kwarg(fn, "rng_mode"):
            fn = functools.partial(fn, rng_mode=self.rng_mode)
        if self.backend == "process":
            return run_with_processes(
                fn, tasks, rngs, self.max_workers, pool=self.worker_pool
            )
        return run_serial(fn, tasks, rngs)


#: The ISSUE-facing short alias.
Engine = MeasurementEngine
