"""Batched measurement engine — the high-throughput orchestration layer.

The paper's workload is batch-shaped: 1e6-sample records, FFT size 1e4,
repeated across hot/cold states, devices, sweeps and Monte-Carlo
repeats.  This package stacks those independent records into 2-D arrays
and drives the whole hot path — noise rendering, amplifier processing,
1-bit digitizing, Welch PSDs — through the vectorized batch kernels of
:mod:`repro.signals`, :mod:`repro.analog`, :mod:`repro.digitizer` and
:mod:`repro.dsp.psd`, while preserving bit-exact per-record
reproducibility (each record draws from its own ``spawn_rngs`` child).

``MeasurementEngine.run_batch`` replaces serial repeat loops,
``MeasurementEngine.measure`` a single two-state acquisition, and
``MeasurementEngine.map_sweep`` fans independent sweep tasks out either
in-process or over a persistent worker pool with per-task child seeds.

:mod:`repro.engine.scheduler` sits on top: :class:`WorkerPool` keeps
one process pool alive across a whole session of sweeps and batched
Welch passes, and :class:`MeasurementScheduler` plans arbitrary
mixed-configuration screens into compatible sub-batches
(:func:`plan_measurements`) with results bit-identical to per-device
measurement.
"""

from repro.buffers import ArrayPool, default_pool
from repro.engine.engine import (
    AnalogBatchAcquirer,
    BatchAcquirer,
    DeviceBatch,
    Engine,
    MeasurementEngine,
)
from repro.engine.executors import run_serial, run_with_processes
from repro.engine.scheduler import (
    GroupReport,
    MapOutcome,
    MeasurementPlan,
    MeasurementScheduler,
    MeasurementTask,
    PlanGroup,
    RetryPolicy,
    RunReport,
    TaskFailure,
    WorkerPool,
    as_scheduler,
    plan_measurements,
    plan_retest,
)
from repro.store import ResultStore
from repro.engine.shm import (
    SharedPackedBatch,
    SharedResultBlock,
    WelchParams,
    collect_results,
    publish_packed_tasks,
    publish_results,
    resolve_shared_task,
    welch_batch_shared,
)

__all__ = [
    "AnalogBatchAcquirer",
    "ArrayPool",
    "BatchAcquirer",
    "DeviceBatch",
    "Engine",
    "GroupReport",
    "MapOutcome",
    "MeasurementEngine",
    "MeasurementPlan",
    "MeasurementScheduler",
    "MeasurementTask",
    "PlanGroup",
    "ResultStore",
    "RetryPolicy",
    "RunReport",
    "TaskFailure",
    "SharedPackedBatch",
    "SharedResultBlock",
    "WelchParams",
    "WorkerPool",
    "as_scheduler",
    "collect_results",
    "default_pool",
    "plan_measurements",
    "plan_retest",
    "publish_packed_tasks",
    "publish_results",
    "resolve_shared_task",
    "run_serial",
    "run_with_processes",
    "welch_batch_shared",
]
