"""Measurement scheduler: persistent worker pool and sub-batch planner.

The execution layer under the engine used to pay two structural taxes:
every ``map_sweep`` / batched-Welch fan-out spawned (and tore down) its
own ``ProcessPoolExecutor``, and :meth:`MeasurementEngine.
measure_devices` refused to batch screens whose estimators disagreed on
any analysis parameter.  This module removes both:

* :class:`WorkerPool` is a persistent, lazily spawned process pool with
  an explicit ``close()`` / context-manager lifetime.  One pool is
  shared across every fan-out an engine performs — sweep tasks, batched
  Welch passes over shared memory, repeated sweeps of a whole session —
  so the pool-spawn cost is paid once per session instead of once per
  call.
* :func:`plan_measurements` / :class:`MeasurementPlan` take an
  arbitrary mix of ``(source, estimator, rng)`` measurement tasks and
  group them into sub-batches that are *compatible* under the engine's
  multi-device batching rules (identical nperseg / window / overlap /
  sample rate / record length, sources implementing the
  :class:`~repro.engine.engine.AnalogBatchAcquirer` protocol).  Each
  group runs through ``measure_devices``; singletons and
  protocol-less sources fall back to per-task ``measure``.  Because
  every path spawns per-record generators identically, the planned
  results are bit-identical to running ``engine.measure`` once per
  task, in task order.
* :class:`MeasurementScheduler` is the facade the experiments layer
  uses: ``run()`` for planned heterogeneous screens, ``map_sweep()``
  for free-form sweeps (packed record payloads travel through
  :mod:`repro.engine.shm` instead of pickle), one pool underneath.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.bist import OneBitNoiseFigureBIST
from repro.core.production import Verdict
from repro.dsp.fft_backend import get_fft_backend, set_fft_backend
from repro.errors import ConfigurationError, ExecutionError, MeasurementError
from repro.faults.injector import active_injector, faulted_call, task_fault
from repro.kernels import get_kernel_backend, set_kernel_backend
from repro import obs
from repro.obs.registry import MetricsRegistry, diff_snapshots
from repro.signals.batch_rng import validate_rng_mode
from repro.signals.random import GeneratorLike

__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "MapOutcome",
    "WorkerPool",
    "MeasurementTask",
    "PlanGroup",
    "GroupReport",
    "RunReport",
    "MeasurementPlan",
    "plan_measurements",
    "plan_retest",
    "MeasurementScheduler",
    "as_scheduler",
]

#: How long to wait for leftover futures to settle after the pool has
#: been killed or declared broken — they resolve as soon as the
#: executor's management thread notices the dead processes.
_SETTLE_TIMEOUT_S = 10.0


def _worker_init(
    kernel_backend: str,
    fft_name: str,
    store_root: Optional[str] = None,
    obs_enabled: bool = False,
) -> None:
    """Pool initializer: inherit the parent's backend selections.

    Runs once in every spawned worker process.  The kernel tier carries
    over as selected in the parent (triggering the backend's one-time
    parity self-check in the child before any hot-path dispatch); the
    FFT backend carries over with ``workers`` pinned to 1 — each worker
    owns one core, and a pocketfft thread pool per worker process is a
    fight, not a speedup.  A selection that cannot be honoured in the
    child (environment drift) falls back to the defaults rather than
    poisoning the pool.

    ``store_root`` is the *only* store state the parent ships: workers
    open their own :class:`~repro.store.ResultStore` handle lazily and
    publish result payloads straight into their shard (see
    :mod:`repro.store.io`), eliminating the parent serialization
    round-trip on warm-write paths.

    ``obs_enabled`` carries the parent's observability switch into the
    child at spawn; a pool spawned *before* the parent enabled
    observability still catches up lazily — :func:`_obs_task` enables
    the worker-side registry on first instrumented dispatch.
    """
    try:
        set_kernel_backend(kernel_backend)
        set_fft_backend(fft_name, workers=1)
    except ConfigurationError:  # pragma: no cover - env drift at spawn
        pass
    if obs_enabled:
        obs.enable()
    from repro.store.io import configure_worker_store

    configure_worker_store(store_root)


def _obs_task(payload) -> Tuple[object, Optional[dict]]:
    """Worker-side dispatch wrapper when observability is on.

    Runs the real task, then drains the worker's process-global
    registry (counters/histograms the task's kernels, shm publishes
    and store writes recorded) and ships the snapshot home with the
    result — the parent merges it, so per-worker telemetry composes
    with the process backend without shared-memory coordination.
    Disabled runs never dispatch through here, keeping the default
    path byte-identical to an un-instrumented build.
    """
    call, arg = payload
    obs.enable()  # idempotent; covers pools spawned before enable()
    t0 = time.monotonic()
    result = call(arg)
    obs.observe("worker.task_seconds", time.monotonic() - t0)
    return result, obs.snapshot_and_reset()


@dataclass(frozen=True)
class RetryPolicy:
    """How the pool responds when tasks or workers fail.

    ``max_retries`` bounds how often one task is re-dispatched after a
    failure (an exception, a pool break that swallowed it, or a
    timeout) before it is dead-lettered; retries back off exponentially
    from ``backoff_base_s`` with deterministic jitter (seeded from the
    task coordinates, so reruns sleep identically).  ``task_timeout_s``
    arms hung-worker detection: a task whose result does not arrive in
    time gets the worker processes killed and every unfinished task
    re-dispatched.  ``max_respawns`` caps how many times one
    :meth:`WorkerPool.run` call will rebuild a broken pool before
    dead-lettering whatever is left (satisfying the "a second break
    mid-retry must not escape" contract).

    Domain errors (:class:`~repro.errors.MeasurementError`,
    :class:`~repro.errors.ConfigurationError`) are *not* retried: they
    are deterministic properties of the task, and replaying the same
    generators would fail identically.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    jitter: float = 0.1
    task_timeout_s: Optional[float] = None
    max_respawns: int = 3

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.max_respawns < 0:
            raise ConfigurationError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ConfigurationError(
                f"jitter must be >= 0, got {self.jitter}"
            )
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ConfigurationError(
                f"task_timeout_s must be > 0, got {self.task_timeout_s}"
            )

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether a task exception is worth re-dispatching."""
        return not isinstance(exc, (MeasurementError, ConfigurationError))

    def backoff_s(self, index: int, attempt: int) -> float:
        """The deterministic pre-retry delay for one task dispatch."""
        if self.backoff_base_s <= 0:
            return 0.0
        raw = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        if self.jitter <= 0:
            return raw
        # Seeded by the task coordinates only: replays sleep the same.
        u = np.random.default_rng((0x5EED, int(index), int(attempt))).random()
        return raw * (1.0 + self.jitter * u)


#: The pool's default when neither it nor the call supplies a policy.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class TaskFailure:
    """A dead-lettered task: every recovery attempt was exhausted.

    ``kind`` records the terminal failure mode (``"exception"``,
    ``"timeout"``, ``"crash"``, or ``"pool"`` when the respawn budget
    ran out with the task still queued); ``error`` its repr.  The
    original exception rides along (not part of equality) so strict
    callers can re-raise it.
    """

    index: int
    attempts: int
    kind: str
    error: str
    exception: Optional[BaseException] = field(
        default=None, compare=False, repr=False
    )

    def describe(self) -> dict:
        """JSON-ready view (what :class:`RunReport` embeds)."""
        return {
            "index": self.index,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
        }


@dataclass
class MapOutcome:
    """What one :meth:`WorkerPool.run` call did, task by task.

    ``results`` keeps payload order (``None`` for dead-lettered tasks);
    ``attempts`` counts every dispatch, ``retries`` the re-dispatches,
    ``timeouts`` the hung-worker detections, ``respawns`` the pool
    rebuilds this call consumed.  ``kernel_backend`` / ``fft_backend``
    record which compute tiers were active when the call ran (workers
    inherit them through the pool initializer).  With observability on
    (:mod:`repro.obs`), ``obs`` carries the merged worker-side metrics
    snapshot this call produced (``None`` otherwise).
    """

    results: List
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    respawns: int = 0
    dead: List[TaskFailure] = field(default_factory=list)
    kernel_backend: str = ""
    fft_backend: str = ""
    obs: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.dead


class WorkerPool:
    """A persistent, lazily spawned, fault-tolerant process pool.

    The executor is created on first use — constructing a pool (or an
    engine holding one) costs nothing until work is actually fanned
    out — and then reused across calls until :meth:`close`.  It is
    sized to ``min(max_workers, batch size)`` at spawn (a 4-task sweep
    on a 64-core host starts 4 workers, not 64) and grows — by
    respawning wider — only when a later batch actually needs more.
    ``close`` releases the worker processes; a later ``map``
    transparently respawns, so a pool object can bracket several
    independent sessions.  :attr:`spawn_count` records how many times
    an executor was actually created (the number every reused call
    amortizes).

    Execution is per-task (:meth:`run`): every payload gets its own
    future, so a failure is scoped to one task instead of one batch.
    Under the pool's :class:`RetryPolicy` (or one passed per call),
    task exceptions are retried with exponential backoff, broken pools
    are rebuilt up to ``max_respawns`` times per call — repeated
    breaks mid-retry no longer escape — hung workers are detected via
    ``task_timeout_s``, killed and respawned, and tasks that exhaust
    every recovery land in the dead-letter list of the returned
    :class:`MapOutcome`.  Because payloads carry their own generators,
    every retry is a bit-exact replay.  :attr:`telemetry` accumulates
    the per-call counters for run-level reporting.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
        store_root: Optional[str] = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._requested_workers = max_workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._size = 0
        self.spawn_count = 0
        self.policy = policy
        #: Store root the workers may write directly (shipped through
        #: the pool initializer; ``None`` keeps workers store-less).
        self.store_root = str(store_root) if store_root is not None else None
        self.telemetry = MapOutcome(results=[])
        self._run_seq = 0

    @property
    def max_workers(self) -> int:
        """The resolved worker cap (CPU count when unspecified)."""
        if self._requested_workers is not None:
            return self._requested_workers
        return os.cpu_count() or 1

    @property
    def active(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._executor is not None

    @property
    def size(self) -> int:
        """Worker processes of the live executor (0 when idle)."""
        return self._size if self._executor is not None else 0

    def _ensure(self, n_tasks: int) -> ProcessPoolExecutor:
        wanted = max(1, min(self.max_workers, n_tasks))
        if self._executor is not None and self._size < wanted:
            self.close()  # grow by respawning wider
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=wanted,
                initializer=_worker_init,
                initargs=(
                    get_kernel_backend(),
                    get_fft_backend()[0],
                    self.store_root,
                    obs.enabled(),
                ),
            )
            self._size = wanted
            self.spawn_count += 1
        return self._executor

    def _discard_executor(self) -> None:
        """Drop a broken executor without waiting on its corpse."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self._size = 0

    def _kill_workers(self) -> None:
        """Forcibly terminate the worker processes (hung-worker path).

        ``shutdown`` alone would block behind a hung task forever; the
        processes are killed first so every in-flight future settles
        (broken), then the executor is discarded.
        """
        if self._executor is None:
            return
        for proc in list(
            getattr(self._executor, "_processes", {}).values()
        ):
            try:
                proc.kill()
            except (OSError, AttributeError):  # pragma: no cover - raced exit
                pass
        self._discard_executor()

    def run(
        self,
        fn: Callable,
        payloads: Sequence,
        policy: Optional[RetryPolicy] = None,
    ) -> MapOutcome:
        """Run ``fn`` over payloads with full fault handling.

        Results keep payload order; tasks that exhaust every recovery
        come back as ``None`` with a :class:`TaskFailure` in
        ``outcome.dead`` — the caller decides whether that is fatal
        (:meth:`map` raises) or degradable (the planner's
        :meth:`MeasurementPlan.run_report`).

        Recovery semantics, per :class:`RetryPolicy`:

        * a task exception is retried (with deterministic backoff)
          unless it is a domain error, up to ``max_retries`` times;
        * a broken pool (crashed worker) is rebuilt and every
          unfinished task re-dispatched at its next attempt, up to
          ``max_respawns`` rebuilds per call;
        * with ``task_timeout_s`` armed, a result that fails to arrive
          in time kills the workers (a hung worker never yields its
          process voluntarily) and re-dispatches as for a crash.

        Payloads carry their own generators, so every re-dispatch
        replays the task bit-exactly; with a fault injector active
        (:func:`repro.faults.inject`), dispatches are wrapped with the
        injector's deterministic fault directives.
        """
        payloads = list(payloads)
        policy = (
            policy
            if policy is not None
            else (self.policy or DEFAULT_RETRY_POLICY)
        )
        outcome = MapOutcome(results=[None] * len(payloads))
        outcome.kernel_backend = get_kernel_backend()
        outcome.fft_backend = get_fft_backend()[0]
        if not payloads:
            return outcome
        run_seq = self._run_seq
        self._run_seq += 1
        # Snapshot the switch once per call: every dispatch in this run
        # agrees on whether results come back (value, snapshot)-wrapped.
        obs_on = obs.enabled()
        obs_acc = MetricsRegistry() if obs_on else None
        obs.trace_event("pool.dispatch", run=run_seq, tasks=len(payloads))
        dead: Dict[int, TaskFailure] = {}
        pending: List[Tuple[int, int]] = [(i, 1) for i in range(len(payloads))]
        respawns_used = 0
        sleep_before_round = 0.0

        def retry_or_dead(i: int, attempt: int, kind: str, exc) -> None:
            nonlocal sleep_before_round
            retryable = kind != "exception" or policy.is_retryable(exc)
            if retryable and attempt <= policy.max_retries:
                outcome.retries += 1
                obs.trace_event(
                    "pool.retry", index=i, attempt=attempt, kind=kind
                )
                sleep_before_round = max(
                    sleep_before_round, policy.backoff_s(i, attempt)
                )
                next_pending.append((i, attempt + 1))
            else:
                obs.trace_event(
                    "pool.dead_letter", index=i, attempt=attempt, kind=kind
                )
                dead[i] = TaskFailure(
                    index=i,
                    attempts=attempt,
                    kind=kind,
                    error=repr(exc),
                    exception=exc,
                )

        while pending:
            if sleep_before_round > 0:
                time.sleep(sleep_before_round)
                sleep_before_round = 0.0
            executor = self._ensure(len(pending))
            next_pending: List[Tuple[int, int]] = []
            futures: List[Tuple[int, int, Future]] = []
            broken = False
            for i, attempt in pending:
                if broken:
                    next_pending.append((i, attempt))
                    continue
                call, arg = fn, payloads[i]
                directive = task_fault(run_seq, i, attempt)
                if directive is not None:
                    call, arg = faulted_call, (directive, fn, payloads[i])
                if obs_on:
                    # Outermost wrap: the worker-side snapshot covers
                    # the faulted dispatch too.
                    call, arg = _obs_task, (call, arg)
                try:
                    futures.append((i, attempt, executor.submit(call, arg)))
                    outcome.attempts += 1
                except (BrokenProcessPool, RuntimeError):
                    # The executor died between rounds; re-dispatch on
                    # the respawned pool without charging the task.
                    broken = True
                    next_pending.append((i, attempt))
            for i, attempt, future in futures:
                timeout = (
                    _SETTLE_TIMEOUT_S if broken else policy.task_timeout_s
                )
                try:
                    value = future.result(timeout=timeout)
                    if obs_on:
                        value, worker_snap = value
                        if worker_snap:
                            obs.merge(worker_snap)
                            obs_acc.merge(worker_snap)
                    outcome.results[i] = value
                except FuturesTimeoutError as exc:
                    if not broken:
                        # Hung worker: nothing short of killing the
                        # process gets the pool back.
                        outcome.timeouts += 1
                        broken = True
                        self._kill_workers()
                    retry_or_dead(i, attempt, "timeout", exc)
                except (BrokenProcessPool, CancelledError) as exc:
                    broken = True
                    retry_or_dead(i, attempt, "crash", exc)
                except Exception as exc:
                    retry_or_dead(i, attempt, "exception", exc)
            if broken:
                self._kill_workers()
                respawns_used += 1
                outcome.respawns += 1
                obs.trace_event("pool.respawn", run=run_seq)
                if respawns_used > policy.max_respawns:
                    for i, attempt in next_pending:
                        dead[i] = TaskFailure(
                            index=i,
                            attempts=attempt,
                            kind="pool",
                            error=(
                                f"worker pool broke {respawns_used} times; "
                                f"respawn budget ({policy.max_respawns}) "
                                "exhausted"
                            ),
                        )
                    next_pending = []
            pending = next_pending
        outcome.dead = [dead[i] for i in sorted(dead)]
        if obs_on:
            outcome.obs = obs_acc.snapshot()
            obs.inc("scheduler.dispatches", outcome.attempts)
            if outcome.retries:
                obs.inc("scheduler.retries", outcome.retries)
            if outcome.timeouts:
                obs.inc("scheduler.timeouts", outcome.timeouts)
            if outcome.respawns:
                obs.inc("scheduler.respawns", outcome.respawns)
            if outcome.dead:
                obs.inc("scheduler.dead_letters", len(outcome.dead))
        self.telemetry.attempts += outcome.attempts
        self.telemetry.retries += outcome.retries
        self.telemetry.timeouts += outcome.timeouts
        self.telemetry.respawns += outcome.respawns
        self.telemetry.dead.extend(outcome.dead)
        self.telemetry.kernel_backend = outcome.kernel_backend
        self.telemetry.fft_backend = outcome.fft_backend
        return outcome

    def map(
        self,
        fn: Callable,
        payloads: Sequence,
        policy: Optional[RetryPolicy] = None,
    ) -> List:
        """Run ``fn`` over payloads on the pool; results keep order.

        The strict face of :meth:`run`: an empty payload list returns
        ``[]`` without ever spawning worker processes, transient
        failures are retried / respawned per the policy, and a task
        that stays dead raises — the original exception for a task
        that kept raising, :class:`~repro.errors.ExecutionError` for
        infrastructure failures (timeouts, crashes, an exhausted
        respawn budget).
        """
        outcome = self.run(fn, payloads, policy=policy)
        if outcome.dead:
            first = outcome.dead[0]
            if first.kind == "exception" and first.exception is not None:
                raise first.exception
            raise ExecutionError(
                f"task {first.index} dead-lettered after {first.attempts} "
                f"attempt(s) ({first.kind}): {first.error}"
            ) from first.exception
        return outcome.results

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._size = 0

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "idle"
        return (
            f"WorkerPool(max_workers={self.max_workers}, {state}, "
            f"spawns={self.spawn_count})"
        )


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeasurementTask:
    """One device measurement: a bench, its estimator and its seed."""

    source: object
    estimator: OneBitNoiseFigureBIST
    rng: GeneratorLike = None


#: The analysis parameters two tasks must share to ride one sub-batch —
#: exactly the constraints ``measure_devices`` enforces at runtime.
GroupKey = Tuple[int, str, float, float, int]


def _group_key(task: MeasurementTask) -> GroupKey:
    config = task.estimator.config
    return (
        config.nperseg,
        config.window,
        config.overlap,
        config.sample_rate_hz,
        config.n_samples,
    )


def _can_batch(source) -> bool:
    """Whether a source supports cross-device analog batching."""
    return callable(getattr(source, "acquire_analog_batch", None))


@dataclass(frozen=True)
class PlanGroup:
    """A compatible sub-batch of the plan (indices into the task list)."""

    key: GroupKey
    indices: Tuple[int, ...]
    batched: bool

    @property
    def n_tasks(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class GroupReport:
    """How one sub-batch of a plan fared (see :class:`RunReport`)."""

    index: int
    n_tasks: int
    batched: bool
    status: str  # "ok" | "failed"
    wall_s: float
    error: str = ""

    def describe(self) -> dict:
        return {
            "index": self.index,
            "n_tasks": self.n_tasks,
            "batched": self.batched,
            "status": self.status,
            "wall_s": self.wall_s,
            "error": self.error,
        }


@dataclass
class RunReport:
    """Structured outcome of :meth:`MeasurementPlan.run_report`.

    ``results`` is the usual task-ordered list (``None`` where a task
    was not measured); ``groups`` records per-group status and
    wall-clock; the counters (``attempts`` / ``retries`` / ``timeouts``
    / ``respawns`` / ``dead``) are the worker-pool telemetry this run
    consumed; ``injections`` counts the faults the active injector
    (if any) fired *during* this run, per site — under chaos testing
    every injected fault must be accounted for here or in a recovery
    the report can explain.  ``cached_tasks`` counts tasks served from
    the store on a resumed run.  ``kernel_backend`` / ``fft_backend``
    record the compute tiers active for the run (worker processes
    inherit them through the pool initializer).
    """

    results: List
    groups: List[GroupReport] = field(default_factory=list)
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    respawns: int = 0
    dead: List[TaskFailure] = field(default_factory=list)
    injections: Dict[str, int] = field(default_factory=dict)
    cached_tasks: int = 0
    #: Total duration on ``time.monotonic()`` (survives clock steps);
    #: the wall clock appears only in the start/end stamps below.
    wall_s: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    kernel_backend: str = ""
    fft_backend: str = ""
    #: Metrics delta this run produced (``None`` with obs disabled).
    obs: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """Every group completed and nothing was dead-lettered."""
        return not self.dead and all(g.status == "ok" for g in self.groups)

    @property
    def n_failed_groups(self) -> int:
        return sum(1 for g in self.groups if g.status == "failed")

    def describe(self) -> dict:
        """JSON-ready view (the chaos CLI report embeds it)."""
        return {
            "ok": self.ok,
            "n_tasks": len(self.results),
            "n_measured": sum(1 for r in self.results if r is not None),
            "cached_tasks": self.cached_tasks,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "respawns": self.respawns,
            "dead": [f.describe() for f in self.dead],
            "injections": dict(self.injections),
            "wall_s": self.wall_s,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "kernel_backend": self.kernel_backend,
            "fft_backend": self.fft_backend,
            "obs": self.obs,
            "groups": [g.describe() for g in self.groups],
        }


def _pool_snapshot(pool) -> Tuple[int, int, int, int, int]:
    """The cumulative telemetry counters of a pool (zeros when absent)."""
    if pool is None:
        return (0, 0, 0, 0, 0)
    t = pool.telemetry
    return (t.attempts, t.retries, t.timeouts, t.respawns, len(t.dead))


@dataclass(frozen=True)
class MeasurementPlan:
    """A heterogeneous screen grouped into compatible sub-batches.

    Built by :func:`plan_measurements`.  ``run`` executes every group —
    batched groups through ``engine.measure_devices``, singleton /
    unbatchable tasks through ``engine.measure`` — and scatters the
    results back into task order.  Results are bit-identical to calling
    ``engine.measure(task.source, task.estimator, rng=task.rng)`` once
    per task: both paths spawn the per-record generators the same way.
    """

    tasks: Tuple[MeasurementTask, ...]
    groups: Tuple[PlanGroup, ...]
    #: The sub-batch size cap this plan was built with (``None`` =
    #: unchunked); resumed re-plans inherit it so checkpoint
    #: granularity survives an interruption.
    max_group_size: Optional[int] = None

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def n_batched_tasks(self) -> int:
        """Tasks that run inside a multi-device batch."""
        return sum(g.n_tasks for g in self.groups if g.batched)

    def _resolve_pipeline(self, engine, pipeline) -> bool:
        if pipeline == "auto":
            # Overlap pays when a pool fans analysis out and there is
            # a later group whose acquisition can fill the wait.
            return engine.backend == "process" and len(self.groups) >= 2
        return bool(pipeline)

    def _measure_fallback(self, engine, tasks, allow_failures: bool) -> List:
        """Per-task measurement of a singleton / unbatchable group."""
        out: List = []
        for task in tasks:
            try:
                out.append(
                    engine.measure(task.source, task.estimator, rng=task.rng)
                )
            except MeasurementError:
                if not allow_failures:
                    raise
                out.append(None)
        return out

    def _task_keys(self, engine) -> Optional[List[Optional[str]]]:
        """Provenance keys of every task, or ``None`` without a store.

        Computed *before* any execution: a task generator's key covers
        its spawn count, so keying after the group ran would address a
        different (consumed) stream.
        """
        if getattr(engine, "store", None) is None:
            return None
        return [
            engine.task_key(t.source, t.estimator, t.rng)
            for t in self.tasks
        ]

    def _commit(self, engine, keys, group, out, results) -> None:
        """Scatter one group's results; persist them when the engine
        writes to a store (per group, so an interrupted plan keeps
        every group that completed).

        Persistence goes through
        :meth:`~repro.engine.engine.MeasurementEngine.persist_results`,
        which fans the serialization out to the worker pool when the
        workers share the engine's store (worker-direct writes) and
        falls back to parent-side writes otherwise — bit-identical
        either way.
        """
        items = []
        for index, result in zip(group.indices, out):
            results[index] = result
            if (
                keys is not None
                and keys[index] is not None
                and result is not None
            ):
                items.append((keys[index], result))
        if not items or not getattr(engine, "cache_writes", False):
            return
        persist = getattr(engine, "persist_results", None)
        if persist is not None:
            persist(items)
        else:  # pragma: no cover - engine-like stub without the method
            for key, result in items:
                engine.store.put_result(key, result)

    def run(
        self,
        engine,
        allow_failures: bool = False,
        pipeline: Union[bool, str] = "auto",
        resume: bool = False,
        on_group_end: Optional[Callable[[int, int], None]] = None,
    ) -> List:
        """Execute the plan on an engine; results in task order.

        ``pipeline`` selects double-buffered group execution: the main
        thread acquires group ``k+1`` (serial analog + digitize work)
        while a single analysis thread runs group ``k``'s batched
        Welch pass — which, on the process backend, mostly blocks on
        the worker pool, so the two phases genuinely overlap instead
        of the pool sitting idle during every acquisition.  ``"auto"``
        (default) pipelines exactly when that idle gap exists (process
        backend, more than one group); ``True``/``False`` force the
        choice.  Either way the computations, their generators and the
        task-ordered results are identical to sequential execution —
        only the wall-clock interleaving changes.

        With a store-carrying engine, every completed group's results
        are persisted as the plan advances, and ``resume=True`` replays
        an interrupted plan by loading stored results and re-planning
        *only* the missing tasks into fresh sub-batches — stored tasks
        are never re-acquired.  Results are identical to a cold run
        (the store round-trip is bit-exact).

        ``on_group_end(group_index, n_groups)`` is a checkpoint hook
        invoked after each group's results are committed (and, with a
        store, persisted).  An exception it raises aborts the remaining
        groups but loses nothing already committed — the measurement
        service's drain/deadline/preemption points.  A checkpointed run
        executes sequentially: overlapped execution would move the
        commit the hook observes.
        """
        if resume:
            return self._run_resumed(
                engine, allow_failures, pipeline, on_group_end
            )
        keys = self._task_keys(engine)
        if on_group_end is not None or not self._resolve_pipeline(
            engine, pipeline
        ):
            results: List = [None] * len(self.tasks)
            for gi, group in enumerate(self.groups):
                tasks = [self.tasks[i] for i in group.indices]
                if group.batched:
                    out = engine.measure_devices(
                        [t.source for t in tasks],
                        [t.estimator for t in tasks],
                        rngs=[t.rng for t in tasks],
                        allow_failures=allow_failures,
                    )
                else:
                    out = self._measure_fallback(engine, tasks, allow_failures)
                self._commit(engine, keys, group, out, results)
                if on_group_end is not None:
                    on_group_end(gi, len(self.groups))
            return results
        return self._run_pipelined(engine, allow_failures, keys)

    def run_report(
        self,
        engine,
        allow_failures: bool = False,
        resume: bool = False,
        on_group_end: Optional[Callable[[int, int], None]] = None,
    ) -> RunReport:
        """Execute the plan with graceful degradation; return a report.

        Unlike :meth:`run`, a group that fails terminally (a task
        dead-lettered past its retries, a pool past its respawn
        budget, an unexpected error) does *not* abort the plan: the
        group is recorded as ``"failed"`` in the report and every
        remaining group still runs — and, on store-backed engines, is
        persisted — so one poisoned sub-batch costs its own tasks, not
        the lot.  The report carries the worker-pool telemetry this
        run consumed (attempts / retries / timeouts / respawns / dead
        letters) and, when a fault injector is active, the per-site
        counts of faults injected during the run.

        Groups execute sequentially (no acquire/analyze pipelining):
        the report attributes wall-clock and telemetry per group,
        which overlapped execution would scramble.  ``resume=True``
        behaves as in :meth:`run` — stored tasks are loaded, only the
        missing ones are re-planned and executed — with the served
        tasks counted in ``cached_tasks``.

        ``on_group_end(group_index, n_groups)`` is the checkpoint hook
        of :meth:`run`: it fires after each group commits, and an
        exception it raises stops the remaining groups while keeping
        everything already committed (unlike a group *failure*, which
        is recorded and skipped over).
        """
        started_wall = time.time()
        start = time.monotonic()
        pool = getattr(engine, "worker_pool", None)
        before = _pool_snapshot(pool)
        injector = active_injector()
        injected_before = len(injector.log) if injector is not None else 0
        obs_before = obs.snapshot()
        obs.trace_event(
            "plan.run", groups=len(self.groups), tasks=len(self.tasks)
        )

        if resume:
            report = self._run_report_resumed(
                engine, allow_failures, on_group_end
            )
        else:
            results: List = [None] * len(self.tasks)
            group_reports: List[GroupReport] = []
            keys = self._task_keys(engine)
            for gi, group in enumerate(self.groups):
                t0 = time.monotonic()
                tasks = [self.tasks[i] for i in group.indices]
                with obs.trace_span(
                    "plan.group",
                    index=gi,
                    n_tasks=group.n_tasks,
                    batched=group.batched,
                ):
                    try:
                        if group.batched:
                            out = engine.measure_devices(
                                [t.source for t in tasks],
                                [t.estimator for t in tasks],
                                rngs=[t.rng for t in tasks],
                                allow_failures=allow_failures,
                            )
                        else:
                            out = self._measure_fallback(
                                engine, tasks, allow_failures
                            )
                        self._commit(engine, keys, group, out, results)
                        status, error = "ok", ""
                    except Exception as exc:
                        status, error = "failed", repr(exc)
                wall = time.monotonic() - t0
                obs.observe("scheduler.group_seconds", wall)
                group_reports.append(
                    GroupReport(
                        index=gi,
                        n_tasks=group.n_tasks,
                        batched=group.batched,
                        status=status,
                        wall_s=wall,
                        error=error,
                    )
                )
                if on_group_end is not None:
                    on_group_end(gi, len(self.groups))
            report = RunReport(results=results, groups=group_reports)

        after = _pool_snapshot(pool)
        report.attempts += after[0] - before[0]
        report.retries += after[1] - before[1]
        report.timeouts += after[2] - before[2]
        report.respawns += after[3] - before[3]
        if pool is not None and after[4] > before[4]:
            report.dead.extend(pool.telemetry.dead[before[4]:])
        if injector is not None:
            for record in injector.log[injected_before:]:
                report.injections[record.site] = (
                    report.injections.get(record.site, 0) + 1
                )
        report.kernel_backend = get_kernel_backend()
        report.fft_backend = get_fft_backend()[0]
        report.wall_s = time.monotonic() - start
        report.started_at = started_wall
        report.finished_at = time.time()
        obs_after = obs.snapshot()
        if obs_after is not None:
            report.obs = diff_snapshots(obs_before, obs_after)
        return report

    def _run_report_resumed(
        self, engine, allow_failures: bool, on_group_end=None
    ) -> RunReport:
        """Resume path of :meth:`run_report`: serve stored tasks, run a
        sub-report over the missing ones, merge."""
        if getattr(engine, "store", None) is None or not engine.cache_reads:
            raise ConfigurationError(
                "resume=True needs an engine with a store in a "
                "read-capable cache mode"
            )
        keys = self._task_keys(engine)
        results: List = [None] * len(self.tasks)
        missing: List[int] = []
        for i, key in enumerate(keys):
            hit = engine.store.get_result(key) if key is not None else None
            if hit is not None:
                results[i] = hit
            else:
                missing.append(i)
        cached = len(self.tasks) - len(missing)
        if not missing:
            return RunReport(results=results, cached_tasks=cached)
        subplan = plan_measurements(
            [self.tasks[i] for i in missing],
            max_group_size=self.max_group_size,
        )
        sub = subplan.run_report(
            engine, allow_failures=allow_failures, on_group_end=on_group_end
        )
        for local, i in enumerate(missing):
            results[i] = sub.results[local]
        return RunReport(
            results=results,
            groups=sub.groups,
            cached_tasks=cached,
        )

    def _run_resumed(
        self,
        engine,
        allow_failures: bool,
        pipeline: Union[bool, str],
        on_group_end=None,
    ) -> List:
        """Load stored tasks, re-plan and run only the missing ones."""
        if getattr(engine, "store", None) is None or not engine.cache_reads:
            raise ConfigurationError(
                "resume=True needs an engine with a store in a "
                "read-capable cache mode"
            )
        keys = self._task_keys(engine)
        results: List = [None] * len(self.tasks)
        missing: List[int] = []
        for i, key in enumerate(keys):
            hit = engine.store.get_result(key) if key is not None else None
            if hit is not None:
                results[i] = hit
            else:
                missing.append(i)
        if missing:
            subplan = plan_measurements(
                [self.tasks[i] for i in missing],
                max_group_size=self.max_group_size,
            )
            sub_results = subplan.run(
                engine,
                allow_failures=allow_failures,
                pipeline=pipeline,
                on_group_end=on_group_end,
            )
            for local, i in enumerate(missing):
                results[i] = sub_results[local]
        return results

    def _run_pipelined(self, engine, allow_failures: bool, keys=None) -> List:
        """Double-buffered execution: acquire group k+1 during group
        k's analysis.

        Acquisition stays on the calling thread (in plan order, so
        generator spawning is identical to the sequential path);
        analysis runs on one worker thread, keeping the worker pool
        busy back to back.  Fallback (per-task) groups execute on the
        analysis thread too, preserving one-at-a-time engine use for
        everything that touches the pool.
        """
        results: List = [None] * len(self.tasks)
        pending: List[Tuple[PlanGroup, Future]] = []
        with ThreadPoolExecutor(max_workers=1) as analysis:
            for group in self.groups:
                if len(pending) >= 2:
                    # Backpressure: hold at most one acquired group in
                    # flight beyond the one being analyzed, so a long
                    # plan never stacks up record batches.
                    done_group, done_future = pending.pop(0)
                    self._commit(
                        engine, keys, done_group, done_future.result(), results
                    )
                tasks = [self.tasks[i] for i in group.indices]
                if group.batched:
                    batch = engine.acquire_devices(
                        [t.source for t in tasks],
                        [t.estimator for t in tasks],
                        rngs=[t.rng for t in tasks],
                    )
                    future = analysis.submit(
                        engine.analyze_devices,
                        batch,
                        allow_failures=allow_failures,
                    )
                else:
                    future = analysis.submit(
                        self._measure_fallback, engine, tasks, allow_failures
                    )
                pending.append((group, future))
            for group, future in pending:
                self._commit(engine, keys, group, future.result(), results)
        return results


def _coerce_task(task) -> MeasurementTask:
    if isinstance(task, MeasurementTask):
        return task
    if isinstance(task, (tuple, list)):
        if len(task) == 2:
            source, estimator = task
            return MeasurementTask(source, estimator)
        if len(task) == 3:
            source, estimator, rng = task
            return MeasurementTask(source, estimator, rng)
    raise ConfigurationError(
        "measurement tasks must be MeasurementTask or (source, estimator"
        "[, rng]) tuples, got " + repr(type(task))
    )


def plan_measurements(
    tasks: Sequence, max_group_size: Optional[int] = None
) -> MeasurementPlan:
    """Group an arbitrary task mix into compatible sub-batches.

    Tasks sharing all analysis parameters (nperseg / window / overlap /
    sample rate / record length) whose sources implement the analog
    batch protocol form one multi-device sub-batch; everything else —
    singletons, sources without ``acquire_analog_batch`` — falls back
    to per-task measurement.  Group order follows first appearance and
    indices stay ascending, so execution is deterministic.

    ``max_group_size`` caps how many tasks one sub-batch may hold: a
    compatible run of tasks is split into consecutive chunks of at most
    that many.  Because every task carries its own generator, chunking
    never changes results — it only adds group boundaries, which is
    what gives a long lot *checkpoints*: per-group persistence,
    ``on_group_end`` preemption points and bounded loss on a drain
    (see :meth:`MeasurementPlan.run_report`).
    """
    if max_group_size is not None and max_group_size < 1:
        raise ConfigurationError(
            f"max_group_size must be >= 1, got {max_group_size}"
        )
    coerced = tuple(_coerce_task(t) for t in tasks)
    batchable: dict = {}
    order: List[GroupKey] = []
    fallback: List[int] = []
    for i, task in enumerate(coerced):
        if _can_batch(task.source):
            key = _group_key(task)
            if key not in batchable:
                batchable[key] = []
                order.append(key)
            batchable[key].append(i)
        else:
            fallback.append(i)

    groups: List[PlanGroup] = []
    for key in order:
        indices = batchable[key]
        if len(indices) < 2:
            fallback.extend(indices)
            continue
        step = max_group_size or len(indices)
        for lo in range(0, len(indices), step):
            chunk = indices[lo:lo + step]
            groups.append(
                PlanGroup(key, tuple(chunk), batched=len(chunk) >= 2)
            )
    for i in sorted(fallback):
        groups.append(
            PlanGroup(_group_key(coerced[i]), (i,), batched=False)
        )
    obs.trace_event(
        "plan.created", tasks=len(coerced), groups=len(groups)
    )
    return MeasurementPlan(
        tasks=coerced,
        groups=tuple(groups),
        max_group_size=max_group_size,
    )


def _needs_retest(verdict) -> bool:
    """Whether a prior verdict sends a device back to the tester."""
    if isinstance(verdict, Verdict):
        return verdict in (Verdict.FAIL, Verdict.RETEST)
    if isinstance(verdict, str):
        try:
            return _needs_retest(Verdict(verdict))
        except ValueError:
            raise ConfigurationError(
                f"unknown verdict {verdict!r}; expected one of "
                f"{[v.value for v in Verdict]}"
            ) from None
    if isinstance(verdict, bool):
        return verdict
    raise ConfigurationError(
        f"verdicts must be Verdict, verdict strings or bools, got "
        f"{type(verdict).__name__}"
    )


def plan_retest(
    tasks: Sequence,
    verdicts: Sequence,
    retest_rngs: Optional[Sequence[GeneratorLike]] = None,
) -> MeasurementPlan:
    """Plan only the failed / guard-band devices of a prior screen.

    ``tasks`` is the full lot exactly as the original screen planned it
    (one per device, in device order); ``verdicts`` the prior
    production outcome per device (:class:`~repro.core.production.
    Verdict`, its string values, or booleans where ``True`` means
    re-measure).  Devices whose verdict is ``FAIL`` or ``RETEST`` are
    re-planned into compatible sub-batches under the usual rules —
    every other device belongs to no group, so :meth:`MeasurementPlan.
    run` leaves its slot ``None`` and the caller merges prior results
    over it (which is what makes a retest lot strictly cheaper than a
    full re-screen).

    ``retest_rngs`` optionally replaces the re-measured devices'
    generators (one entry per *task*, aligned with ``tasks``; entries
    of devices that are not re-measured are ignored).  Without it the
    retest replays each device's original seed — a pure recompute,
    which provenance-keyed stores will serve from cache.
    """
    coerced = list(_coerce_task(t) for t in tasks)
    verdicts = list(verdicts)
    if len(verdicts) != len(coerced):
        raise ConfigurationError(
            f"got {len(coerced)} tasks but {len(verdicts)} verdicts"
        )
    retest = [i for i, v in enumerate(verdicts) if _needs_retest(v)]
    if retest_rngs is not None:
        retest_rngs = list(retest_rngs)
        if len(retest_rngs) != len(coerced):
            raise ConfigurationError(
                f"got {len(coerced)} tasks but {len(retest_rngs)} "
                "retest generators"
            )
        for i in retest:
            task = coerced[i]
            coerced[i] = MeasurementTask(
                task.source, task.estimator, retest_rngs[i]
            )
    subplan = plan_measurements([coerced[i] for i in retest])
    groups = tuple(
        PlanGroup(
            group.key,
            tuple(retest[local] for local in group.indices),
            batched=group.batched,
        )
        for group in subplan.groups
    )
    return MeasurementPlan(tasks=tuple(coerced), groups=groups)


# ----------------------------------------------------------------------
# Scheduler facade
# ----------------------------------------------------------------------
#: Accepted backend spellings (the CLI exposes "serial").
_BACKEND_ALIASES = {
    "serial": "vectorized",
    "vectorized": "vectorized",
    "process": "process",
}


class MeasurementScheduler:
    """Planner + persistent pool behind one experiment-facing object.

    Either wraps an existing :class:`~repro.engine.engine.
    MeasurementEngine` (sharing its worker pool) or builds its own from
    ``backend`` / ``max_workers``.  ``run`` executes a heterogeneous
    screen through the sub-batch planner; ``map_sweep`` fans free-form
    tasks out on the shared pool.  Closing the scheduler releases the
    pool of an engine it built; an engine passed in by the caller stays
    the caller's responsibility.
    """

    def __init__(
        self,
        engine=None,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        packed: bool = True,
        rng_mode: str = "compat",
        store=None,
        cache: str = "readwrite",
        store_records: bool = False,
        retry: Optional[RetryPolicy] = None,
        cache_budget_bytes: Optional[int] = None,
    ):
        from repro.engine.engine import MeasurementEngine

        if engine is not None:
            if (
                backend != "serial"
                or max_workers is not None
                or not packed
                or rng_mode != "compat"
                or store is not None
                or cache != "readwrite"
                or store_records
                or retry is not None
                or cache_budget_bytes is not None
            ):
                raise ConfigurationError(
                    "pass either an engine or backend/max_workers/packed/"
                    "rng_mode/store/cache/store_records — an explicit "
                    "engine already carries its own configuration"
                )
            self.engine = engine
            self._owns_engine = False
        else:
            try:
                resolved = _BACKEND_ALIASES[backend]
            except KeyError:
                raise ConfigurationError(
                    f"backend must be one of "
                    f"{sorted(set(_BACKEND_ALIASES))}, got {backend!r}"
                ) from None
            self.engine = MeasurementEngine(
                backend=resolved,
                max_workers=max_workers,
                packed=packed,
                rng_mode=validate_rng_mode(rng_mode),
                store=store,
                cache=cache,
                store_records=store_records,
                retry=retry,
                cache_budget_bytes=cache_budget_bytes,
            )
            self._owns_engine = True

    @property
    def backend(self) -> str:
        return self.engine.backend

    @property
    def store(self):
        """The engine's result store (``None`` when persistence is off)."""
        return self.engine.store

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The engine's persistent pool (``None`` on the serial backend)."""
        return self.engine.worker_pool

    # ------------------------------------------------------------------
    def _release_on_error(self) -> None:
        """Error-path cleanup: never strand worker processes.

        A raise anywhere between planning and execution (a malformed
        task in ``plan_measurements``, a domain error mid-run, a
        KeyboardInterrupt) used to leave an owned engine's spawned pool
        alive with no one responsible for it unless the caller used the
        context-manager form.  Closing here is safe and cheap: the
        engine stays usable — its next fan-out respawns transparently.
        """
        if self._owns_engine:
            self.engine.close()

    def plan(
        self, tasks: Sequence, max_group_size: Optional[int] = None
    ) -> MeasurementPlan:
        """Group tasks into compatible sub-batches (introspectable).

        ``max_group_size`` caps tasks per sub-batch — extra group
        boundaries mean finer persistence/checkpoint granularity, same
        results (see :func:`plan_measurements`).
        """
        return plan_measurements(tasks, max_group_size=max_group_size)

    def run(
        self,
        tasks: Sequence,
        allow_failures: bool = False,
        pipeline: Union[bool, str] = "auto",
        resume: bool = False,
        max_group_size: Optional[int] = None,
        on_group_end: Optional[Callable[[int, int], None]] = None,
    ) -> List:
        """Plan and execute a heterogeneous screen, results in task order.

        Bit-identical to per-task ``engine.measure`` calls; compatible
        tasks share one multi-device batch (one digitize pass, one
        batched Welch pass — fanned over the persistent pool on the
        process backend).  ``pipeline`` (default ``"auto"``) overlaps
        one group's acquisition with the previous group's Welch
        fan-out on the pool — see :meth:`MeasurementPlan.run`.
        ``resume=True`` (store-backed engines) loads already-persisted
        tasks and recomputes only the missing ones.
        ``max_group_size`` / ``on_group_end`` add checkpoint boundaries
        and a per-boundary hook (see :func:`plan_measurements`).
        """
        try:
            return self.plan(tasks, max_group_size=max_group_size).run(
                self.engine,
                allow_failures=allow_failures,
                pipeline=pipeline,
                resume=resume,
                on_group_end=on_group_end,
            )
        except BaseException:
            self._release_on_error()
            raise

    def run_report(
        self,
        tasks: Sequence,
        allow_failures: bool = False,
        resume: bool = False,
        max_group_size: Optional[int] = None,
        on_group_end: Optional[Callable[[int, int], None]] = None,
    ) -> RunReport:
        """Plan and execute a screen with graceful degradation.

        Like :meth:`run`, but a terminally failed sub-batch is recorded
        in the returned :class:`RunReport` instead of aborting the lot
        — see :meth:`MeasurementPlan.run_report`.
        """
        try:
            return self.plan(
                tasks, max_group_size=max_group_size
            ).run_report(
                self.engine,
                allow_failures=allow_failures,
                resume=resume,
                on_group_end=on_group_end,
            )
        except BaseException:
            self._release_on_error()
            raise

    def run_retest(
        self,
        tasks: Sequence,
        verdicts: Sequence,
        retest_rngs: Optional[Sequence[GeneratorLike]] = None,
        allow_failures: bool = False,
        pipeline: Union[bool, str] = "auto",
    ) -> List:
        """Re-measure only the failed / guard-band devices of a lot.

        Results come back in task order with ``None`` for devices whose
        prior verdict stands (the caller merges prior measurements over
        them) — see :func:`plan_retest`.
        """
        try:
            return plan_retest(tasks, verdicts, retest_rngs=retest_rngs).run(
                self.engine, allow_failures=allow_failures, pipeline=pipeline
            )
        except BaseException:
            self._release_on_error()
            raise

    def map_sweep(
        self,
        fn: Callable,
        tasks: Sequence,
        seed: GeneratorLike = None,
        rngs: Optional[Sequence[GeneratorLike]] = None,
    ) -> List:
        """Free-form sweep on the engine (persistent pool underneath)."""
        try:
            return self.engine.map_sweep(fn, tasks, seed=seed, rngs=rngs)
        except BaseException:
            self._release_on_error()
            raise

    def close(self) -> None:
        """Release the pool of an engine this scheduler created."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "MeasurementScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def as_scheduler(engine=None, scheduler=None) -> MeasurementScheduler:
    """Resolve the experiments-layer ``engine=`` / ``scheduler=`` pair.

    An explicit scheduler wins; an explicit engine is wrapped (sharing
    its pool); with neither, a default in-process scheduler is built.
    The caller keeps ownership either way — experiments never close a
    pool they were handed.
    """
    if scheduler is not None:
        return scheduler
    return MeasurementScheduler(engine=engine)
