"""Selectable FFT backend for the blocked batched Welch transforms.

``numpy.fft`` is the default and always available.  ``scipy.fft``
(pocketfft with a ``workers=`` thread pool) can be opted into for the
batched transforms — scipy's pocketfft is bit-identical to numpy's for
real input (verified in the engine PR and re-asserted in
``tests/unit/test_fft_backend.py``), so switching backends changes
wall-clock only, never results.  On single-core hosts the thread pool
buys nothing; see docs/PERFORMANCE.md.

The backend is process-global state (like numpy's own error state):
worker processes of the engine's process backend start at the numpy
default unless their initializer opts in.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

_BACKENDS = ("numpy", "scipy")

_backend: str = "numpy"
_workers: Optional[int] = None


def _scipy_fft():
    try:
        import scipy.fft as sp_fft
    except ImportError:  # pragma: no cover - depends on environment
        return None
    return sp_fft


def scipy_fft_available() -> bool:
    """True when ``scipy.fft`` can be imported."""
    return _scipy_fft() is not None


def set_fft_backend(name: str, workers: Optional[int] = None) -> None:
    """Select the FFT backend for the blocked batched transforms.

    Parameters
    ----------
    name:
        ``"numpy"`` (default) or ``"scipy"``.
    workers:
        Thread count for scipy's pocketfft (``None`` = scipy default,
        single-threaded; ``-1`` = all cores).  Ignored by numpy.
    """
    global _backend, _workers
    if name not in _BACKENDS:
        raise ConfigurationError(
            f"fft backend must be one of {_BACKENDS}, got {name!r}"
        )
    if name == "scipy" and not scipy_fft_available():
        raise ConfigurationError(
            "scipy.fft backend requested but scipy is not installed; "
            "the numpy fallback remains active"
        )
    if workers is not None and workers == 0:
        raise ConfigurationError("workers must be nonzero (or None)")
    _backend = name
    _workers = workers


def get_fft_backend() -> Tuple[str, Optional[int]]:
    """The active ``(backend, workers)`` pair."""
    return _backend, _workers


@contextmanager
def fft_backend(name: str, workers: Optional[int] = None):
    """Temporarily select an FFT backend (restores on exit)."""
    previous = get_fft_backend()
    set_fft_backend(name, workers)
    try:
        yield
    finally:
        set_fft_backend(*previous)


def rfft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Real FFT through the selected backend (bit-identical results)."""
    if _backend == "scipy":
        sp_fft = _scipy_fft()
        if sp_fft is not None:
            return sp_fft.rfft(x, axis=axis, workers=_workers)
        # scipy vanished after selection (e.g. broken env): fall through.
    return np.fft.rfft(x, axis=axis)
