"""Selectable FFT backend + cached rfft execution plans.

``numpy.fft`` is the default and always available.  ``scipy.fft``
(pocketfft with a ``workers=`` thread pool) can be opted into for the
batched transforms — scipy's pocketfft is bit-identical to numpy's for
real input (verified in the engine PR and re-asserted in
``tests/unit/test_fft_backend.py``), so switching backends changes
wall-clock only, never results.  On single-core hosts the thread pool
buys nothing; see docs/PERFORMANCE.md.

The backend is process-global state (like numpy's own error state):
worker processes of the engine's process backend inherit the parent's
selection through the pool initializer with ``workers`` pinned to 1 —
one thread pool per core is a fight, not a speedup — while parent-side
analysis keeps the full ``workers=`` fan-out.

:func:`plan_rfft` is the plan registry on top: a thread-local cache of
per-``(backend, workers, shape, dtype)`` execution plans.  A numpy
plan owns a preallocated complex output buffer and transforms with
``rfft(..., out=)`` (bit-identical to the allocating call; the result
is valid until the plan's next execute).  A scipy plan pins the
``workers=`` thread fan-out.  The blocked Welch kernels issue the same
``(block_segments, nperseg)`` transform hundreds of times per record,
which is exactly the shape-stable workload plans pay off on.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

_BACKENDS = ("numpy", "scipy")

_backend: str = "numpy"
_workers: Optional[int] = None


def _scipy_fft():
    try:
        import scipy.fft as sp_fft
    except ImportError:  # pragma: no cover - depends on environment
        return None
    return sp_fft


def scipy_fft_available() -> bool:
    """True when ``scipy.fft`` can be imported."""
    return _scipy_fft() is not None


def set_fft_backend(name: str, workers: Optional[int] = None) -> None:
    """Select the FFT backend for the blocked batched transforms.

    Parameters
    ----------
    name:
        ``"numpy"`` (default) or ``"scipy"``.
    workers:
        Thread count for scipy's pocketfft (``None`` = scipy default,
        single-threaded; ``-1`` = all cores).  Ignored by numpy.
    """
    global _backend, _workers
    if name not in _BACKENDS:
        raise ConfigurationError(
            f"fft backend must be one of {_BACKENDS}, got {name!r}"
        )
    if name == "scipy" and not scipy_fft_available():
        raise ConfigurationError(
            "scipy.fft backend requested but scipy is not installed; "
            "the numpy fallback remains active"
        )
    if workers is not None and workers == 0:
        raise ConfigurationError("workers must be nonzero (or None)")
    _backend = name
    _workers = workers


def get_fft_backend() -> Tuple[str, Optional[int]]:
    """The active ``(backend, workers)`` pair."""
    return _backend, _workers


@contextmanager
def fft_backend(name: str, workers: Optional[int] = None):
    """Temporarily select an FFT backend (restores on exit)."""
    previous = get_fft_backend()
    set_fft_backend(name, workers)
    try:
        yield
    finally:
        set_fft_backend(*previous)


def rfft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Real FFT through the selected backend (bit-identical results)."""
    if _backend == "scipy":
        sp_fft = _scipy_fft()
        if sp_fft is not None:
            return sp_fft.rfft(x, axis=axis, workers=_workers)
        # scipy vanished after selection (e.g. broken env): fall through.
    return np.fft.rfft(x, axis=axis)


# ----------------------------------------------------------------------
# Plan registry
# ----------------------------------------------------------------------
_RFFT_OUT_SUPPORTED: Optional[bool] = None


def _rfft_supports_out() -> bool:
    """Whether this numpy's ``rfft`` takes ``out=`` (numpy >= 2.0)."""
    global _RFFT_OUT_SUPPORTED
    if _RFFT_OUT_SUPPORTED is None:
        try:
            np.fft.rfft(np.zeros(2), out=np.empty(2, dtype=np.complex128))
            _RFFT_OUT_SUPPORTED = True
        except TypeError:  # pragma: no cover - older numpy
            _RFFT_OUT_SUPPORTED = False
    return _RFFT_OUT_SUPPORTED


class RfftPlan:
    """One cached last-axis real-FFT execution plan.

    Pins the transform shape, dtype, backend and thread fan-out at
    creation.  Numpy plans preallocate the complex output once and
    transform with ``out=`` — the returned array is the plan's own
    buffer, **valid until the next** :meth:`execute` — so shape-stable
    block loops stop faulting a fresh spectrum per block.  Scipy plans
    carry the pocketfft ``workers=`` setting.  Either way the values
    are bit-identical to ``numpy.fft.rfft``.
    """

    __slots__ = ("shape", "dtype", "backend", "workers", "_out")

    def __init__(
        self,
        shape: Tuple[int, ...],
        dtype,
        backend: str,
        workers: Optional[int],
    ):
        if len(shape) == 0 or any(s <= 0 for s in shape):
            raise ConfigurationError(f"invalid rfft plan shape {shape}")
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.backend = backend
        self.workers = workers
        self._out = None
        if backend == "numpy" and _rfft_supports_out():
            out_shape = self.shape[:-1] + (self.shape[-1] // 2 + 1,)
            self._out = np.empty(out_shape, dtype=np.complex128)

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Transform ``x`` (must match the planned shape) along axis -1."""
        if x.shape != self.shape:
            raise ConfigurationError(
                f"plan expects shape {self.shape}, got {x.shape}"
            )
        if self.backend == "scipy":
            sp_fft = _scipy_fft()
            if sp_fft is not None:
                return sp_fft.rfft(x, axis=-1, workers=self.workers)
        if self._out is not None:
            return np.fft.rfft(x, axis=-1, out=self._out)
        return np.fft.rfft(x, axis=-1)


_PLANS = threading.local()


def _plan_state():
    state = getattr(_PLANS, "state", None)
    if state is None:
        state = _PLANS.state = {"plans": {}, "hits": 0, "misses": 0}
    return state


def plan_rfft(shape, dtype=np.float64) -> RfftPlan:
    """The cached :class:`RfftPlan` for ``(shape, dtype)``.

    Plans are cached per thread and keyed by the active backend and
    worker count as well, so a backend switch mid-session gets fresh
    plans and worker threads (which pin ``workers=1``) never share
    output buffers with the parent.
    """
    shape = (int(shape),) if np.isscalar(shape) else tuple(
        int(s) for s in shape
    )
    dtype = np.dtype(dtype)
    state = _plan_state()
    key = (_backend, _workers, shape, dtype.str)
    plan = state["plans"].get(key)
    if plan is None:
        state["misses"] += 1
        plan = state["plans"][key] = RfftPlan(shape, dtype, _backend, _workers)
    else:
        state["hits"] += 1
    return plan


def plan_cache_info() -> dict:
    """This thread's plan-cache counters: size, hits, misses."""
    state = _plan_state()
    return {
        "plans": len(state["plans"]),
        "hits": state["hits"],
        "misses": state["misses"],
    }


def clear_plan_cache() -> None:
    """Drop this thread's cached plans (and reset the counters)."""
    state = _plan_state()
    state["plans"].clear()
    state["hits"] = 0
    state["misses"] = 0
