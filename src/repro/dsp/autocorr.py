"""Autocorrelation estimators (FFT-based).

Used to verify the arcsine law (paper eq 12): the autocorrelation of the
1-bit digitizer output must match ``(2/pi)*arcsin(rho_x)`` of the analog
input's normalized autocorrelation.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


def autocorrelation(
    signal: Union[Waveform, np.ndarray],
    max_lag: int,
    unbiased: bool = False,
    remove_mean: bool = True,
) -> np.ndarray:
    """Estimate ``R[k]`` for lags ``0..max_lag`` via FFT.

    ``biased`` (default) divides by ``N`` for every lag, which keeps the
    estimate positive-semidefinite; ``unbiased`` divides by ``N-k``.
    """
    samples = signal.samples if isinstance(signal, Waveform) else np.asarray(signal, float)
    if samples.ndim != 1:
        raise ConfigurationError(f"signal must be 1-D, got shape {samples.shape}")
    n = samples.size
    if n < 2:
        raise ConfigurationError("autocorrelation needs at least two samples")
    if not 0 <= max_lag < n:
        raise ConfigurationError(
            f"max_lag must be in [0, {n - 1}], got {max_lag}"
        )
    x = samples - np.mean(samples) if remove_mean else samples.copy()
    nfft = 1
    while nfft < 2 * n:
        nfft *= 2
    spectrum = np.fft.rfft(x, n=nfft)
    raw = np.fft.irfft(spectrum * np.conj(spectrum), n=nfft)[: max_lag + 1]
    if unbiased:
        divisors = n - np.arange(max_lag + 1)
        return raw / divisors
    return raw / n


def normalized_autocorrelation(
    signal: Union[Waveform, np.ndarray],
    max_lag: int,
    remove_mean: bool = True,
) -> np.ndarray:
    """Autocorrelation normalized to ``rho[0] == 1``."""
    r = autocorrelation(signal, max_lag, unbiased=False, remove_mean=remove_mean)
    if r[0] <= 0:
        raise ConfigurationError("signal has zero power; cannot normalize")
    return r / r[0]
