"""One-sided power-spectral-density container.

:class:`Spectrum` is what the PSD estimators return and what the
reference-line normalization of the paper operates on: it supports band
power integration with exclusion zones (so the reference line and its
harmonics can be excluded, cf. Table 2's "1-bit PSD ratio excluding
reference"), line-power measurement around a nominal frequency and
rescaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, MeasurementError


@dataclass(frozen=True)
class Spectrum:
    """One-sided PSD on a uniform frequency grid.

    Parameters
    ----------
    frequencies:
        Bin center frequencies in Hz, uniformly spaced from 0.
    psd:
        One-sided power spectral density in V^2/Hz, same length.
    enbw_hz:
        Equivalent noise bandwidth of the analysis window in Hz; needed to
        convert a spectral line's peak density into line power.
    """

    frequencies: np.ndarray
    psd: np.ndarray
    enbw_hz: float

    def __init__(self, frequencies, psd, enbw_hz: Optional[float] = None):
        f = np.asarray(frequencies, dtype=float)
        p = np.asarray(psd, dtype=float)
        if f.ndim != 1 or p.ndim != 1 or f.size != p.size:
            raise ConfigurationError(
                f"frequencies and psd must be equal-length 1-D arrays, got "
                f"{f.shape} and {p.shape}"
            )
        if f.size < 2:
            raise ConfigurationError("a spectrum needs at least two bins")
        df = np.diff(f)
        if np.any(df <= 0) or not np.allclose(df, df[0], rtol=1e-9, atol=0.0):
            raise ConfigurationError("frequency grid must be uniform and increasing")
        if np.any(p < 0):
            raise ConfigurationError("PSD values must be non-negative")
        f = f.copy()
        p = p.copy()
        f.setflags(write=False)
        p.setflags(write=False)
        object.__setattr__(self, "frequencies", f)
        object.__setattr__(self, "psd", p)
        object.__setattr__(
            self, "enbw_hz", float(enbw_hz) if enbw_hz is not None else float(df[0])
        )

    # ------------------------------------------------------------------
    @property
    def df(self) -> float:
        """Bin spacing in Hz."""
        return float(self.frequencies[1] - self.frequencies[0])

    @property
    def f_max(self) -> float:
        """Highest bin frequency in Hz."""
        return float(self.frequencies[-1])

    def __len__(self) -> int:
        return self.frequencies.size

    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "Spectrum":
        """Return the spectrum multiplied by a non-negative power factor."""
        if factor < 0:
            raise ConfigurationError(f"scale factor must be >= 0, got {factor}")
        return Spectrum(self.frequencies, self.psd * float(factor), self.enbw_hz)

    def total_power(self) -> float:
        """Integrated power over the full grid (V^2)."""
        return float(np.sum(self.psd) * self.df)

    def _band_indices(self, f_low: float, f_high: float) -> np.ndarray:
        if f_low >= f_high:
            raise ConfigurationError(
                f"band must satisfy f_low < f_high, got [{f_low}, {f_high}]"
            )
        mask = (self.frequencies >= f_low) & (self.frequencies <= f_high)
        idx = np.nonzero(mask)[0]
        if idx.size == 0:
            raise MeasurementError(
                f"band [{f_low}, {f_high}] Hz contains no spectral bins "
                f"(grid df={self.df} Hz, f_max={self.f_max} Hz)"
            )
        return idx

    def band_power(
        self,
        f_low: float,
        f_high: float,
        exclude: Sequence[Tuple[float, float]] = (),
    ) -> float:
        """Integrated power in ``[f_low, f_high]``, in V^2.

        ``exclude`` is a sequence of ``(center_hz, halfwidth_hz)`` zones
        removed from the integration — this is how the reference line and
        its harmonics are kept out of the noise-power estimate.
        """
        idx = self._band_indices(f_low, f_high)
        keep = np.ones(idx.size, dtype=bool)
        freqs = self.frequencies[idx]
        for center, halfwidth in exclude:
            if halfwidth < 0:
                raise ConfigurationError(
                    f"exclusion halfwidth must be >= 0, got {halfwidth}"
                )
            keep &= np.abs(freqs - center) > halfwidth
        if not np.any(keep):
            raise MeasurementError(
                f"band [{f_low}, {f_high}] Hz is fully excluded"
            )
        return float(np.sum(self.psd[idx][keep]) * self.df)

    def band_mean_density(
        self,
        f_low: float,
        f_high: float,
        exclude: Sequence[Tuple[float, float]] = (),
    ) -> float:
        """Mean PSD density over a band with exclusions (V^2/Hz)."""
        idx = self._band_indices(f_low, f_high)
        keep = np.ones(idx.size, dtype=bool)
        freqs = self.frequencies[idx]
        for center, halfwidth in exclude:
            keep &= np.abs(freqs - center) > halfwidth
        if not np.any(keep):
            raise MeasurementError(f"band [{f_low}, {f_high}] Hz is fully excluded")
        return float(np.mean(self.psd[idx][keep]))

    # ------------------------------------------------------------------
    def find_peak(self, f_nominal: float, search_halfwidth_hz: float) -> Tuple[float, float]:
        """Locate the strongest bin near ``f_nominal``.

        Returns ``(frequency, psd_value)`` of the peak bin within
        ``f_nominal +/- search_halfwidth_hz``.
        """
        if search_halfwidth_hz <= 0:
            raise ConfigurationError(
                f"search halfwidth must be > 0, got {search_halfwidth_hz}"
            )
        idx = self._band_indices(
            max(0.0, f_nominal - search_halfwidth_hz),
            f_nominal + search_halfwidth_hz,
        )
        best = idx[np.argmax(self.psd[idx])]
        return float(self.frequencies[best]), float(self.psd[best])

    def line_power(
        self,
        f_nominal: float,
        search_halfwidth_hz: float,
        integration_halfwidth_hz: Optional[float] = None,
        subtract_floor: bool = True,
    ) -> Tuple[float, float]:
        """Measure the power of a spectral line near ``f_nominal``.

        The line is located by peak search, then its power is integrated
        over ``peak +/- integration_halfwidth_hz`` (default: one window
        ENBW on each side).  Returns ``(line_frequency, line_power_v2)``.

        With ``subtract_floor`` (default) the local noise-floor density —
        the median PSD in an annulus from 2x to 6x the integration
        half-width around the line — is subtracted from the integrated
        window.  Without this correction the floor under the line biases
        weak-line measurements (the hot state of the BIST, whose
        reference-to-noise ratio is smallest).
        """
        peak_f, _ = self.find_peak(f_nominal, search_halfwidth_hz)
        if integration_halfwidth_hz is None:
            integration_halfwidth_hz = self.enbw_hz
        if integration_halfwidth_hz <= 0:
            raise ConfigurationError(
                "integration halfwidth must be > 0, got "
                f"{integration_halfwidth_hz}"
            )
        offsets = np.abs(self.frequencies - peak_f)
        mask = offsets <= integration_halfwidth_hz
        power = float(np.sum(self.psd[mask]) * self.df)
        if subtract_floor:
            annulus = (offsets > 2.0 * integration_halfwidth_hz) & (
                offsets <= 6.0 * integration_halfwidth_hz
            )
            if np.any(annulus):
                floor_density = float(np.median(self.psd[annulus]))
                power -= floor_density * int(np.count_nonzero(mask)) * self.df
        if power <= 0:
            raise MeasurementError(
                f"no line power found at {peak_f} Hz above the local noise "
                "floor"
            )
        return peak_f, power

    def slice_band(self, f_low: float, f_high: float) -> "Spectrum":
        """Return the spectrum restricted to a band (for zoomed plots)."""
        idx = self._band_indices(f_low, f_high)
        if idx.size < 2:
            raise MeasurementError(
                f"band [{f_low}, {f_high}] Hz has fewer than two bins"
            )
        return Spectrum(self.frequencies[idx], self.psd[idx], self.enbw_hz)

    def to_db(self, reference: float = 1.0) -> np.ndarray:
        """PSD in dB relative to ``reference`` (zero bins clipped to -300 dB)."""
        if reference <= 0:
            raise ConfigurationError(f"reference must be > 0, got {reference}")
        safe = np.maximum(self.psd / reference, 1e-30)
        return 10.0 * np.log10(safe)


@dataclass(frozen=True)
class SpectrumBatch:
    """A stack of one-sided PSDs sharing one frequency grid.

    This is the batched counterpart of :class:`Spectrum`, produced by
    :func:`repro.dsp.psd.welch_batch`: ``psd`` holds one record's density
    per row.  Rows are materialized as :class:`Spectrum` objects on
    demand (indexing or :meth:`spectra`), so downstream code written
    against the scalar container keeps working.
    """

    frequencies: np.ndarray
    psd: np.ndarray
    enbw_hz: float

    def __init__(self, frequencies, psd, enbw_hz: Optional[float] = None):
        f = np.asarray(frequencies, dtype=float)
        p = np.asarray(psd, dtype=float)
        if f.ndim != 1 or p.ndim != 2 or p.shape[1] != f.size:
            raise ConfigurationError(
                "frequencies must be 1-D and psd (n_records, n_bins) with "
                f"matching bins, got {f.shape} and {p.shape}"
            )
        if f.size < 2:
            raise ConfigurationError("a spectrum needs at least two bins")
        object.__setattr__(self, "frequencies", f)
        object.__setattr__(self, "psd", p)
        object.__setattr__(
            self,
            "enbw_hz",
            float(enbw_hz) if enbw_hz is not None else float(f[1] - f[0]),
        )

    @property
    def n_records(self) -> int:
        """Number of stacked PSDs."""
        return self.psd.shape[0]

    def __len__(self) -> int:
        return self.psd.shape[0]

    def __getitem__(self, index: int) -> Spectrum:
        return Spectrum(self.frequencies, self.psd[index], self.enbw_hz)

    def spectra(self) -> List[Spectrum]:
        """All rows as scalar :class:`Spectrum` objects."""
        return [self[i] for i in range(self.psd.shape[0])]
