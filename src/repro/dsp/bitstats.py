"""Bit-domain statistics of packed 1-bit records (popcount kernels).

A ±1 bitstream's first and second moments are pure bit counts: with
``k`` set bits among ``n`` samples the sum is exactly ``2k - n`` and
the mean square is exactly ``1``.  Both are therefore computable on the
*packed words* — one popcount pass over 1/64th of the float data — and,
crucially, the popcount mean is **bit-identical** to ``numpy.mean`` of
the unpacked float record: the float sum of ±1 values is an integer of
magnitude ``<= n << 2**53``, so pairwise summation commits no rounding
and both paths divide the same exact integer by the same ``n``.

:func:`popcount` uses ``numpy.bitwise_count`` (numpy >= 2.0) with a
256-entry lookup-table fallback.  :func:`packed_segment_means` extends
the trick to the Welch segment grid: when segment boundaries are
byte-aligned (``nperseg % 8 == step % 8 == 0`` — true at the paper's
nperseg 1e4 / 50 % overlap), every segment mean falls out of one
cumulative popcount over the words, which is what lets the packed
Welch kernel replace the per-sample detrend subtraction with a
rank-one spectral correction (see
:func:`repro.dsp.psd.accumulate_packed_spectral_power`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.bitstream import PackedBitstream
from repro.errors import ConfigurationError

__all__ = [
    "popcount",
    "packed_ones",
    "packed_mean",
    "packed_mean_square",
    "segment_grid_aligned",
    "packed_segment_ones",
    "packed_segment_means",
]

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Set-bit counts of every byte value — the portable popcount.
_POPCOUNT_TABLE = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-byte set-bit counts (``numpy.bitwise_count`` or table lookup)."""
    arr = np.asarray(words, dtype=np.uint8)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(arr)
    return _POPCOUNT_TABLE[arr]


def packed_ones(packed: PackedBitstream) -> int:
    """Total set bits of a packed record (padding bits are zero)."""
    return int(popcount(packed.words).sum())


def packed_mean(packed: PackedBitstream) -> float:
    """Mean of the ±1 record, computed on the packed words.

    Bit-identical to ``packed.unpack().mean()``: both reduce to the
    exact integer ``2k - n`` divided by ``n``.
    """
    if packed.n_samples == 0:
        raise ConfigurationError("mean of an empty record is undefined")
    n = packed.n_samples
    return (2.0 * packed_ones(packed) - n) / n


def packed_mean_square(packed: PackedBitstream) -> float:
    """Mean square of the ±1 record — exactly 1 by construction."""
    if packed.n_samples == 0:
        raise ConfigurationError("mean square of an empty record is undefined")
    return 1.0


def segment_grid_aligned(nperseg: int, step: int) -> bool:
    """Whether a Welch segment grid lands on packed-word boundaries.

    Byte alignment is what lets per-segment bit counts come from one
    cumulative popcount; misaligned grids fall back to the float
    detrend path (bit-identical results, just without the popcount
    shortcut).
    """
    return nperseg > 0 and step > 0 and nperseg % 8 == 0 and step % 8 == 0


def packed_segment_ones(
    packed: PackedBitstream, nperseg: int, step: int
) -> np.ndarray:
    """Set-bit count of every Welch segment, from one popcount pass.

    Segments follow the :func:`repro.dsp.psd.frame_segments` grid
    (``n_segments = 1 + (n - nperseg) // step``) and must be
    byte-aligned (:func:`segment_grid_aligned`).
    """
    if not segment_grid_aligned(nperseg, step):
        raise ConfigurationError(
            f"segment grid nperseg={nperseg}, step={step} is not "
            "byte-aligned; bit-domain segment counts need "
            "nperseg % 8 == step % 8 == 0"
        )
    if packed.n_samples < nperseg:
        raise ConfigurationError(
            f"record has {packed.n_samples} samples but nperseg={nperseg}"
        )
    n_segments = 1 + (packed.n_samples - nperseg) // step
    word_step = step // 8
    word_seg = nperseg // 8
    # Segment boundaries all fall on multiples of gcd(step, nperseg)/8
    # words, so the prefix sum only needs that granularity: one
    # vectorized chunk reduction over the byte counts, then a cumsum
    # over the (few hundred) chunks instead of every word.
    chunk = math.gcd(word_step, word_seg)
    last_word = (n_segments - 1) * word_step + word_seg
    n_chunks = last_word // chunk
    counts = popcount(packed.words[:last_word])
    chunk_sums = counts.reshape(n_chunks, chunk).sum(axis=1, dtype=np.int64)
    prefix = np.zeros(n_chunks + 1, dtype=np.int64)
    np.cumsum(chunk_sums, out=prefix[1:])
    lo = np.arange(n_segments, dtype=np.int64) * (word_step // chunk)
    return prefix[lo + word_seg // chunk] - prefix[lo]


def packed_segment_means(
    packed: PackedBitstream, nperseg: int, step: int
) -> np.ndarray:
    """Mean of every ±1 Welch segment, computed in the bit domain.

    Bit-identical to the float path's per-segment
    ``segment.mean(axis=-1)`` (see :func:`packed_mean` for why), so the
    spectral detrend correction built on these means matches the float
    detrend to FFT rounding.
    """
    ones = packed_segment_ones(packed, nperseg, step)
    return (2.0 * ones - nperseg) / nperseg
