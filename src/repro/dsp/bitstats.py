"""Bit-domain statistics of packed 1-bit records (popcount kernels).

A ±1 bitstream's first and second moments are pure bit counts: with
``k`` set bits among ``n`` samples the sum is exactly ``2k - n`` and
the mean square is exactly ``1``.  Both are therefore computable on the
*packed words* — one popcount pass over 1/64th of the float data — and,
crucially, the popcount mean is **bit-identical** to ``numpy.mean`` of
the unpacked float record: the float sum of ±1 values is an integer of
magnitude ``<= n << 2**53``, so pairwise summation commits no rounding
and both paths divide the same exact integer by the same ``n``.

:func:`popcount` uses ``numpy.bitwise_count`` (numpy >= 2.0) with a
256-entry lookup-table fallback.  :func:`packed_segment_means` extends
the trick to the Welch segment grid: when segment boundaries are
byte-aligned (``nperseg % 8 == step % 8 == 0`` — true at the paper's
nperseg 1e4 / 50 % overlap), every segment mean falls out of one
cumulative popcount over the words, which is what lets the packed
Welch kernel replace the per-sample detrend subtraction with a
rank-one spectral correction (see
:func:`repro.dsp.psd.accumulate_packed_spectral_power`).
"""

from __future__ import annotations

import numpy as np

from repro.bitstream import PackedBitstream
from repro.errors import ConfigurationError
from repro.kernels import get_kernel

__all__ = [
    "popcount",
    "packed_ones",
    "packed_mean",
    "packed_mean_square",
    "segment_grid_aligned",
    "packed_segment_ones",
    "packed_segment_means",
]

def popcount(words: np.ndarray) -> np.ndarray:
    """Per-byte set-bit counts through the active kernel backend.

    Bit-identical across backends: ``numpy.bitwise_count`` on the
    tuned/numba tiers, 256-entry table lookup on reference.
    """
    return get_kernel("popcount")(words)


def packed_ones(packed: PackedBitstream) -> int:
    """Total set bits of a packed record (padding bits are zero)."""
    return int(popcount(packed.words).sum())


def packed_mean(packed: PackedBitstream) -> float:
    """Mean of the ±1 record, computed on the packed words.

    Bit-identical to ``packed.unpack().mean()``: both reduce to the
    exact integer ``2k - n`` divided by ``n``.
    """
    if packed.n_samples == 0:
        raise ConfigurationError("mean of an empty record is undefined")
    n = packed.n_samples
    return (2.0 * packed_ones(packed) - n) / n


def packed_mean_square(packed: PackedBitstream) -> float:
    """Mean square of the ±1 record — exactly 1 by construction."""
    if packed.n_samples == 0:
        raise ConfigurationError("mean square of an empty record is undefined")
    return 1.0


def segment_grid_aligned(nperseg: int, step: int) -> bool:
    """Whether a Welch segment grid lands on packed-word boundaries.

    Byte alignment is what lets per-segment bit counts come from one
    cumulative popcount; misaligned grids fall back to the float
    detrend path (bit-identical results, just without the popcount
    shortcut).
    """
    return nperseg > 0 and step > 0 and nperseg % 8 == 0 and step % 8 == 0


def packed_segment_ones(
    packed: PackedBitstream, nperseg: int, step: int
) -> np.ndarray:
    """Set-bit count of every Welch segment, from one popcount pass.

    Segments follow the :func:`repro.dsp.psd.frame_segments` grid
    (``n_segments = 1 + (n - nperseg) // step``) and must be
    byte-aligned (:func:`segment_grid_aligned`).
    """
    if not segment_grid_aligned(nperseg, step):
        raise ConfigurationError(
            f"segment grid nperseg={nperseg}, step={step} is not "
            "byte-aligned; bit-domain segment counts need "
            "nperseg % 8 == step % 8 == 0"
        )
    if packed.n_samples < nperseg:
        raise ConfigurationError(
            f"record has {packed.n_samples} samples but nperseg={nperseg}"
        )
    return get_kernel("segment_ones")(
        packed.words, packed.n_samples, nperseg, step
    )


def packed_segment_means(
    packed: PackedBitstream, nperseg: int, step: int
) -> np.ndarray:
    """Mean of every ±1 Welch segment, computed in the bit domain.

    Bit-identical to the float path's per-segment
    ``segment.mean(axis=-1)`` (see :func:`packed_mean` for why), so the
    spectral detrend correction built on these means matches the float
    detrend to FFT rounding.
    """
    ones = packed_segment_ones(packed, nperseg, step)
    return (2.0 * ones - nperseg) / nperseg
