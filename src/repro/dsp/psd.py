"""Power-spectral-density estimators (periodogram and Welch), from scratch.

Scaling convention: one-sided PSD in V^2/Hz such that
``sum(psd) * df == mean_square(signal)`` for the periodogram of a
stationary signal (Parseval).  The Welch estimator averages modified
periodograms of overlapping windowed segments, exactly what the paper's
Matlab post-processing (1e6 samples, FFT size 1e4) performs.

The Welch hot path is fully vectorized: segments are framed with
``numpy.lib.stride_tricks.sliding_window_view`` (a zero-copy view) and
transformed with batched real-FFT calls over blocks of segments.
Blocks rather than one monolithic ``(n_segments, nperseg)`` transform keep
the detrend/window/square intermediates cache-resident, which on
memory-bandwidth-limited hosts is roughly 2x faster than either the
per-segment loop or the single giant batch.  ``welch_batch`` extends the
same kernel across a stack of records — the
``(n_records, n_segments, nperseg)`` framing used by the measurement
engine (:mod:`repro.engine`).

Both estimators also accept packed 1-bit records
(:class:`~repro.bitstream.PackedBitstream` /
:class:`~repro.bitstream.PackedRecordBatch`): the kernel unpacks one
FFT block at a time into a pooled scratch buffer, so a paper-scale
record is held at ~1 bit/sample for its whole analysis.  Because the
unpacked floats and the block boundaries are identical to the float
path, packed PSDs are bit-identical to their float64 counterparts.

The batched transforms go through :mod:`repro.dsp.fft_backend`, which
defaults to ``numpy.fft`` and can be switched to ``scipy.fft`` with a
``workers=`` thread pool (bit-identical results).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.bitstream import PackedBitstream, PackedRecordBatch
from repro.buffers import default_pool
from repro.dsp.bitstats import packed_segment_ones, segment_grid_aligned
from repro.dsp.fft_backend import rfft
from repro.dsp.spectrum import Spectrum, SpectrumBatch
from repro.dsp.windows import get_window, window_gains
from repro.errors import ConfigurationError
from repro.kernels import get_kernel
from repro.signals.waveform import Waveform

#: Segments per batched FFT call.  Chosen so one block's detrended,
#: windowed copy stays inside typical L2/L3 caches at the paper's
#: nperseg = 1e4 (16 x 1e4 doubles = 1.25 MB).
DEFAULT_BLOCK_SEGMENTS = 16


def _as_samples(signal: Union[Waveform, np.ndarray], sample_rate: Optional[float]):
    if isinstance(signal, Waveform):
        return signal.samples, signal.sample_rate
    arr = np.asarray(signal, dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError(f"signal must be 1-D, got shape {arr.shape}")
    if sample_rate is None or sample_rate <= 0:
        raise ConfigurationError(
            "sample_rate must be provided (and > 0) for raw arrays"
        )
    return arr, float(sample_rate)


def _modified_periodogram(
    segment: np.ndarray, window: np.ndarray, sample_rate: float
) -> np.ndarray:
    """One-sided modified periodogram of a single segment (V^2/Hz)."""
    n = segment.size
    windowed = segment * window
    spectrum = np.fft.rfft(windowed)
    # Normalize by the window noise power so white noise of variance s^2
    # yields a flat density 2*s^2/fs.
    scale = 1.0 / (sample_rate * np.sum(window**2))
    psd = (np.abs(spectrum) ** 2) * scale
    # One-sided: double everything except DC (and Nyquist for even n).
    if n % 2 == 0:
        psd[1:-1] *= 2.0
    else:
        psd[1:] *= 2.0
    return psd


def frame_segments(samples: np.ndarray, nperseg: int, step: int) -> np.ndarray:
    """Frame ``samples`` into overlapping segments along the last axis.

    Returns a zero-copy read-only view of shape
    ``(..., n_segments, nperseg)`` with ``n_segments = 1 + (n - nperseg)
    // step`` — the segment set the seed's per-segment loop iterated over.
    """
    n = samples.shape[-1]
    if n < nperseg:
        raise ConfigurationError(
            f"record has {n} samples but nperseg={nperseg}"
        )
    n_segments = 1 + (n - nperseg) // step
    view = sliding_window_view(samples, nperseg, axis=-1)
    return view[..., ::step, :][..., :n_segments, :]


def accumulate_spectral_power(
    segments: np.ndarray,
    window: np.ndarray,
    acc: np.ndarray,
    detrend: bool,
    block_segments: int = DEFAULT_BLOCK_SEGMENTS,
) -> None:
    """Add ``sum_k |rfft(detrend(seg_k) * window)|^2`` into ``acc`` in place.

    ``segments`` is a ``(n_segments, nperseg)`` (possibly strided) view;
    the FFT is issued over blocks of ``block_segments`` rows so no
    per-segment Python-level FFT loop remains and the working set stays
    cache-resident.  Scaling to a one-sided density is the caller's job.
    """
    n_segments = segments.shape[0]
    nperseg = segments.shape[-1]
    # One pooled scratch holds the detrended/windowed copy of a block,
    # so neither branch faults a fresh temporary per block (the
    # detrend=False branch used to allocate the windowed copy anyway).
    scratch = default_pool.take(
        "psd.windowed_block", (block_segments, nperseg)
    )
    for start in range(0, n_segments, block_segments):
        block = segments[start : start + block_segments]
        buf = scratch[: block.shape[0]]
        if detrend:
            np.subtract(block, block.mean(axis=-1, keepdims=True), out=buf)
            buf *= window
        else:
            np.multiply(block, window, out=buf)
        spectra = rfft(buf, axis=-1)
        power = spectra.real**2
        power += spectra.imag**2
        acc += power.sum(axis=0)


def accumulate_packed_spectral_power(
    packed: PackedBitstream,
    nperseg: int,
    step: int,
    window: np.ndarray,
    acc: np.ndarray,
    detrend: bool,
    block_segments: int = DEFAULT_BLOCK_SEGMENTS,
    bit_domain: bool = False,
    window_spectrum: Optional[np.ndarray] = None,
) -> int:
    """Blocked :func:`accumulate_spectral_power` over a packed record.

    Unpacks only the samples one FFT block needs (a pooled float
    scratch of ``(block_segments - 1) * step + nperseg`` samples), so
    the record itself stays at 1 bit/sample.  By default block
    boundaries and arithmetic match the float path exactly, so the
    accumulated sums are bit-identical.

    With ``bit_domain`` (and ``detrend`` on a byte-aligned segment
    grid — the paper's nperseg 1e4 / 50 % overlap qualifies), the
    per-segment means come from one popcount pass over the packed
    words (:func:`repro.dsp.bitstats.packed_segment_means`, means
    bit-identical to the float path) and the whole blocked
    accumulation runs through the active ``welch_bit_domain`` kernel
    (:mod:`repro.kernels`): the detrend subtraction moves into the
    spectrum as a rank-one ``mean * F[window]`` correction — segments
    unpack straight into the windowed buffer.  PSDs then match the
    float path to FFT rounding (<= 1e-10 relative) instead of
    bit-for-bit; misaligned grids fall back to the exact path
    silently.  ``window_spectrum`` may supply a precomputed
    ``rfft(window)`` so batch callers pay the transform once per
    batch, not once per record.  Returns the number of segments
    accumulated.
    """
    n_segments = 1 + (packed.n_samples - nperseg) // step
    use_bit_domain = (
        bit_domain and detrend and segment_grid_aligned(nperseg, step)
    )
    if use_bit_domain:
        means01 = packed_segment_ones(packed, nperseg, step) / float(nperseg)
        if window_spectrum is None:
            window_spectrum = np.fft.rfft(window)
        return get_kernel("welch_bit_domain")(
            packed.words,
            packed.n_samples,
            nperseg,
            step,
            window,
            window_spectrum,
            means01,
            acc,
            block_segments,
        )
    scratch = default_pool.take(
        "psd.unpack_block", (block_segments - 1) * step + nperseg
    )
    for start in range(0, n_segments, block_segments):
        nb = min(block_segments, n_segments - start)
        lo = start * step
        hi = (start + nb - 1) * step + nperseg
        samples = packed.unpack_range(lo, hi, out=scratch)
        segments = frame_segments(samples, nperseg, step)
        accumulate_spectral_power(
            segments[:nb], window, acc, detrend, block_segments
        )
    return n_segments


def _one_sided_scale(acc: np.ndarray, nperseg: int, denominator: float) -> np.ndarray:
    """Convert an accumulated ``sum |S|^2`` into a one-sided density."""
    psd = acc / denominator
    if nperseg % 2 == 0:
        psd[..., 1:-1] *= 2.0
    else:
        psd[..., 1:] *= 2.0
    return psd


def periodogram(
    signal: Union[Waveform, np.ndarray],
    sample_rate: Optional[float] = None,
    window: str = "rectangular",
    detrend: bool = False,
) -> Spectrum:
    """Single-segment one-sided periodogram.

    Parameters
    ----------
    signal:
        Waveform (preferred) or raw array plus ``sample_rate``.
    window:
        Window name (see :mod:`repro.dsp.windows`).
    detrend:
        Remove the sample mean before transforming.
    """
    samples, fs = _as_samples(signal, sample_rate)
    if samples.size < 2:
        raise ConfigurationError("periodogram needs at least two samples")
    if detrend:
        samples = samples - np.mean(samples)
    win = get_window(window, samples.size)
    psd = _modified_periodogram(samples, win, fs)
    freqs = np.fft.rfftfreq(samples.size, d=1.0 / fs)
    _, noise_gain = window_gains(win)
    coherent_gain = float(np.mean(win))
    enbw_hz = fs * noise_gain / (coherent_gain**2) / samples.size
    return Spectrum(freqs, psd, enbw_hz=enbw_hz)


def _welch_params(nperseg: int, overlap: float, n_samples: int):
    if nperseg < 2:
        raise ConfigurationError(f"nperseg must be >= 2, got {nperseg}")
    if n_samples < nperseg:
        raise ConfigurationError(
            f"signal has {n_samples} samples but nperseg={nperseg}"
        )
    if not 0.0 <= overlap < 1.0:
        raise ConfigurationError(f"overlap must be in [0, 1), got {overlap}")
    return max(1, int(round(nperseg * (1.0 - overlap))))


def _welch_grid(win: np.ndarray, nperseg: int, fs: float):
    freqs = np.fft.rfftfreq(nperseg, d=1.0 / fs)
    coherent_gain, noise_gain = window_gains(win)
    enbw_hz = fs * noise_gain / (coherent_gain**2) / nperseg
    return freqs, enbw_hz


def welch(
    signal: Union[Waveform, np.ndarray, PackedBitstream],
    nperseg: int,
    sample_rate: Optional[float] = None,
    window: str = "hann",
    overlap: float = 0.5,
    detrend: bool = True,
    block_segments: int = DEFAULT_BLOCK_SEGMENTS,
    bit_domain: bool = False,
) -> Spectrum:
    """Welch-averaged one-sided PSD (vectorized, no per-segment FFT loop).

    Parameters
    ----------
    signal:
        Waveform, raw array plus ``sample_rate``, or a packed 1-bit
        record (:class:`~repro.bitstream.PackedBitstream`) — the packed
        path unpacks one FFT block at a time and is bit-identical to
        analyzing the unpacked float record.
    nperseg:
        Segment (FFT) length; the paper uses 1e4 on 1e6-sample records.
    overlap:
        Fractional overlap between segments in ``[0, 1)``; 0.5 is standard
        for Hann windows.
    detrend:
        Remove each segment's mean (suppresses DC leakage).
    block_segments:
        Segments per batched FFT call (cache-residency knob).
    bit_domain:
        Packed-input fast path: compute segment means by popcount on
        the packed words and fold the detrend into the spectrum (see
        :func:`accumulate_packed_spectral_power`).  Results then match
        the exact path to <= 1e-10 relative instead of bit-for-bit;
        ignored for float inputs and for misaligned segment grids.
    """
    if isinstance(signal, PackedBitstream):
        fs = signal.sample_rate
        if sample_rate is not None and float(sample_rate) != fs:
            raise ConfigurationError(
                f"sample_rate {sample_rate} Hz does not match the packed "
                f"record rate {fs} Hz"
            )
        step = _welch_params(nperseg, overlap, signal.n_samples)
        win = get_window(window, nperseg)
        acc = np.zeros(nperseg // 2 + 1)
        n_segments = accumulate_packed_spectral_power(
            signal, nperseg, step, win, acc, detrend, block_segments,
            bit_domain=bit_domain,
        )
    else:
        samples, fs = _as_samples(signal, sample_rate)
        step = _welch_params(nperseg, overlap, samples.size)
        win = get_window(window, nperseg)
        segments = frame_segments(samples, nperseg, step)
        n_segments = segments.shape[0]
        acc = np.zeros(nperseg // 2 + 1)
        accumulate_spectral_power(segments, win, acc, detrend, block_segments)
    psd = _one_sided_scale(
        acc, nperseg, fs * np.sum(win**2) * n_segments
    )

    freqs, enbw_hz = _welch_grid(win, nperseg, fs)
    return Spectrum(freqs, psd, enbw_hz=enbw_hz)


def welch_batch(
    records: Union[np.ndarray, PackedRecordBatch],
    nperseg: int,
    sample_rate: Optional[float] = None,
    window: str = "hann",
    overlap: float = 0.5,
    detrend: bool = True,
    block_segments: int = DEFAULT_BLOCK_SEGMENTS,
    bit_domain: bool = False,
) -> SpectrumBatch:
    """Welch PSDs of a stack of records in one batched pipeline.

    ``records`` is a ``(n_records, n_samples)`` array or a
    :class:`~repro.bitstream.PackedRecordBatch`; each record's segments
    go through the same blocked batched FFT kernel as :func:`welch`, so
    a row of the result matches ``welch(records[i], ...)`` to machine
    precision (identical code path).  Packed batches are unpacked one
    FFT block at a time — peak float memory is one block, not the
    record stack.  ``sample_rate`` may be omitted for packed batches
    (they carry their rate).  ``bit_domain`` enables the popcount
    detrend fast path for packed batches (see :func:`welch`).

    Returns a :class:`~repro.dsp.spectrum.SpectrumBatch` whose ``psd``
    matrix has one row per record.
    """
    if isinstance(records, PackedRecordBatch):
        fs = records.sample_rate
        if sample_rate is not None and float(sample_rate) != fs:
            raise ConfigurationError(
                f"sample_rate {sample_rate} Hz does not match the packed "
                f"batch rate {fs} Hz"
            )
        step = _welch_params(nperseg, overlap, records.n_samples)
        win = get_window(window, nperseg)
        accs = np.zeros((records.n_records, nperseg // 2 + 1))
        win_spectrum = np.fft.rfft(win) if bit_domain else None
        n_segments = 1
        for r in range(records.n_records):
            n_segments = accumulate_packed_spectral_power(
                records[r], nperseg, step, win, accs[r], detrend,
                block_segments, bit_domain=bit_domain,
                window_spectrum=win_spectrum,
            )
        psd = _one_sided_scale(
            accs, nperseg, fs * np.sum(win**2) * n_segments
        )
        freqs, enbw_hz = _welch_grid(win, nperseg, fs)
        return SpectrumBatch(freqs, psd, enbw_hz=enbw_hz)

    arr = np.asarray(records, dtype=float)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ConfigurationError(
            f"records must be a (n_records, n_samples) array, got shape "
            f"{arr.shape}"
        )
    if sample_rate is None or sample_rate <= 0:
        raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
    fs = float(sample_rate)
    step = _welch_params(nperseg, overlap, arr.shape[-1])
    win = get_window(window, nperseg)
    frames = frame_segments(arr, nperseg, step)  # (R, n_segments, nperseg)
    n_records, n_segments = frames.shape[0], frames.shape[1]

    psd = np.empty((n_records, nperseg // 2 + 1))
    denominator = fs * np.sum(win**2) * n_segments
    for r in range(n_records):
        acc = np.zeros(nperseg // 2 + 1)
        accumulate_spectral_power(frames[r], win, acc, detrend, block_segments)
        psd[r] = _one_sided_scale(acc, nperseg, denominator)

    freqs, enbw_hz = _welch_grid(win, nperseg, fs)
    return SpectrumBatch(freqs, psd, enbw_hz=enbw_hz)
