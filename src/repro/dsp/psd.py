"""Power-spectral-density estimators (periodogram and Welch), from scratch.

Scaling convention: one-sided PSD in V^2/Hz such that
``sum(psd) * df == mean_square(signal)`` for the periodogram of a
stationary signal (Parseval).  The Welch estimator averages modified
periodograms of overlapping windowed segments, exactly what the paper's
Matlab post-processing (1e6 samples, FFT size 1e4) performs.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.dsp.spectrum import Spectrum
from repro.dsp.windows import get_window, window_gains
from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


def _as_samples(signal: Union[Waveform, np.ndarray], sample_rate: Optional[float]):
    if isinstance(signal, Waveform):
        return signal.samples, signal.sample_rate
    arr = np.asarray(signal, dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError(f"signal must be 1-D, got shape {arr.shape}")
    if sample_rate is None or sample_rate <= 0:
        raise ConfigurationError(
            "sample_rate must be provided (and > 0) for raw arrays"
        )
    return arr, float(sample_rate)


def _modified_periodogram(
    segment: np.ndarray, window: np.ndarray, sample_rate: float
) -> np.ndarray:
    """One-sided modified periodogram of a single segment (V^2/Hz)."""
    n = segment.size
    windowed = segment * window
    spectrum = np.fft.rfft(windowed)
    # Normalize by the window noise power so white noise of variance s^2
    # yields a flat density 2*s^2/fs.
    scale = 1.0 / (sample_rate * np.sum(window**2))
    psd = (np.abs(spectrum) ** 2) * scale
    # One-sided: double everything except DC (and Nyquist for even n).
    if n % 2 == 0:
        psd[1:-1] *= 2.0
    else:
        psd[1:] *= 2.0
    return psd


def periodogram(
    signal: Union[Waveform, np.ndarray],
    sample_rate: Optional[float] = None,
    window: str = "rectangular",
    detrend: bool = False,
) -> Spectrum:
    """Single-segment one-sided periodogram.

    Parameters
    ----------
    signal:
        Waveform (preferred) or raw array plus ``sample_rate``.
    window:
        Window name (see :mod:`repro.dsp.windows`).
    detrend:
        Remove the sample mean before transforming.
    """
    samples, fs = _as_samples(signal, sample_rate)
    if samples.size < 2:
        raise ConfigurationError("periodogram needs at least two samples")
    if detrend:
        samples = samples - np.mean(samples)
    win = get_window(window, samples.size)
    psd = _modified_periodogram(samples, win, fs)
    freqs = np.fft.rfftfreq(samples.size, d=1.0 / fs)
    _, noise_gain = window_gains(win)
    coherent_gain = float(np.mean(win))
    enbw_hz = fs * noise_gain / (coherent_gain**2) / samples.size
    return Spectrum(freqs, psd, enbw_hz=enbw_hz)


def welch(
    signal: Union[Waveform, np.ndarray],
    nperseg: int,
    sample_rate: Optional[float] = None,
    window: str = "hann",
    overlap: float = 0.5,
    detrend: bool = True,
) -> Spectrum:
    """Welch-averaged one-sided PSD.

    Parameters
    ----------
    nperseg:
        Segment (FFT) length; the paper uses 1e4 on 1e6-sample records.
    overlap:
        Fractional overlap between segments in ``[0, 1)``; 0.5 is standard
        for Hann windows.
    detrend:
        Remove each segment's mean (suppresses DC leakage).
    """
    samples, fs = _as_samples(signal, sample_rate)
    if nperseg < 2:
        raise ConfigurationError(f"nperseg must be >= 2, got {nperseg}")
    if samples.size < nperseg:
        raise ConfigurationError(
            f"signal has {samples.size} samples but nperseg={nperseg}"
        )
    if not 0.0 <= overlap < 1.0:
        raise ConfigurationError(f"overlap must be in [0, 1), got {overlap}")

    step = max(1, int(round(nperseg * (1.0 - overlap))))
    win = get_window(window, nperseg)
    n_segments = 1 + (samples.size - nperseg) // step

    acc = np.zeros(nperseg // 2 + 1)
    for k in range(n_segments):
        seg = samples[k * step : k * step + nperseg]
        if detrend:
            seg = seg - np.mean(seg)
        acc += _modified_periodogram(seg, win, fs)
    psd = acc / n_segments

    freqs = np.fft.rfftfreq(nperseg, d=1.0 / fs)
    coherent_gain, noise_gain = window_gains(win)
    enbw_hz = fs * noise_gain / (coherent_gain**2) / nperseg
    return Spectrum(freqs, psd, enbw_hz=enbw_hz)
