"""Window functions implemented from first principles.

Only ``numpy`` primitives are used so the estimator stack does not depend
on ``scipy.signal`` — the point of the reproduction is to model what a SoC
DSP routine would implement.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError


def rectangular(n: int) -> np.ndarray:
    """All-ones window."""
    return np.ones(n)


def hann(n: int) -> np.ndarray:
    """Hann window (periodic form, suited to Welch averaging)."""
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * k / n)


def hamming(n: int) -> np.ndarray:
    """Hamming window (periodic form)."""
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * k / n)


def blackman(n: int) -> np.ndarray:
    """Blackman window (periodic form)."""
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    x = 2.0 * np.pi * k / n
    return 0.42 - 0.5 * np.cos(x) + 0.08 * np.cos(2.0 * x)


def flattop(n: int) -> np.ndarray:
    """Flat-top window — best amplitude accuracy for line measurements."""
    if n == 1:
        return np.ones(1)
    a = (0.21557895, 0.41663158, 0.277263158, 0.083578947, 0.006947368)
    k = np.arange(n)
    x = 2.0 * np.pi * k / n
    return (
        a[0]
        - a[1] * np.cos(x)
        + a[2] * np.cos(2 * x)
        - a[3] * np.cos(3 * x)
        + a[4] * np.cos(4 * x)
    )


_WINDOWS: Dict[str, callable] = {
    "rectangular": rectangular,
    "boxcar": rectangular,
    "hann": hann,
    "hanning": hann,
    "hamming": hamming,
    "blackman": blackman,
    "flattop": flattop,
}

#: Coefficient cache keyed by (generator, n, dtype).  Every Welch call
#: used to regenerate its window (five cosine passes over nperseg
#: points for flattop); measurement sessions reuse a handful of
#: (window, nperseg) pairs thousands of times.  Aliases share entries
#: by keying on the generator function, and cached arrays are
#: read-only so no caller can corrupt the shared coefficients.
_WINDOW_CACHE: Dict[Tuple[callable, int, str], np.ndarray] = {}


def get_window(name: str, n: int, dtype=np.float64) -> np.ndarray:
    """Return a window of length ``n`` by name (cached, read-only).

    The coefficients are generated once per ``(window, n, dtype)`` and
    served from a cache thereafter — bit-identical to a fresh
    generation (asserted in ``tests/unit/test_windows.py``).  The
    returned array is marked read-only; copy before mutating.

    Raises ``ConfigurationError`` for unknown names or non-positive length.
    """
    if n <= 0:
        raise ConfigurationError(f"window length must be > 0, got {n}")
    try:
        fn = _WINDOWS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown window {name!r}; available: {sorted(set(_WINDOWS))}"
        ) from None
    key = (fn, int(n), np.dtype(dtype).str)
    cached = _WINDOW_CACHE.get(key)
    if cached is None:
        cached = np.asarray(fn(n), dtype=dtype)
        cached.setflags(write=False)
        _WINDOW_CACHE[key] = cached
    return cached


def window_cache_info() -> dict:
    """Size and total bytes of the window coefficient cache."""
    return {
        "windows": len(_WINDOW_CACHE),
        "nbytes": sum(arr.nbytes for arr in _WINDOW_CACHE.values()),
    }


def clear_window_cache() -> None:
    """Drop every cached window coefficient array."""
    _WINDOW_CACHE.clear()


def window_gains(window: np.ndarray) -> Tuple[float, float]:
    """Return ``(coherent_gain, noise_gain)`` of a window.

    ``coherent_gain = mean(w)`` scales deterministic lines;
    ``noise_gain = mean(w^2)`` scales noise power.  Their ratio defines the
    equivalent noise bandwidth used to convert between line power and PSD
    density.
    """
    w = np.asarray(window, dtype=float)
    if w.size == 0:
        raise ConfigurationError("window must be non-empty")
    coherent = float(np.mean(w))
    noise = float(np.mean(w**2))
    return coherent, noise


def enbw_bins(window: np.ndarray) -> float:
    """Equivalent noise bandwidth of the window in FFT bins.

    ``ENBW = N * sum(w^2) / sum(w)^2`` — 1.0 for rectangular, 1.5 for Hann.
    """
    w = np.asarray(window, dtype=float)
    if w.size == 0:
        raise ConfigurationError("window must be non-empty")
    s1 = float(np.sum(w))
    s2 = float(np.sum(w**2))
    if s1 == 0.0:
        raise ConfigurationError("window must have a non-zero sum")
    return w.size * s2 / (s1 * s1)
