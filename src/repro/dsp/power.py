"""Plain power utilities shared by the estimators.

These implement the paper's Table 2 comparison methods: time-domain
mean-square power ratio vs. PSD-integrated band power ratio.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.constants import linear_to_db
from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


def mean_square(signal: Union[Waveform, np.ndarray]) -> float:
    """Mean-square value (power into 1 ohm)."""
    samples = signal.samples if isinstance(signal, Waveform) else np.asarray(signal, float)
    if samples.size == 0:
        raise ConfigurationError("cannot compute power of an empty signal")
    return float(np.mean(samples**2))


def power_ratio(numerator: Union[Waveform, np.ndarray], denominator: Union[Waveform, np.ndarray]) -> float:
    """Time-domain mean-square power ratio (Table 2, "mean square ratio")."""
    p_den = mean_square(denominator)
    if p_den <= 0:
        raise ConfigurationError("denominator signal has zero power")
    return mean_square(numerator) / p_den


def power_ratio_db(numerator, denominator) -> float:
    """Power ratio expressed in dB."""
    return linear_to_db(power_ratio(numerator, denominator))


def band_power_from_spectrum(
    spectrum: Spectrum,
    f_low: float,
    f_high: float,
    exclude: Sequence[Tuple[float, float]] = (),
) -> float:
    """Convenience wrapper over :meth:`Spectrum.band_power`."""
    return spectrum.band_power(f_low, f_high, exclude=exclude)


def snr_db(signal_power: float, noise_power: float) -> float:
    """Signal-to-noise ratio in dB (paper eq 1)."""
    if signal_power <= 0 or noise_power <= 0:
        raise ConfigurationError(
            f"powers must be positive, got signal={signal_power}, noise={noise_power}"
        )
    return linear_to_db(signal_power / noise_power)
