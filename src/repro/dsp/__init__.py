"""DSP substrate: spectral estimation built from scratch on ``numpy.fft``.

The paper's post-processing (Matlab, FFT size 1e4 on 1e6 samples) is a
Welch-style averaged periodogram.  This package reimplements that pipeline:
window functions, periodogram/Welch PSD estimators, a :class:`Spectrum`
container with band-power integration and line exclusion, FFT-based
autocorrelation and plain power utilities.
"""

from repro.dsp.autocorr import autocorrelation, normalized_autocorrelation
from repro.dsp.bitstats import (
    packed_mean,
    packed_mean_square,
    packed_segment_means,
    popcount,
    segment_grid_aligned,
)
from repro.dsp.fft_backend import (
    fft_backend,
    get_fft_backend,
    scipy_fft_available,
    set_fft_backend,
)
from repro.dsp.power import band_power_from_spectrum, mean_square, power_ratio_db
from repro.dsp.psd import periodogram, welch, welch_batch
from repro.dsp.spectrum import Spectrum, SpectrumBatch
from repro.dsp.windows import get_window, window_gains

__all__ = [
    "get_window",
    "window_gains",
    "periodogram",
    "welch",
    "welch_batch",
    "fft_backend",
    "get_fft_backend",
    "set_fft_backend",
    "scipy_fft_available",
    "Spectrum",
    "SpectrumBatch",
    "autocorrelation",
    "normalized_autocorrelation",
    "mean_square",
    "power_ratio_db",
    "band_power_from_spectrum",
    "popcount",
    "packed_mean",
    "packed_mean_square",
    "packed_segment_means",
    "segment_grid_aligned",
]
