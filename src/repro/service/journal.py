"""Write-ahead job journal: accepted jobs survive a SIGKILLed daemon.

The supervisor appends one record *before* acknowledging a submission
and one more when the job reaches a terminal state, so the set of
acknowledged-but-incomplete jobs is always recoverable from disk.  A
restarted daemon replays the journal, re-enqueues every incomplete job
and re-runs it with the store's ``resume=True`` machinery — finished
sub-batches are loaded, only the missing work is recomputed, and the
merged outcome is bit-identical to an uninterrupted run.

Layout (under ``<service root>/``, default ``<store root>/service/``)::

    lock                 # flock serializing appends / rotation
    journal-00000000.jrn # 16-byte header + variable-length records
    journal-00000001.jrn # appended after a rotation; ids only grow

Each segment opens with a magic/version header; each record is::

    length   u32   payload byte count
    crc      u32   zlib.crc32 over the payload
    payload  ...   one JSON object (utf-8)

Records are variable-length (a job spec is arbitrary JSON), so torn
tails are caught by *framing plus checksum* instead of the store
index's fixed-size trick: replay walks record to record and stops at
the first frame whose length runs past EOF or whose payload fails the
CRC — everything before the tear is intact, everything after never
happened (it was never acknowledged).  The next locked append
truncates the file back to the last valid boundary before writing, so
the journal self-heals exactly like ``store/index``.  The
``journal_torn_write`` fault site cuts an append mid-record to
exercise this path deterministically.

Record payloads are ``{"rec": "accept" | "done", "key": ..., ...}``;
replay is last-state-wins per key, so duplicate accepts (a re-journal
after a crash between append and ack) and duplicate completions
(rotation checkpoints) are idempotent.

Rotation checkpoints the *incomplete* set into a fresh segment and
unlinks the older ones — a crash between publish and unlink leaves
duplicate records, which replay idempotently.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import re
import struct
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro import obs
from repro.errors import ConfigurationError
from repro.faults.injector import journal_torn_fault
from repro.service.protocol import JobSpec, parse_job_spec
from repro.store.locks import file_lock

__all__ = ["JobJournal", "JournalEntry", "JournalState"]

_LOG = logging.getLogger("repro.service.journal")

_MAGIC = b"REPROJRN"
_VERSION = 1
_HEADER_LEN = 16
_FRAME = struct.Struct("<II")  # length, crc32

_SEGMENT_RE = re.compile(r"^journal-(\d{8})\.jrn$")

#: Terminal job states a ``done`` record may carry.
DONE_STATUSES = ("ok", "failed", "deadline", "dropped")


def _header() -> bytes:
    return _MAGIC + struct.pack("<II", _VERSION, 0)


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class JournalEntry:
    """One job's journaled lifecycle state after replay."""

    key: str
    spec: JobSpec
    status: str = "accepted"  # accepted | ok | failed | deadline | dropped
    accepted_at: float = 0.0
    result: Optional[dict] = None
    error: str = ""

    @property
    def incomplete(self) -> bool:
        """Acknowledged but never finished — must be resumed."""
        return self.status == "accepted"


@dataclass
class JournalState:
    """What a replay recovered, plus how much it had to skip."""

    entries: Dict[str, JournalEntry] = field(default_factory=dict)
    n_records: int = 0
    n_skipped: int = 0  # torn/corrupt frames dropped at the tail
    n_segments: int = 0

    @property
    def incomplete(self) -> List[JournalEntry]:
        """Jobs to re-enqueue, in first-accepted order."""
        return [e for e in self.entries.values() if e.incomplete]


class JobJournal:
    """Append-only checksummed job journal with torn-tail recovery.

    Single-writer by design (one daemon owns a service root); the
    flock guards the restart race where a new daemon starts while the
    old one is still flushing.  ``fsync`` (default on) makes accepts
    durable against power loss, not just process death; tests turn it
    off for speed.
    """

    def __init__(
        self, root: Union[str, pathlib.Path], fsync: bool = True
    ):
        self.root = pathlib.Path(root)
        self.fsync = bool(fsync)
        #: (path, valid byte length) of the active segment, cached so
        #: steady-state appends skip the full record walk.  Invalidated
        #: whenever the on-disk size disagrees (another writer, or a
        #: tear we have not measured yet).
        self._tail: Optional[tuple] = None

    # ------------------------------------------------------------------
    def _lock_path(self) -> pathlib.Path:
        return self.root / "lock"

    def _segments(self) -> List[pathlib.Path]:
        if not self.root.is_dir():
            return []
        found = []
        for name in os.listdir(self.root):
            m = _SEGMENT_RE.match(name)
            if m:
                found.append((int(m.group(1)), self.root / name))
        return [path for _, path in sorted(found)]

    def _segment_path(self, seg_id: int) -> pathlib.Path:
        return self.root / f"journal-{seg_id:08d}.jrn"

    def initialize(self) -> pathlib.Path:
        """Create the journal directory and first segment if missing."""
        self.root.mkdir(parents=True, exist_ok=True)
        segments = self._segments()
        if segments:
            return segments[-1]
        first = self._segment_path(0)
        with file_lock(self._lock_path()):
            if not first.exists():
                fd, tmp = tempfile.mkstemp(
                    dir=self.root, prefix=".jrn-", suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "wb") as fh:
                        fh.write(_header())
                        fh.flush()
                        os.fsync(fh.fileno())
                    os.replace(tmp, first)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        return first

    # ------------------------------------------------------------------
    @staticmethod
    def _scan(path: pathlib.Path) -> tuple:
        """Walk one segment: ``(records, valid_end, n_skipped)``.

        Stops at the first frame that is torn (length past EOF) or
        whose payload fails the CRC / JSON decode; ``valid_end`` is the
        byte offset of the last good record boundary.
        """
        try:
            data = path.read_bytes()
        except OSError:
            return [], _HEADER_LEN, 0
        if len(data) < _HEADER_LEN or data[:8] != _MAGIC:
            _LOG.warning("journal segment %s has a bad header", path.name)
            return [], _HEADER_LEN, 1
        records = []
        offset = _HEADER_LEN
        n_skipped = 0
        while offset + _FRAME.size <= len(data):
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > len(data):
                n_skipped += 1
                break  # torn tail: frame promises more bytes than exist
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                n_skipped += 1
                break  # corrupt frame; nothing after it is trustworthy
            try:
                records.append(json.loads(payload.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                n_skipped += 1
                break
            offset = end
        if offset < len(data) and n_skipped == 0:
            n_skipped = 1  # trailing fragment shorter than a frame header
        return records, offset, n_skipped

    def _append(self, payload: dict) -> None:
        """One locked, torn-tail-repairing, optionally fsynced append."""
        with obs.timed("journal.append_seconds"):
            self._append_inner(payload)
        obs.inc("journal.appends", tags={"rec": payload.get("rec", "?")})

    def _append_inner(self, payload: dict) -> None:
        active = self.initialize()
        encoded = _frame(
            json.dumps(
                payload, separators=(",", ":"), sort_keys=True
            ).encode("utf-8")
        )
        torn = journal_torn_fault()
        if torn:
            # Simulate a SIGKILL mid-write: land a prefix of the frame.
            encoded = encoded[: max(1, len(encoded) // 2)]
        with file_lock(self._lock_path()):
            size = active.stat().st_size
            if self._tail is not None and self._tail[0] == active:
                valid_end = self._tail[1]
                if valid_end != size:
                    valid_end = self._scan(active)[1]
            else:
                valid_end = self._scan(active)[1] if size > _HEADER_LEN \
                    else _HEADER_LEN
            with open(active, "r+b") as fh:
                if valid_end != size:
                    fh.truncate(valid_end)  # heal the torn tail
                fh.seek(valid_end)
                fh.write(encoded)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            if torn:
                # The frame on disk is garbage; the valid boundary is
                # still where it was, so the next append re-truncates.
                self._tail = (active, valid_end)
            else:
                self._tail = (active, valid_end + len(encoded))

    # ------------------------------------------------------------------
    # Record appends
    # ------------------------------------------------------------------
    def record_accept(
        self, key: str, spec: JobSpec, accepted_at: float
    ) -> None:
        """Journal one accepted job — called *before* the ack is sent."""
        self._append(
            {
                "rec": "accept",
                "key": str(key),
                "job": spec.canonical(),
                "t": float(accepted_at),
            }
        )

    def record_done(
        self,
        key: str,
        status: str,
        result: Optional[dict] = None,
        error: str = "",
    ) -> None:
        """Journal one job's terminal state."""
        if status not in DONE_STATUSES:
            raise ConfigurationError(
                f"done status must be one of {sorted(DONE_STATUSES)}, "
                f"got {status!r}"
            )
        self._append(
            {
                "rec": "done",
                "key": str(key),
                "status": status,
                "result": result,
                "error": str(error),
            }
        )

    # ------------------------------------------------------------------
    def replay(self) -> JournalState:
        """Recover the journaled job set (last state per key wins)."""
        state = JournalState()
        for path in self._segments():
            records, _, n_skipped = self._scan(path)
            state.n_segments += 1
            state.n_skipped += n_skipped
            for record in records:
                state.n_records += 1
                key = record.get("key")
                rec = record.get("rec")
                if not isinstance(key, str):
                    state.n_skipped += 1
                    continue
                if rec == "accept":
                    existing = state.entries.get(key)
                    if existing is not None and existing.incomplete:
                        # Duplicate accept (re-submission of a live
                        # key, or a rotation checkpoint): idempotent.
                        continue
                    try:
                        spec = parse_job_spec(record.get("job"))
                    except ConfigurationError:
                        state.n_skipped += 1
                        continue
                    if existing is None:
                        state.entries[key] = JournalEntry(
                            key=key,
                            spec=spec,
                            accepted_at=float(record.get("t", 0.0)),
                        )
                    else:
                        # Re-admission after a terminal state: the
                        # queue re-admits a done key and the daemon
                        # journals (and acks) a fresh accept, so a
                        # crash before the rerun finishes must replay
                        # the key as incomplete again — last state
                        # wins, and the last state is ``accepted``.
                        existing.spec = spec
                        existing.status = "accepted"
                        existing.accepted_at = float(record.get("t", 0.0))
                        existing.result = None
                        existing.error = ""
                elif rec == "done" and key in state.entries:
                    entry = state.entries[key]
                    entry.status = str(record.get("status", "failed"))
                    entry.result = record.get("result")
                    entry.error = str(record.get("error", ""))
                else:
                    state.n_skipped += 1
        return state

    # ------------------------------------------------------------------
    def rotate(self) -> int:
        """Compact: checkpoint incomplete jobs into a fresh segment.

        Completed jobs' records are dropped (their results live in the
        store); incomplete jobs are re-written as ``accept`` records.
        Returns the number of segments removed.  Crash-safe: the new
        segment is published via ``os.replace`` before any unlink, and
        leftover duplicates replay idempotently.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with file_lock(self._lock_path()):
            old = self._segments()
            if not old:
                return 0
            state = self.replay()
            last_id = int(_SEGMENT_RE.match(old[-1].name).group(1))
            fresh = self._segment_path(last_id + 1)
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=".jrn-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(_header())
                    for entry in state.incomplete:
                        fh.write(
                            _frame(
                                json.dumps(
                                    {
                                        "rec": "accept",
                                        "key": entry.key,
                                        "job": entry.spec.canonical(),
                                        "t": entry.accepted_at,
                                    },
                                    separators=(",", ":"),
                                    sort_keys=True,
                                ).encode("utf-8")
                            )
                        )
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, fresh)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            removed = 0
            for path in old:
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - raced unlink
                    pass
            self._tail = None
            obs.inc("journal.rotations")
            obs.trace_event(
                "journal.rotate",
                removed=removed,
                incomplete=len(state.incomplete),
            )
            return removed

    def stats(self) -> dict:
        """JSON-ready journal summary."""
        state = self.replay()
        return {
            "segments": state.n_segments,
            "records": state.n_records,
            "skipped": state.n_skipped,
            "jobs": len(state.entries),
            "incomplete": len(state.incomplete),
            "bytes": sum(p.stat().st_size for p in self._segments()),
        }

    def quick_stats(self) -> dict:
        """Segment count and on-disk bytes without a replay.

        :meth:`stats` re-reads and re-parses every segment, which is
        too heavy for a per-``stats``-op call on a hot daemon; this is
        just a directory listing plus ``stat()`` calls.
        """
        n_bytes = 0
        segments = self._segments()
        for path in segments:
            try:
                n_bytes += path.stat().st_size
            except OSError:  # pragma: no cover - raced rotation
                pass
        return {"segments": len(segments), "bytes": n_bytes}
