"""The supervised measurement daemon: accept, journal, execute, survive.

:class:`MeasurementService` multiplexes measure/lot/retest jobs from
many clients onto one shared :class:`~repro.engine.scheduler.
MeasurementScheduler` (one worker pool, one result store).  Three
threads of control cooperate:

* the **asyncio front-end** (main thread) owns the Unix/TCP listener,
  parses requests, journals accepted jobs *before* acknowledging them
  and resolves waiting clients when jobs finish;
* the **executor thread** claims jobs off the admission queue in
  priority order and runs them on the scheduler.  Bulk lots run
  chunked (``max_group_devices`` + a checkpoint callback), so every
  sub-batch boundary is a drain point, a deadline check, and a
  preemption point where queued interactive jobs run inline;
* the **watchdog thread** watches a heartbeat the executor touches at
  every job and checkpoint boundary, plus the pool's attempt counter
  as task-level progress evidence.  A wedged pool (no progress past
  ``watchdog_stall_s``) is killed and respawned — the layer above
  PR 6's per-task timeouts, for the failure modes those cannot see.

Crash recovery is the contract: every accepted job is journaled before
its ack, jobs execute with ``resume=True`` against the content-
addressed store, and a restarted daemon replays the journal and
re-enqueues every incomplete job.  SIGKILL the daemon mid-lot and the
merged outcome after restart is bit-identical to an uninterrupted run
(``tests/integration/test_service_chaos.py`` holds that bar).

Graceful drain (SIGTERM/SIGINT, or the ``drain`` op): stop admitting,
finish the in-flight sub-batch, persist partial lot state, close the
pool, exit ``EXIT_JOBS_DROPPED`` iff acknowledged jobs were left
unfinished (they stay journaled, so a restart resumes them).
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.engine.scheduler import (
    MeasurementScheduler,
    MeasurementTask,
    RetryPolicy,
)
from repro.errors import ConfigurationError
from repro.obs.export import render_prometheus
from repro.faults.injector import client_disconnect_fault, job_deadline_fault
from repro.service.journal import JobJournal
from repro.service.lifecycle import (
    EXIT_JOBS_DROPPED,
    drain_scheduler,
)
from repro.service.protocol import (
    MAX_LINE_BYTES,
    JobSpec,
    ProtocolError,
    decode_line,
    encode_line,
    parse_request,
)
from repro.service.queue import ADMITTED, DUPLICATE, Job, JobQueue
from repro.signals.random import make_rng
from repro.store.store import ResultStore

__all__ = [
    "JobDeadlineExceeded",
    "MeasurementService",
    "ServiceConfig",
    "ServiceDrain",
    "ServiceReport",
]

_LOG = logging.getLogger("repro.service.supervisor")


class ServiceDrain(BaseException):
    """Raised inside a running job at its next checkpoint to drain."""


class JobDeadlineExceeded(RuntimeError):
    """A job's wall-clock budget expired mid-run."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a daemon needs to come up (and come back)."""

    store_root: str
    socket_path: Optional[str] = None  # default <store_root>/service.sock
    host: Optional[str] = None  # set for TCP instead of a Unix socket
    port: int = 0
    backend: str = "serial"
    max_workers: Optional[int] = None
    max_depth: int = 64
    #: Devices per planned sub-batch — the drain/preemption/deadline
    #: granularity of bulk lots.
    max_group_devices: int = 8
    drain_grace_s: float = 30.0
    watchdog_interval_s: float = 0.5
    watchdog_stall_s: float = 60.0
    journal_fsync: bool = True
    #: Rotate (compact) the journal after this many terminal records,
    #: not only at drain — a long-lived daemon's journal disk stays
    #: bounded.  ``0`` disables mid-run rotation.
    journal_rotate_records: int = 512
    #: Completed jobs kept in memory for dedup/cached answers; older
    #: ones are evicted (their results live on in the store).
    completed_retain: int = 256
    retry: Optional[RetryPolicy] = None
    rng_mode: str = "compat"

    def __post_init__(self):
        if not self.store_root:
            raise ConfigurationError("store_root is required")
        if self.max_group_devices < 1:
            raise ConfigurationError(
                f"max_group_devices must be >= 1, "
                f"got {self.max_group_devices}"
            )
        if self.drain_grace_s <= 0 or self.watchdog_interval_s <= 0:
            raise ConfigurationError(
                "drain_grace_s and watchdog_interval_s must be > 0"
            )
        if self.watchdog_stall_s <= 0:
            raise ConfigurationError(
                f"watchdog_stall_s must be > 0, got {self.watchdog_stall_s}"
            )
        if self.journal_rotate_records < 0:
            raise ConfigurationError(
                f"journal_rotate_records must be >= 0, "
                f"got {self.journal_rotate_records}"
            )

    def resolved_socket(self) -> str:
        if self.socket_path is not None:
            return self.socket_path
        return str(pathlib.Path(self.store_root) / "service.sock")


@dataclass
class ServiceReport:
    """Daemon-level telemetry, one layer above ``RunReport``.

    ``RunReport`` describes one screen's execution; this describes the
    *daemon* — admission, shedding, journal recovery, deadline kills,
    watchdog interventions — plus the pool counters aggregated across
    every job the process ran.
    """

    accepted: int = 0
    duplicates: int = 0
    shed: int = 0
    cached_hits: int = 0
    completed: int = 0
    failed: int = 0
    deadline_kills: int = 0
    watchdog_kills: int = 0
    dropped: int = 0
    disconnect_drops: int = 0
    journal_replayed: int = 0
    journal_skipped: int = 0
    queue_depth: int = 0
    draining: bool = False
    uptime_s: float = 0.0
    pool: Dict[str, int] = field(default_factory=dict)
    kernel_backend: str = ""
    fft_backend: str = ""
    #: Journal disk accounting (``quick_stats``: segments + bytes).
    journal: Dict[str, int] = field(default_factory=dict)
    #: Terminal records journaled since the last mid-run rotation.
    records_since_rotate: int = 0
    #: ``repro.obs`` metrics snapshot, or ``None`` while disabled.
    obs: Optional[dict] = None

    def describe(self) -> dict:
        """JSON-ready view (the ``stats`` op and ``--json`` emit it)."""
        return {
            "accepted": self.accepted,
            "duplicates": self.duplicates,
            "shed": self.shed,
            "cached_hits": self.cached_hits,
            "completed": self.completed,
            "failed": self.failed,
            "deadline_kills": self.deadline_kills,
            "watchdog_kills": self.watchdog_kills,
            "dropped": self.dropped,
            "disconnect_drops": self.disconnect_drops,
            "journal_replayed": self.journal_replayed,
            "journal_skipped": self.journal_skipped,
            "queue_depth": self.queue_depth,
            "draining": self.draining,
            "uptime_s": self.uptime_s,
            "pool": dict(self.pool),
            "kernel_backend": self.kernel_backend,
            "fft_backend": self.fft_backend,
            "journal": dict(self.journal),
            "records_since_rotate": self.records_since_rotate,
            "obs": self.obs,
        }


class MeasurementService:
    """One daemon process: front-end, executor, watchdog, journal."""

    def __init__(self, config: ServiceConfig, clock=time.monotonic):
        self.config = config
        self.clock = clock
        root = pathlib.Path(config.store_root)
        self.store = ResultStore(root)
        self.sched = MeasurementScheduler(
            backend=config.backend,
            max_workers=config.max_workers,
            store=self.store,
            cache="readwrite",
            retry=config.retry,
            rng_mode=config.rng_mode,
        )
        self.journal = JobJournal(
            root / "service", fsync=config.journal_fsync
        )
        self.queue = JobQueue(
            max_depth=config.max_depth,
            clock=clock,
            on_expire=self._on_queue_expire,
            completed_retain=config.completed_retain,
        )
        # Mutable counters the report snapshots.
        self.n_completed = 0
        self.n_failed = 0
        self.n_deadline_kills = 0
        self.n_watchdog_kills = 0
        self.n_dropped = 0
        self.n_cached_hits = 0
        self.n_disconnect_drops = 0
        self.n_journal_replayed = 0
        self.n_journal_skipped = 0
        self._done_since_rotate = 0
        self._started_at = clock()
        self._stop = threading.Event()
        self._drain_requested = threading.Event()
        self._heartbeat = clock()
        self._hb_lock = threading.Lock()
        self._current_job: Optional[Job] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_async: Optional[asyncio.Event] = None
        self._waiters: Dict[str, List[asyncio.Future]] = {}
        self._executor_thread: Optional[threading.Thread] = None
        self._watchdog_thread: Optional[threading.Thread] = None

    def _on_queue_expire(self, job: Job) -> None:
        """A queued job's budget ran out before it started (queue lock
        held): journal the terminal state and wake its waiters — the
        budget was spent waiting, which is still spent."""
        self.n_deadline_kills += 1
        obs.inc("service.jobs", tags={"status": "deadline"})
        obs.trace_event(
            "job.expired_queued", key=job.key[:12], kind=job.spec.kind
        )
        try:
            self.journal.record_done(job.key, "deadline", error=job.error)
            self._done_since_rotate += 1
        except OSError as exc:  # pragma: no cover - disk loss
            _LOG.error("journal done record failed: %s", exc)
        self._notify(job)

    # ------------------------------------------------------------------
    # Journal replay (startup)
    # ------------------------------------------------------------------
    def replay_journal(self) -> int:
        """Re-enqueue every journaled-but-incomplete job."""
        state = self.journal.replay()
        self.n_journal_skipped = state.n_skipped
        replayed = 0
        for entry in state.incomplete:
            verdict, _ = self.queue.submit(entry.spec, replayed=True)
            if verdict == ADMITTED:
                replayed += 1
            else:  # pragma: no cover - replay overflow is operator error
                _LOG.warning(
                    "journal replay could not re-admit %s (%s)",
                    entry.key[:12], verdict,
                )
        self.n_journal_replayed = replayed
        if replayed:
            _LOG.info("journal replay re-enqueued %d job(s)", replayed)
        return replayed

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def report(self) -> ServiceReport:
        from repro.dsp.fft_backend import get_fft_backend
        from repro.kernels import get_kernel_backend

        queue_stats = self.queue.stats()
        obs.gauge("service.queue_depth", queue_stats["depth"])
        pool = self.sched.pool
        pool_counters: Dict[str, int] = {}
        if pool is not None:
            t = pool.telemetry
            pool_counters = {
                "attempts": t.attempts,
                "retries": t.retries,
                "timeouts": t.timeouts,
                "respawns": t.respawns,
                "dead": len(t.dead),
                "spawns": pool.spawn_count,
            }
        return ServiceReport(
            accepted=queue_stats["accepted"],
            duplicates=queue_stats["duplicates"],
            shed=queue_stats["shed"],
            cached_hits=self.n_cached_hits,
            completed=self.n_completed,
            failed=self.n_failed,
            deadline_kills=self.n_deadline_kills,
            watchdog_kills=self.n_watchdog_kills,
            dropped=self.n_dropped,
            disconnect_drops=self.n_disconnect_drops,
            journal_replayed=self.n_journal_replayed,
            journal_skipped=self.n_journal_skipped,
            queue_depth=queue_stats["depth"],
            draining=queue_stats["draining"],
            uptime_s=float(self.clock() - self._started_at),
            pool=pool_counters,
            kernel_backend=get_kernel_backend(),
            fft_backend=get_fft_backend()[0],
            journal=self.journal.quick_stats(),
            records_since_rotate=self._done_since_rotate,
            obs=obs.snapshot(),
        )

    # ------------------------------------------------------------------
    # Job execution (executor thread)
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        with self._hb_lock:
            self._heartbeat = self.clock()

    def _heartbeat_age(self) -> float:
        with self._hb_lock:
            return self.clock() - self._heartbeat

    def _checkpoint_for(self, job: Job):
        """The sub-batch boundary hook of one running lot."""

        def checkpoint(group_index: int, n_groups: int) -> None:
            self._touch()
            job.checks += 1
            if job.expired(self.clock()) or job_deadline_fault(
                job.key, job.checks
            ):
                raise JobDeadlineExceeded(
                    f"job {job.key[:12]} exceeded its "
                    f"{job.spec.deadline_s}s budget at sub-batch "
                    f"{group_index + 1}/{n_groups}"
                )
            if self._drain_requested.is_set():
                raise ServiceDrain()
            # Preemption: run queued interactive work inline while the
            # pool is idle between sub-batches.
            while True:
                inner = self.queue.claim_nowait(
                    max_priority=job.priority - 1
                )
                if inner is None:
                    break
                self._execute(inner, nested=True)

        return checkpoint

    def _run_lot(self, job: Job) -> dict:
        from repro.experiments.production import run_production

        result = run_production(
            scheduler=self.sched,
            resume=True,
            report=True,
            max_group_devices=self.config.max_group_devices,
            checkpoint=self._checkpoint_for(job),
            **job.spec.params,
        )
        return {
            "kind": "lot",
            "n_devices": result.n_devices,
            "n_plan_groups": result.n_plan_groups,
            "measured_nf_db": [float(v) for v in result.measured_nf_db],
            "rows": [
                {
                    "guardband_sigmas": row.guardband_sigmas,
                    "guardband_db": row.guardband_db,
                    "n_pass": row.outcome.n_pass,
                    "n_fail": row.outcome.n_fail,
                    "n_retest": row.outcome.n_retest,
                    "n_escapes": row.outcome.n_escapes,
                    "n_overkill": row.outcome.n_overkill,
                }
                for row in result.rows
            ],
            "run_report": (
                result.run_report.describe()
                if result.run_report is not None
                else None
            ),
        }

    def _run_retest(self, job: Job) -> dict:
        from repro.experiments.production import run_production_retest

        result = run_production_retest(
            scheduler=self.sched, **job.spec.params
        )
        return {
            "kind": "retest",
            "n_devices": result.n_devices,
            "n_retested": result.n_retested,
            "retest_indices": [int(i) for i in result.retest_indices],
            "merged_nf_db": [float(v) for v in result.merged_nf_db],
            "initial_from_store": bool(result.initial_from_store),
        }

    def _run_measure(self, job: Job) -> dict:
        from repro.experiments.production import _build_device_bench

        params = job.spec.params
        true_nf_db = float(params.get("true_nf_db", 8.0))
        n_samples = int(params.get("n_samples", 2**14))
        nperseg = int(params.get("nperseg", 4096))
        seed = params.get("seed", 0)
        bench = _build_device_bench(true_nf_db, n_samples)
        task = MeasurementTask(
            source=bench,
            estimator=bench.make_estimator(nperseg=nperseg),
            rng=make_rng(int(seed)),
        )
        results = self.sched.run([task], resume=True)
        return {
            "kind": "measure",
            "true_nf_db": true_nf_db,
            "noise_figure_db": float(results[0].noise_figure_db),
        }

    def _execute(self, job: Job, nested: bool = False) -> None:
        """Run one claimed job to a terminal state (executor thread)."""
        self._touch()
        if not nested:
            self._current_job = job
        if job.started_at is not None:
            obs.observe(
                "service.queue_wait_seconds",
                max(0.0, job.started_at - job.submitted_at),
                tags={"kind": job.spec.kind},
            )
        obs.gauge("service.queue_depth", self.queue.depth)
        try:
            with obs.trace_span(
                "job.execute",
                key=job.key[:12],
                kind=job.spec.kind,
                nested=nested,
            ):
                if job.expired(self.clock()):
                    raise JobDeadlineExceeded(
                        f"job {job.key[:12]} budget expired before it ran"
                    )
                if job.spec.kind == "lot":
                    result = self._run_lot(job)
                elif job.spec.kind == "retest":
                    result = self._run_retest(job)
                else:
                    result = self._run_measure(job)
        except ServiceDrain:
            # Interrupted at a sub-batch boundary: finished sub-batches
            # are persisted, the journal keeps the accept record, and a
            # restarted daemon resumes the job.  No ``done`` record.
            self.n_dropped += 1
            obs.inc("service.jobs", tags={"status": "dropped"})
            self.queue.finish(
                job, "dropped",
                error="daemon drained mid-run; job resumable via journal",
            )
            self._notify(job)
            raise
        except JobDeadlineExceeded as exc:
            self.n_deadline_kills += 1
            self._finish(job, "deadline", error=str(exc))
        except (ConfigurationError, ProtocolError, TypeError) as exc:
            # A spec the experiments layer rejects is a *client* error:
            # terminal, never retried on restart.
            self.n_failed += 1
            self._finish(job, "failed", error=f"bad job spec: {exc}")
        except Exception as exc:
            self.n_failed += 1
            self._finish(job, "failed", error=f"{type(exc).__name__}: {exc}")
        else:
            self.n_completed += 1
            self._finish(job, "ok", result=result)
        finally:
            if not nested:
                self._current_job = None
            self._touch()

    def _finish(self, job: Job, status: str, result=None, error=""):
        """Terminal transition: journal first, then queue, then waiters."""
        obs.inc("service.jobs", tags={"status": status})
        obs.trace_event(
            "job.done", key=job.key[:12], kind=job.spec.kind, status=status
        )
        try:
            self.journal.record_done(
                job.key, status, result=result, error=error
            )
            self._done_since_rotate += 1
        except OSError as exc:  # pragma: no cover - disk loss
            _LOG.error("journal done record failed: %s", exc)
        self.queue.finish(job, status, result=result, error=error)
        self._notify(job)

    def _maybe_rotate_journal(self) -> None:
        """Compact the journal once enough terminal records piled up.

        ``done`` records embed full lot results, so a journal that only
        rotates at drain grows without bound under sustained traffic.
        Runs on the executor thread between jobs; the journal's flock
        serializes it against in-flight ``record_accept`` appends.
        """
        threshold = self.config.journal_rotate_records
        if not threshold or self._done_since_rotate < threshold:
            return
        self._done_since_rotate = 0
        try:
            self.journal.rotate()
        except OSError as exc:  # pragma: no cover - disk loss
            _LOG.error("journal rotation failed: %s", exc)

    def _executor_loop(self) -> None:
        while not self._stop.is_set():
            if self._drain_requested.is_set():
                break
            job = self.queue.claim(timeout_s=0.2)
            if job is None:
                continue
            try:
                self._execute(job)
            except ServiceDrain:
                break
            self._maybe_rotate_journal()

    # ------------------------------------------------------------------
    # Watchdog thread
    # ------------------------------------------------------------------
    def _pool_progress(self) -> int:
        pool = self.sched.pool
        return 0 if pool is None else int(pool.telemetry.attempts)

    def _watchdog_loop(self) -> None:
        last_progress_t = self.clock()
        last_attempts = self._pool_progress()
        while not self._stop.wait(self.config.watchdog_interval_s):
            attempts = self._pool_progress()
            if (
                self._current_job is None
                or attempts != last_attempts
                or self._heartbeat_age() < self.config.watchdog_stall_s
            ):
                last_progress_t = self.clock()
                last_attempts = attempts
                continue
            if (
                self.clock() - last_progress_t
                < self.config.watchdog_stall_s
            ):
                continue
            pool = self.sched.pool
            if pool is not None and pool.active:
                _LOG.warning(
                    "watchdog: no progress for %.1fs — killing workers",
                    self.clock() - last_progress_t,
                )
                pool._kill_workers()
                self.n_watchdog_kills += 1
                obs.inc("service.watchdog_kills")
                obs.trace_event(
                    "service.watchdog_kill",
                    stalled_s=round(self.clock() - last_progress_t, 3),
                )
            last_progress_t = self.clock()
            last_attempts = self._pool_progress()

    # ------------------------------------------------------------------
    # Front-end (asyncio, main thread)
    # ------------------------------------------------------------------
    def _notify(self, job: Job) -> None:
        """Wake the waiters of one finished job (any thread)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._resolve_waiters, job.key)
        except RuntimeError:  # pragma: no cover - loop torn down
            pass

    def _resolve_waiters(self, key: str) -> None:
        job = self.queue.get(key)
        for future in self._waiters.pop(key, []):
            if not future.done() and job is not None:
                future.set_result(job.describe())

    async def _send(self, writer, payload: dict, droppable=False) -> None:
        if droppable and client_disconnect_fault():
            # The request (and any journal append it caused) has
            # happened; only the response is lost.  The client's
            # idempotent resubmit is the recovery path.
            self.n_disconnect_drops += 1
            writer.close()
            raise ConnectionResetError("injected client disconnect")
        writer.write(encode_line(payload))
        await writer.drain()

    def _release_held(self, job: Job) -> bool:
        """Make a held job claimable; reconcile the journal if not.

        When a drain wins the held-admission race the client is told
        ``rejected``, so the already-journaled accept must be cancelled
        with a ``dropped`` record — otherwise the next daemon would run
        a job its client was told will not run, and a resubmit to
        another daemon would execute the work twice.
        """
        if self.queue.release(job):
            return True
        try:
            self.journal.record_done(
                job.key, "dropped",
                error="daemon drained before the job ran",
            )
            self._done_since_rotate += 1
        except OSError as exc:  # pragma: no cover - disk loss
            _LOG.error("journal done record failed: %s", exc)
        self.n_dropped += 1
        self._notify(job)
        return False

    async def _handle_submit(self, request: dict, writer) -> None:
        spec: JobSpec = request["job"]
        key = spec.key()
        existing = self.queue.get(key)
        if existing is not None and existing.state == "ok":
            # Completed this process: answer from the in-memory cache
            # without touching the queue or journal.
            self.n_cached_hits += 1
            obs.inc("service.submits", tags={"verdict": "cached"})
            obs.trace_event(
                "job.submitted", key=key[:12], verdict="cached"
            )
            await self._send(
                writer,
                {
                    "ok": True,
                    "op": "submit",
                    "status": "cached",
                    "key": key,
                    "job": existing.describe(),
                },
                droppable=True,
            )
            return
        # Held admission: the job is dedupable immediately but only
        # becomes claimable once its accept record is durable —
        # otherwise a fast executor could journal the job's *done*
        # before its *accept*, and replay would resurrect it forever.
        verdict, job = self.queue.submit(spec, hold=True)
        if verdict == ADMITTED:
            # Durable before acknowledged: the ack only goes out once
            # the accept record is on disk.
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None,
                    self.journal.record_accept,
                    key,
                    spec,
                    self.clock(),
                )
            except OSError as exc:
                self.queue.finish(
                    job, "dropped", error=f"journal append failed: {exc}"
                )
                await self._send(
                    writer,
                    {
                        "ok": False,
                        "op": "submit",
                        "status": "error",
                        "key": key,
                        "error": f"journal append failed: {exc}",
                    },
                )
                return
            if not self._release_held(job):
                verdict = "rejected"
        obs.inc("service.submits", tags={"verdict": verdict})
        obs.trace_event(
            "job.submitted",
            key=key[:12],
            kind=spec.kind,
            verdict=verdict,
        )
        payload = {
            "ok": verdict != "rejected",
            "op": "submit",
            "status": verdict,
            "key": key,
        }
        if verdict == "rejected":
            payload["error"] = (
                "draining" if self.queue.draining else "backpressure"
            )
        wait = bool(request.get("wait")) and verdict in (
            ADMITTED,
            DUPLICATE,
        )
        future: Optional[asyncio.Future] = None
        if wait:
            target = job if job is not None else self.queue.get(key)
            if target is not None and target.done:
                payload["job"] = target.describe()
                wait = False
            else:
                future = asyncio.get_running_loop().create_future()
                self._waiters.setdefault(key, []).append(future)
        await self._send(writer, payload, droppable=True)
        if wait and future is not None:
            described = await future
            await self._send(
                writer,
                {"ok": True, "op": "result", "key": key, "job": described},
            )

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # The request line blew past the reader's limit.
                    # readline() already discarded the partial buffer
                    # and there is no way to resync mid-line, so
                    # answer once and hang up.
                    await self._send(
                        writer,
                        {
                            "ok": False,
                            "error": (
                                f"request line exceeds "
                                f"{MAX_LINE_BYTES} bytes"
                            ),
                        },
                    )
                    break
                if not line:
                    break
                try:
                    request = parse_request(decode_line(line))
                except ProtocolError as exc:
                    await self._send(
                        writer, {"ok": False, "error": str(exc)}
                    )
                    continue
                op = request["op"]
                # Request-to-response latency per op (a waited submit
                # includes its job's run time — that *is* the latency
                # the client saw).
                op_t0 = time.monotonic() if obs.enabled() else 0.0
                if op == "ping":
                    await self._send(
                        writer, {"ok": True, "op": "ping", "pong": True}
                    )
                elif op == "stats":
                    await self._send(
                        writer,
                        {
                            "ok": True,
                            "op": "stats",
                            "report": self.report().describe(),
                        },
                    )
                elif op == "metrics":
                    snap = obs.snapshot()
                    trace = obs.trace_buffer()
                    try:
                        trace_limit = int(request.get("trace_limit", 256))
                    except (TypeError, ValueError):
                        trace_limit = 256
                    await self._send(
                        writer,
                        {
                            "ok": True,
                            "op": "metrics",
                            "enabled": snap is not None,
                            "prometheus": (
                                "" if snap is None
                                else render_prometheus(snap)
                            ),
                            "metrics": snap,
                            "trace": (
                                None if trace is None
                                else trace.describe(limit=trace_limit)
                            ),
                        },
                    )
                elif op == "status":
                    job = self.queue.get(request["key"])
                    await self._send(
                        writer,
                        {
                            "ok": job is not None,
                            "op": "status",
                            "key": request["key"],
                            "job": None if job is None else job.describe(),
                        },
                    )
                elif op == "drain":
                    await self._send(
                        writer, {"ok": True, "op": "drain", "draining": True}
                    )
                    self.request_drain()
                elif op == "submit":
                    await self._handle_submit(request, writer)
                if op_t0:
                    obs.observe(
                        "service.op_seconds",
                        time.monotonic() - op_t0,
                        tags={"op": op},
                    )
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # client went away; its journaled jobs still run
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Begin a graceful drain (signal-safe, any thread)."""
        if self._drain_requested.is_set():
            return
        self._drain_requested.set()
        obs.trace_event("service.drain_requested")
        dropped = self.queue.drain()
        self.n_dropped += len(dropped)
        for job in dropped:
            self._notify(job)
        loop = self._loop
        if loop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._shutdown_async.set)

    def run(self, ready_callback=None) -> int:
        """Serve until drained; returns the process exit code."""
        return asyncio.run(self._main(ready_callback))

    async def _main(self, ready_callback=None) -> int:
        import signal as _signal

        self._loop = asyncio.get_running_loop()
        self._shutdown_async = asyncio.Event()
        # A daemon always observes itself: the metrics op, the stats
        # op's embedded snapshot and the span timelines all hang off
        # the process-global registry this turns on.  Worker pools
        # spawned later inherit it via the scheduler's initializer.
        obs.enable()
        obs.trace_event("service.start")
        self.journal.initialize()
        self.replay_journal()
        self._executor_thread = threading.Thread(
            target=self._executor_loop, name="service-executor", daemon=True
        )
        self._watchdog_thread = threading.Thread(
            target=self._watchdog_loop, name="service-watchdog", daemon=True
        )
        self._executor_thread.start()
        self._watchdog_thread.start()

        # StreamReader defaults to a 64 KiB line limit; the protocol
        # allows MAX_LINE_BYTES, plus slack so a line just over the
        # protocol bound is read whole and rejected with a clean
        # ProtocolError instead of a reader overrun.
        read_limit = MAX_LINE_BYTES + (1 << 10)
        if self.config.host is not None:
            server = await asyncio.start_server(
                self._handle_connection,
                self.config.host,
                self.config.port,
                limit=read_limit,
            )
            bound = server.sockets[0].getsockname()
            endpoint = {"host": bound[0], "port": bound[1]}
        else:
            socket_path = self.config.resolved_socket()
            with contextlib.suppress(OSError):
                pathlib.Path(socket_path).unlink()
            server = await asyncio.start_unix_server(
                self._handle_connection,
                path=socket_path,
                limit=read_limit,
            )
            endpoint = {"socket": socket_path}

        for signum in (_signal.SIGTERM, _signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                self._loop.add_signal_handler(signum, self.request_drain)

        if ready_callback is not None:
            ready_callback(endpoint)
        _LOG.info("serving on %s", endpoint)

        try:
            await self._shutdown_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            exit_code = await self._loop.run_in_executor(
                None, self._drain_threads
            )
            # Resolve any stragglers still waiting on a response.
            for key in list(self._waiters):
                self._resolve_waiters(key)
        return exit_code

    def _drain_threads(self) -> int:
        """Finish the drain off-loop: join threads, close the pool."""
        grace = float(self.config.drain_grace_s)
        self._executor_thread.join(timeout=grace)
        if self._executor_thread.is_alive():
            # The in-flight job blew the drain budget: kill the workers
            # so its pool call settles, and count it dropped.
            _LOG.warning("drain grace exceeded; killing workers")
            pool = self.sched.pool
            if pool is not None:
                pool._kill_workers()
            self._stop.set()
            self._executor_thread.join(timeout=5.0)
        self._stop.set()
        self._watchdog_thread.join(timeout=5.0)
        drain_scheduler(self.sched, kill_after_s=10.0)
        # Compact the journal: completed records drop out, incomplete
        # jobs are checkpointed for the next daemon to resume.
        try:
            self.journal.rotate()
        except OSError as exc:  # pragma: no cover - disk loss
            _LOG.error("journal rotation failed: %s", exc)
        incomplete = len(self.journal.replay().incomplete)
        if self.n_dropped or incomplete:
            return EXIT_JOBS_DROPPED
        return 0
