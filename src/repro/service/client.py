"""Synchronous service client: sockets in, idempotent resubmits out.

:class:`ServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.service.protocol` over a Unix or TCP socket.  It is the
client the CLI ``submit`` subcommand and the test/chaos harnesses use;
nothing in it is async — a blocking socket with a timeout is exactly
the right tool for "send one line, read one line".

The interesting part is :meth:`ServiceClient.submit_resilient`: the
daemon journals an accepted job *before* acknowledging it, so a
connection lost between request and response (the
``client_disconnect`` fault site, a network blip, a daemon SIGKILL)
leaves the client unsure whether its job was accepted.  Because job
keys are content-addressed idempotency tokens, the recovery is simply
to reconnect and resubmit: the daemon answers ``duplicate`` (still
running) or ``cached`` (already finished) instead of recomputing.
"""

from __future__ import annotations

import socket
import time
from typing import Optional, Tuple, Union

from repro.errors import ResourceError
from repro.service.protocol import JobSpec, decode_line, encode_line

__all__ = ["ServiceClient", "ServiceConnectionError", "wait_for_server"]

Address = Union[str, Tuple[str, int]]


class ServiceConnectionError(ResourceError):
    """The daemon is unreachable or hung up mid-exchange."""


class ServiceClient:
    """One blocking connection to the measurement daemon."""

    def __init__(self, address: Address, timeout_s: float = 30.0):
        self.address = address
        self.timeout_s = float(timeout_s)
        self._sock: Optional[socket.socket] = None
        self._fh = None

    # ------------------------------------------------------------------
    def _connect(self):
        if self._fh is not None:
            return self._fh
        try:
            if isinstance(self.address, str):
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout_s)
                sock.connect(self.address)
            else:
                host, port = self.address
                sock = socket.create_connection(
                    (host, int(port)), timeout=self.timeout_s
                )
        except OSError as exc:
            raise ServiceConnectionError(
                f"cannot reach service at {self.address!r}: {exc}"
            ) from None
        self._sock = sock
        self._fh = sock.makefile("rwb")
        return self._fh

    def close(self) -> None:
        for closable in (self._fh, self._sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:  # pragma: no cover - raced teardown
                    pass
        self._fh = None
        self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _read_line(self, timeout_s: Optional[float] = None) -> dict:
        if timeout_s is not None and self._sock is not None:
            self._sock.settimeout(timeout_s)
        try:
            line = self._fh.readline()
        except (OSError, socket.timeout) as exc:
            self.close()
            raise ServiceConnectionError(
                f"read from service failed: {exc}"
            ) from None
        finally:
            if timeout_s is not None and self._sock is not None:
                self._sock.settimeout(self.timeout_s)
        if not line:
            self.close()
            raise ServiceConnectionError(
                "service hung up before responding"
            )
        return decode_line(line)

    def request(self, message: dict) -> dict:
        """One request line out, one response line back."""
        fh = self._connect()
        try:
            fh.write(encode_line(message))
            fh.flush()
        except OSError as exc:
            self.close()
            raise ServiceConnectionError(
                f"write to service failed: {exc}"
            ) from None
        return self._read_line()

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self.request({"op": "stats"}).get("report", {})

    def metrics(self, trace_limit: int = 256) -> dict:
        """The daemon's telemetry: Prometheus text + JSON snapshot.

        Returns the full ``metrics`` response — ``prometheus`` (text
        exposition), ``metrics`` (the JSON registry snapshot, ``None``
        if the daemon has observability off), and ``trace`` (ring
        summary with the newest ``trace_limit`` events).
        """
        return self.request({"op": "metrics", "trace_limit": trace_limit})

    def status(self, key: str) -> Optional[dict]:
        return self.request({"op": "status", "key": key}).get("job")

    def drain(self) -> dict:
        return self.request({"op": "drain"})

    def submit(
        self,
        spec: JobSpec,
        wait: bool = False,
        wait_timeout_s: Optional[float] = None,
    ) -> dict:
        """Submit one job; optionally block for its terminal state.

        Returns the ack (``status`` in ``accepted`` / ``duplicate`` /
        ``cached`` / ``rejected``); with ``wait`` the terminal job
        view is merged in under ``"job"``.
        """
        ack = self.request(
            {"op": "submit", "job": spec.canonical(), "wait": wait}
        )
        if (
            wait
            and ack.get("status") in ("accepted", "duplicate")
            and "job" not in ack
        ):
            result = self._read_line(timeout_s=wait_timeout_s)
            ack = dict(ack)
            ack["job"] = result.get("job")
        return ack

    def submit_resilient(
        self,
        spec: JobSpec,
        wait: bool = False,
        wait_timeout_s: Optional[float] = None,
        attempts: int = 5,
        backoff_s: float = 0.2,
    ) -> dict:
        """Submit with reconnect-and-resubmit on lost connections.

        Safe because submission is idempotent: a resubmitted key is
        deduped against the in-flight or completed job, so at most one
        execution happens no matter how many times the ack was lost.
        """
        last: Optional[ServiceConnectionError] = None
        for attempt in range(max(1, int(attempts))):
            try:
                return self.submit(
                    spec, wait=wait, wait_timeout_s=wait_timeout_s
                )
            except ServiceConnectionError as exc:
                last = exc
                self.close()
                time.sleep(backoff_s * (attempt + 1))
        raise last  # type: ignore[misc]


def wait_for_server(
    address: Address, timeout_s: float = 10.0, poll_s: float = 0.05
) -> None:
    """Block until a daemon answers pings at ``address`` (or raise)."""
    deadline = time.monotonic() + float(timeout_s)
    while True:
        try:
            with ServiceClient(address, timeout_s=2.0) as client:
                if client.ping():
                    return
        except ServiceConnectionError:
            pass
        if time.monotonic() > deadline:
            raise ServiceConnectionError(
                f"no service at {address!r} within {timeout_s}s"
            )
        time.sleep(poll_s)
