"""Wire protocol and job specifications of the measurement service.

The daemon speaks newline-delimited JSON over a Unix or TCP socket:
every request is one JSON object on one line, every response is one
JSON object on one line, in order.  The framing is deliberately boring
— any language with a socket and a JSON parser is a client — because
the service's value is its failure behavior, not its RPC layer.

Requests carry an ``op``:

``submit``
    ``{"op": "submit", "job": {...}, "wait": bool}`` — enqueue one
    job.  The ack reports the admission verdict (``accepted`` /
    ``duplicate`` / ``cached`` / ``rejected``) plus the job's
    idempotency key; with ``wait`` the connection stays open and a
    second line delivers the terminal result.
``status``
    one job's lifecycle state by key.
``stats``
    the daemon's :class:`~repro.service.supervisor.ServiceReport`.
``metrics``
    the daemon's :mod:`repro.obs` telemetry — the JSON metrics
    snapshot, its Prometheus text rendering, and a trace-buffer
    summary (empty when observability is disabled in the daemon).
``drain``
    ask the daemon to drain and exit (what SIGTERM does, remotely).
``ping``
    liveness probe.

A :class:`JobSpec` is the client-side description of work: ``kind``
(``measure`` / ``lot`` / ``retest``), JSON-safe ``params`` forwarded to
the matching experiments-layer entry point, and an optional wall-clock
``deadline_s`` budget.  Its :meth:`JobSpec.key` is the store-style
SHA-256 digest of the canonical spec — the idempotency token admission
control dedups on and the journal records jobs under.  Two clients
submitting the same spec share one execution and one stored result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.store.keys import SCHEMA_VERSION, digest

__all__ = [
    "JOB_KINDS",
    "PRIORITIES",
    "JobSpec",
    "ProtocolError",
    "decode_line",
    "encode_line",
    "parse_job_spec",
    "parse_request",
]

#: Job kinds the service executes, mapped to admission priorities
#: (lower value = more urgent).  Interactive single-device ``measure``
#: jobs preempt bulk work at sub-batch boundaries; ``retest`` outranks
#: fresh ``lot`` screens because it blocks a lot's disposition.
PRIORITIES: Dict[str, int] = {"measure": 0, "retest": 1, "lot": 2}
JOB_KINDS = tuple(PRIORITIES)

_OPS = ("submit", "status", "stats", "metrics", "drain", "ping")

#: Upper bound on one request line; a client writing an unbounded blob
#: must not be able to balloon the daemon's memory.
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ConfigurationError):
    """A malformed request or response line."""


def encode_line(message: dict) -> bytes:
    """One JSON message as a newline-terminated wire line."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line back into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable request line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


@dataclass(frozen=True)
class JobSpec:
    """One unit of work a client asks the service to run.

    ``params`` must be JSON-safe and are forwarded to the experiments
    layer: a ``lot`` job maps onto :func:`~repro.experiments.
    production.run_production`, ``retest`` onto
    :func:`~repro.experiments.production.run_production_retest`, and
    ``measure`` onto a single-device BIST measurement.  ``deadline_s``
    is the job's wall-clock budget from *acceptance* — a layer above
    the pool's per-task ``task_timeout_s`` (see docs/SERVICE.md).
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ConfigurationError(
                f"job kind must be one of {sorted(JOB_KINDS)}, "
                f"got {self.kind!r}"
            )
        if not isinstance(self.params, dict):
            raise ConfigurationError(
                f"job params must be a dict, got {type(self.params).__name__}"
            )
        if self.deadline_s is not None and float(self.deadline_s) <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )

    @property
    def priority(self) -> int:
        return PRIORITIES[self.kind]

    def canonical(self) -> dict:
        """The JSON form both the wire and the journal carry.

        The deadline is deliberately *excluded* from the idempotency
        digest input (see :meth:`key`): the same work under a
        different budget is still the same work.
        """
        return {
            "kind": self.kind,
            "params": self.params,
            "deadline_s": (
                None if self.deadline_s is None else float(self.deadline_s)
            ),
        }

    def key(self) -> str:
        """The spec's idempotency token — a store-style SHA-256 digest.

        Admission control dedups in-flight jobs on it, the journal
        records jobs under it, and a completed job's summary is cached
        against it, so a resubmitted spec is answered without
        recomputation.
        """
        return digest(
            {
                "schema": SCHEMA_VERSION,
                "kind": "service_job",
                "job_kind": self.kind,
                "params": self.params,
            }
        )


def parse_job_spec(raw: Any) -> JobSpec:
    """A :class:`JobSpec` from its wire/journal JSON form."""
    if not isinstance(raw, dict):
        raise ProtocolError(
            f"job must be a JSON object, got {type(raw).__name__}"
        )
    unknown = set(raw) - {"kind", "params", "deadline_s"}
    if unknown:
        raise ProtocolError(f"unknown job fields: {sorted(unknown)}")
    try:
        return JobSpec(
            kind=raw.get("kind", ""),
            params=raw.get("params", {}) or {},
            deadline_s=raw.get("deadline_s"),
        )
    except ConfigurationError as exc:
        raise ProtocolError(str(exc)) from None


def parse_request(message: dict) -> dict:
    """Validate one decoded request message (op + op-specific fields)."""
    op = message.get("op")
    if op not in _OPS:
        raise ProtocolError(
            f"op must be one of {sorted(_OPS)}, got {op!r}"
        )
    if op == "submit":
        message = dict(message)
        message["job"] = parse_job_spec(message.get("job"))
        message["wait"] = bool(message.get("wait", False))
    if op == "status" and not isinstance(message.get("key"), str):
        raise ProtocolError("status requires a string 'key'")
    return message
