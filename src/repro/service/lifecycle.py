"""Shared shutdown machinery: signal trapping and pool draining.

Both halves of PR 9's interrupt story live here so they cannot drift
apart: the daemon's SIGTERM drain and the CLI's Ctrl-C handling use
the same trap-and-drain helpers, and both report through the same
distinct exit codes.

Exit codes:

``EXIT_INTERRUPTED`` (130)
    a CLI command was interrupted and drained cleanly — the
    conventional ``128 + SIGINT`` so shell scripts see the interrupt.
``EXIT_JOBS_DROPPED`` (70)
    the daemon drained but acknowledged jobs did not finish; they
    remain journaled and a restarted daemon resumes them (``EX_SOFTWARE``
    repurposed as "work remains").
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Optional

__all__ = [
    "EXIT_INTERRUPTED",
    "EXIT_JOBS_DROPPED",
    "ServiceInterrupt",
    "drain_scheduler",
    "trap_signals",
]

EXIT_INTERRUPTED = 130
EXIT_JOBS_DROPPED = 70


class ServiceInterrupt(BaseException):
    """SIGINT/SIGTERM converted to a catchable control-flow exception.

    Deliberately a ``BaseException`` (like ``KeyboardInterrupt``): no
    library-level ``except Exception`` may swallow a drain request.
    """

    def __init__(self, signum: int):
        self.signum = int(signum)
        super().__init__(f"interrupted by signal {signum}")


@contextmanager
def trap_signals(signums=(signal.SIGINT, signal.SIGTERM)):
    """Raise :class:`ServiceInterrupt` in the main thread on a signal.

    Installs handlers for the block and restores the previous ones on
    exit.  A second signal while the first is being handled falls
    through to the previous handler (for SIGINT usually
    ``KeyboardInterrupt``) so a stuck drain can still be escalated.
    Outside the main thread (where CPython forbids ``signal.signal``)
    this is a no-op pass-through.
    """
    fired = {"signum": None}

    def _handler(signum, frame):
        if fired["signum"] is None:
            fired["signum"] = signum
            raise ServiceInterrupt(signum)
        # Second signal: restore default behaviour and re-deliver.
        signal.signal(signum, previous.get(signum, signal.SIG_DFL))
        signal.raise_signal(signum)

    previous = {}
    if threading.current_thread() is threading.main_thread():
        for signum in signums:
            previous[signum] = signal.signal(signum, _handler)
    try:
        yield fired
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def drain_scheduler(
    scheduler,
    kill_after_s: Optional[float] = 10.0,
    force_close: bool = False,
) -> bool:
    """Gracefully release a scheduler's pool, killing hung workers.

    ``scheduler.close()`` shuts the worker pool down and enforces the
    store budget — but ``shutdown(wait=True)`` blocks forever behind a
    genuinely hung worker, which is exactly the state an interrupt
    often finds.  A timer thread kills the worker processes after
    ``kill_after_s`` so the drain always terminates.  Returns ``True``
    for a clean drain, ``False`` if workers had to be killed.

    ``force_close`` closes the underlying engine even when the
    scheduler merely wraps a caller-owned one — the interrupt path
    wants no worker left behind regardless of ownership.
    """
    pool = scheduler.pool
    killed = threading.Event()
    timer = None
    if pool is not None and kill_after_s is not None:

        def _kill():
            killed.set()
            pool._kill_workers()

        timer = threading.Timer(float(kill_after_s), _kill)
        timer.daemon = True
        timer.start()
    try:
        if force_close:
            scheduler.engine.close()
        scheduler.close()
    finally:
        if timer is not None:
            timer.cancel()
    return not killed.is_set()
