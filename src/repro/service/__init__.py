"""The supervised measurement service (PR 9).

The screen as a long-lived daemon: ``repro.cli serve`` runs
:class:`~repro.service.supervisor.MeasurementService`, clients submit
measure/lot/retest jobs over a Unix/TCP JSON-line protocol
(:mod:`~repro.service.protocol`), and the daemon multiplexes them onto
one shared worker pool and result store.  Accepted jobs are journaled
before they are acknowledged (:mod:`~repro.service.journal`), bounded
and prioritized at admission (:mod:`~repro.service.queue`), executed
with checkpointed drain/deadline/preemption boundaries, and recovered
bit-identically after a crash.  See docs/SERVICE.md.
"""

from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    wait_for_server,
)
from repro.service.journal import JobJournal, JournalEntry, JournalState
from repro.service.lifecycle import (
    EXIT_INTERRUPTED,
    EXIT_JOBS_DROPPED,
    ServiceInterrupt,
    drain_scheduler,
    trap_signals,
)
from repro.service.protocol import JobSpec, ProtocolError
from repro.service.queue import Job, JobQueue
from repro.service.supervisor import (
    JobDeadlineExceeded,
    MeasurementService,
    ServiceConfig,
    ServiceDrain,
    ServiceReport,
)

__all__ = [
    "EXIT_INTERRUPTED",
    "EXIT_JOBS_DROPPED",
    "Job",
    "JobDeadlineExceeded",
    "JobJournal",
    "JobQueue",
    "JobSpec",
    "JournalEntry",
    "JournalState",
    "MeasurementService",
    "ProtocolError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceConnectionError",
    "ServiceDrain",
    "ServiceInterrupt",
    "ServiceReport",
    "drain_scheduler",
    "trap_signals",
    "wait_for_server",
]
