"""Admission control: a bounded priority queue with dedup and shedding.

The service never buffers unboundedly: a queue at ``max_depth`` sheds
the next submission with an explicit REJECTED(backpressure) verdict
instead of accepting work it cannot promise to run.  Within the bound,
jobs are ordered by kind priority (``measure`` before ``retest``
before ``lot`` — interactive probes must not wait behind bulk screens)
and FIFO within a priority.

Dedup rides on the store's content addressing: every job's
:meth:`~repro.service.protocol.JobSpec.key` is a SHA-256 digest of the
spec, so a spec already queued or running is acknowledged as
``duplicate`` and attached to the in-flight execution — the second
client gets the first client's result, and nothing is computed twice.

All state transitions go through one lock + condition pair; the
executor thread blocks in :meth:`claim` while the asyncio front-end
submits from the event-loop thread.  The clock is injectable so
deadline expiry is unit-testable without sleeping.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.service.protocol import JobSpec

__all__ = ["Job", "JobQueue", "ADMITTED", "DUPLICATE", "REJECTED"]

ADMITTED = "accepted"
DUPLICATE = "duplicate"
REJECTED = "rejected"

#: Lifecycle states a job moves through.
_STATES = ("queued", "running", "ok", "failed", "deadline", "dropped")


@dataclass
class Job:
    """One admitted job and its lifecycle state."""

    key: str
    spec: JobSpec
    submitted_at: float
    seq: int = 0  # admission order; FIFO tiebreak within a priority
    state: str = "queued"
    result: Optional[dict] = None
    error: str = ""
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Checkpoints the running job has passed (deadline draws key on it).
    checks: int = 0
    #: Set when replayed from the journal rather than freshly submitted.
    replayed: bool = False

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def done(self) -> bool:
        return self.state in ("ok", "failed", "deadline", "dropped")

    def remaining_s(self, now: float) -> Optional[float]:
        """Wall-clock budget left, or ``None`` for budget-less jobs."""
        if self.spec.deadline_s is None:
            return None
        return float(self.spec.deadline_s) - (now - self.submitted_at)

    def expired(self, now: float) -> bool:
        remaining = self.remaining_s(now)
        return remaining is not None and remaining <= 0.0

    def describe(self) -> dict:
        """JSON-ready lifecycle view (the ``status`` op returns it)."""
        return {
            "key": self.key,
            "kind": self.spec.kind,
            "state": self.state,
            "priority": self.priority,
            "deadline_s": self.spec.deadline_s,
            "result": self.result,
            "error": self.error,
            "replayed": self.replayed,
        }


class JobQueue:
    """Thread-safe bounded priority queue with idempotency-key dedup."""

    def __init__(
        self,
        max_depth: int = 64,
        clock: Callable[[], float] = time.monotonic,
        on_expire: Optional[Callable[[Job], None]] = None,
        completed_retain: int = 256,
    ):
        if max_depth < 1:
            raise ConfigurationError(
                f"max_depth must be >= 1, got {max_depth}"
            )
        if completed_retain < 1:
            raise ConfigurationError(
                f"completed_retain must be >= 1, got {completed_retain}"
            )
        self.max_depth = int(max_depth)
        self.completed_retain = int(completed_retain)
        self.clock = clock
        #: Called (under the queue lock — do not reenter the queue) for
        #: every job the queue itself expires without running, so the
        #: owner can journal the terminal state and wake its waiters.
        self.on_expire = on_expire
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        #: Live jobs plus the ``completed_retain`` most recent finished
        #: ones (kept for dedup/cached answers); older completed jobs
        #: are evicted so a long-lived daemon's memory stays bounded —
        #: their results live on in the content-addressed store.
        self._jobs: Dict[str, Job] = {}
        self._completed: "deque" = deque()  # finished keys, oldest first
        self._pending: List[Job] = []
        self._seq = itertools.count()
        self._draining = False
        # Admission counters (ServiceReport reads them).
        self.n_accepted = 0
        self.n_duplicates = 0
        self.n_shed = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Queued (not yet claimed) jobs."""
        with self._lock:
            return len(self._pending)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def get(self, key: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(key)

    # ------------------------------------------------------------------
    def submit(
        self, spec: JobSpec, replayed: bool = False, hold: bool = False
    ):
        """Admit one spec: ``(verdict, job-or-None)``.

        ``duplicate`` returns the live (or completed) job already
        holding the key; ``rejected`` returns ``None`` — backpressure
        when the queue is full, unconditional while draining.

        ``hold`` admits the job (dedupable, counted) but keeps it
        unclaimable until :meth:`release` — the supervisor's
        durable-before-runnable window while the journal append is in
        flight.  Without the hold a fast executor could *finish* the
        job (journaling its ``done``) before its ``accept`` record
        lands, and replay would resurrect it forever.
        """
        key = spec.key()
        with self._lock:
            existing = self._jobs.get(key)
            if existing is not None and not existing.done:
                self.n_duplicates += 1
                return DUPLICATE, existing
            if self._draining or len(self._pending) >= self.max_depth:
                self.n_shed += 1
                return REJECTED, None
            job = Job(
                key=key,
                spec=spec,
                submitted_at=self.clock(),
                seq=next(self._seq),
                replayed=replayed,
            )
            self._jobs[key] = job
            self.n_accepted += 1
            if not hold:
                self._pending.append(job)
                self._ready.notify()
            return ADMITTED, job

    def release(self, job: Job) -> bool:
        """Make a held job claimable (its accept record is durable).

        Returns ``False`` — finishing the job as ``dropped`` — if the
        queue started draining during the hold; the journaled accept
        makes the next daemon resume it.
        """
        with self._lock:
            if self._draining:
                self._finish_locked(
                    job, "dropped",
                    error="daemon drained before the job ran",
                )
                return False
            self._pending.append(job)
            self._ready.notify()
            return True

    # ------------------------------------------------------------------
    def _pop_best(self) -> Optional[Job]:
        if not self._pending:
            return None
        best = min(self._pending, key=lambda j: (j.priority, j.seq))
        self._pending.remove(best)
        return best

    def claim(self, timeout_s: Optional[float] = None) -> Optional[Job]:
        """Block for the highest-priority queued job and mark it running.

        Queued jobs whose deadline already expired are failed in place
        (``deadline``) without ever running — a budget spent waiting is
        still spent.  Returns ``None`` on timeout.
        """
        deadline = None if timeout_s is None else self.clock() + timeout_s
        with self._lock:
            while True:
                job = self._pop_best()
                while job is not None and job.expired(self.clock()):
                    self._expire_locked(job)
                    job = self._pop_best()
                if job is not None:
                    job.state = "running"
                    job.started_at = self.clock()
                    return job
                remaining = (
                    None if deadline is None else deadline - self.clock()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._ready.wait(timeout=remaining)

    def claim_nowait(self, max_priority: int) -> Optional[Job]:
        """A queued job at or above ``max_priority``, or ``None``.

        The preemption hook: a running lot's checkpoint asks for any
        waiting interactive job to run inline at the sub-batch
        boundary.
        """
        with self._lock:
            candidates = [
                j for j in self._pending if j.priority <= max_priority
            ]
            if not candidates:
                return None
            best = min(candidates, key=lambda j: (j.priority, j.seq))
            self._pending.remove(best)
            if best.expired(self.clock()):
                self._expire_locked(best)
                return None
            best.state = "running"
            best.started_at = self.clock()
            return best

    # ------------------------------------------------------------------
    def _expire_locked(self, job: Job) -> None:
        """Fail one queued job whose budget ran out before it started."""
        self._finish_locked(
            job, "deadline",
            error="deadline expired before the job started",
        )
        if self.on_expire is not None:
            self.on_expire(job)

    def _finish_locked(
        self, job: Job, state: str, result=None, error: str = ""
    ) -> None:
        if job in self._pending:
            self._pending.remove(job)
        job.state = state
        job.result = result
        job.error = error
        job.finished_at = self.clock()
        self._completed.append(job.key)
        while len(self._completed) > self.completed_retain:
            old_key = self._completed.popleft()
            old = self._jobs.get(old_key)
            # The key may have been re-admitted (a live job now holds
            # it) or already evicted via an older deque entry; only a
            # still-completed job is dropped, and never the one being
            # finished right now (its waiters have not resolved yet).
            if old is not None and old.done and old is not job:
                del self._jobs[old_key]
        self._ready.notify_all()

    def finish(
        self, job: Job, state: str, result=None, error: str = ""
    ) -> None:
        """Move one claimed job to a terminal state."""
        if state not in ("ok", "failed", "deadline", "dropped"):
            raise ConfigurationError(f"bad terminal state {state!r}")
        with self._lock:
            self._finish_locked(job, state, result=result, error=error)

    def requeue(self, job: Job) -> None:
        """Put a claimed-but-preempted job back at its old position."""
        with self._lock:
            job.state = "queued"
            job.started_at = None
            self._pending.append(job)
            self._ready.notify()

    # ------------------------------------------------------------------
    def drain(self) -> List[Job]:
        """Stop admitting; return the still-queued jobs (now dropped).

        Queued jobs have been *acknowledged*, so the drain path must
        either journal them as dropped or count them against the exit
        code — the supervisor does both.
        """
        with self._lock:
            self._draining = True
            dropped = list(self._pending)
            self._pending.clear()
            for job in dropped:
                self._finish_locked(
                    job, "dropped", error="daemon drained before the job ran"
                )
            self._ready.notify_all()
            return dropped

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._pending),
                "max_depth": self.max_depth,
                "accepted": self.n_accepted,
                "duplicates": self.n_duplicates,
                "shed": self.n_shed,
                "draining": self._draining,
            }
