"""Section 4.1 analysis: direct method vs Y-factor under gain drift.

Eq 10 of the paper shows the direct method's NF estimate absorbs any
deviation of the conditioning-amplifier gain; eq 11 shows the Y-factor
ratio cancels it.  This experiment sweeps a gain drift and reports both
the analytic direct-method error and simulated estimates from the
prototype bench for the two methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.constants import linear_to_db
from repro.core.direct import DirectMethod, direct_method_gain_error_db
from repro.core.yfactor import YFactorMethod
from repro.dsp.psd import welch
from repro.engine import MeasurementEngine
from repro.engine.scheduler import MeasurementScheduler, as_scheduler
from repro.errors import ConfigurationError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.signals.waveform import Waveform

DEFAULT_DRIFTS = (0.80, 0.90, 0.95, 1.00, 1.05, 1.10, 1.20)


@dataclass(frozen=True)
class GainSensitivityPoint:
    """One drift value's outcome."""

    gain_drift: float
    direct_error_analytic_db: float
    direct_error_simulated_db: float
    yfactor_error_simulated_db: float


@dataclass(frozen=True)
class GainSensitivityResult:
    """The full drift sweep."""

    points: List[GainSensitivityPoint]
    expected_nf_db: float

    @property
    def max_yfactor_error_db(self) -> float:
        """Worst Y-factor error over the sweep (should stay small)."""
        return max(abs(p.yfactor_error_simulated_db) for p in self.points)

    @property
    def max_direct_error_db(self) -> float:
        """Worst direct-method error over the sweep (tracks the drift)."""
        return max(abs(p.direct_error_simulated_db) for p in self.points)


def measure_drift_point(task, rng, rng_mode: str = "compat") -> GainSensitivityPoint:
    """Sweep worker: one gain-drift setting, both estimation methods.

    ``task`` is ``(drift, opamp, n_samples, f_low, f_high, expected_nf,
    assumed_gain, n0)`` — the nominal-chain quantities are precomputed
    by the caller (they are deterministic), so the worker only builds
    the drifted bench.  Module-level so the engine's process backend
    can pickle it.  A philox-mode engine forwards ``rng_mode`` (see
    :meth:`~repro.engine.MeasurementEngine.map_sweep`): the two analog
    records then render as one counter-based batch — deterministic per
    point seed, not bit-identical to the compat scalar renders.
    """
    drift, opamp, n_samples, f_low, f_high, expected_nf, assumed_gain, n0 = (
        task
    )
    nperseg = 8192
    bench = build_prototype_testbench(opamp, n_samples=n_samples)
    bench.post_amplifier = bench.post_amplifier.with_gain_drift(drift)
    rng_hot, rng_cold = spawn_rngs(rng, 2)
    if rng_mode == "compat":
        hot = bench.analog_output("hot", rng_hot)
        cold = bench.analog_output("cold", rng_cold)
    else:
        analog, _, _, rate, _ = bench.acquire_analog_batch(
            ["hot", "cold"], [rng_hot, rng_cold], rng_mode=rng_mode
        )
        hot = Waveform(analog[0], rate)
        cold = Waveform(analog[1], rate)
    spec_hot = welch(hot, nperseg=nperseg)
    spec_cold = welch(cold, nperseg=nperseg)
    p_hot = spec_hot.band_power(f_low, f_high)
    p_cold = spec_cold.band_power(f_low, f_high)

    # Direct method: absolute cold-state band power against the
    # *assumed* (nominal) chain gain (a calibrated tester knows the
    # nominal response).
    band = f_high - f_low
    direct = DirectMethod(
        assumed_power_gain=assumed_gain,
        bandwidth_hz=band,
        source_power_n0=n0,
    )
    direct_nf = direct.noise_figure_from_power(p_cold)

    # Y-factor: the ratio cancels the drift.
    yf = YFactorMethod(
        bench.noise_source.t_hot_k, bench.noise_source.t_cold_k
    )
    y_nf = yf.from_powers(p_hot, p_cold).noise_figure_db

    return GainSensitivityPoint(
        gain_drift=drift,
        direct_error_analytic_db=direct_method_gain_error_db(
            10 ** (expected_nf / 10.0), drift**2
        ),
        direct_error_simulated_db=direct_nf - expected_nf,
        yfactor_error_simulated_db=y_nf - expected_nf,
    )


def run_gain_sensitivity(
    drifts=DEFAULT_DRIFTS,
    opamp: str = "OP27",
    n_samples: int = 2**17,
    noise_band_hz: Tuple[float, float] = (500.0, 1500.0),
    seed: GeneratorLike = 2005,
    engine: Optional[MeasurementEngine] = None,
    scheduler: Optional[MeasurementScheduler] = None,
) -> GainSensitivityResult:
    """Sweep post-amplifier gain drift; estimate NF both ways.

    Both methods see the *same* drifted analog chain; the estimators are
    configured with the nominal (assumed) gain, as a production tester
    would be.  The drift points fan out through the scheduler's
    ``map_sweep`` (in-process by default; a ``backend="process"``
    engine distributes them over its persistent worker pool) with one
    child generator per point, so results are identical across
    backends.
    """
    drifts = tuple(drifts)
    if not drifts:
        raise ConfigurationError("need at least one drift value")
    sched = as_scheduler(engine=engine, scheduler=scheduler)
    gen = make_rng(seed)
    rngs = spawn_rngs(gen, len(drifts))

    nominal = build_prototype_testbench(opamp, n_samples=n_samples)
    f_low, f_high = noise_band_hz
    expected_nf = nominal.expected_nf_db(f_low, f_high)

    # Nominal-chain quantities the direct method assumes, including the
    # chain's in-band rolloff; deterministic, so computed once here
    # rather than per worker.
    grid = np.linspace(f_low, f_high, 512)
    h2 = (
        nominal._chain_magnitude(nominal.dut, grid)
        * nominal._chain_magnitude(nominal.post_amplifier, grid)
    ) ** 2
    assumed_gain = (
        (nominal.dut.gain * nominal.post_amplifier.gain) ** 2
        * float(np.mean(h2))
    )
    n0 = nominal.dut.source_noise_density(290.0) * (f_high - f_low)

    tasks = [
        (
            float(drift),
            opamp,
            int(n_samples),
            float(f_low),
            float(f_high),
            float(expected_nf),
            float(assumed_gain),
            float(n0),
        )
        for drift in drifts
    ]
    points = sched.map_sweep(measure_drift_point, tasks, rngs=rngs)
    return GainSensitivityResult(points=points, expected_nf_db=expected_nf)
