"""Figure 8: PSD of the digitizer bitstream, hot vs cold, before
normalization.

The observable the paper points at: "the noise levels remain similar,
while amplitude levels of the reference square wave are larger" (for the
cold state).  We reproduce line powers and mean floor densities of both
raw bitstream spectra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dsp.spectrum import Spectrum
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


@dataclass(frozen=True)
class Fig8Result:
    """Raw (un-normalized) bitstream spectrum levels."""

    line_power_hot: float
    line_power_cold: float
    floor_density_hot: float
    floor_density_cold: float
    spectrum_hot: Spectrum
    spectrum_cold: Spectrum

    @property
    def line_ratio_cold_over_hot(self) -> float:
        """Cold line is larger (smaller noise -> bigger limiter gain)."""
        return self.line_power_cold / self.line_power_hot

    @property
    def floor_ratio_hot_over_cold(self) -> float:
        """Close to 1: the +/-1 stream hides the absolute noise level."""
        return self.floor_density_hot / self.floor_density_cold


def run_fig8(
    config: Optional[MatlabSimConfig] = None,
    seed: GeneratorLike = 2005,
) -> Fig8Result:
    """Regenerate the figure-8 spectrum levels."""
    sim = MatlabSimulation(config)
    gen = make_rng(seed)
    rng_hot, rng_cold = spawn_rngs(gen, 2)
    estimator = sim.make_estimator()

    spec_hot = estimator.spectrum_of(sim.bitstream("hot", rng_hot))
    spec_cold = estimator.spectrum_of(sim.bitstream("cold", rng_cold))

    normalizer = estimator.normalizer
    f_hot, line_hot = normalizer.line_power(spec_hot)
    f_cold, line_cold = normalizer.line_power(spec_cold)
    f_low, f_high = sim.config.noise_band_hz
    floor_hot = spec_hot.band_mean_density(
        f_low, f_high, exclude=normalizer.exclusion_zones(spec_hot, f_hot)
    )
    floor_cold = spec_cold.band_mean_density(
        f_low, f_high, exclude=normalizer.exclusion_zones(spec_cold, f_cold)
    )
    return Fig8Result(
        line_power_hot=line_hot,
        line_power_cold=line_cold,
        floor_density_hot=floor_hot,
        floor_density_cold=floor_cold,
        spectrum_hot=spec_hot,
        spectrum_cold=spec_cold,
    )
