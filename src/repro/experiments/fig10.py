"""Figure 10: power-ratio estimation error vs reference amplitude.

Sweeps ``Vref / Vnoise`` and records the 1-bit power-ratio error.  The
paper's guidance: very small references are swamped by the noise floor,
very large references drive the limiter nonlinear; 10-40 % of the noise
level is the sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.engine import MeasurementEngine, MeasurementTask
from repro.engine.scheduler import MeasurementScheduler, as_scheduler
from repro.errors import MeasurementError
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs

#: Default sweep of reference-to-noise amplitude ratios (in percent the
#: paper's x axis runs 0-70).
DEFAULT_RATIOS = (0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60, 0.70)


@dataclass(frozen=True)
class Fig10Point:
    """One sweep point."""

    reference_ratio: float
    power_ratio: Optional[float]
    error_pct: Optional[float]

    @property
    def failed(self) -> bool:
        """True when the reference line could not be measured."""
        return self.power_ratio is None


@dataclass(frozen=True)
class Fig10Result:
    """The full sweep."""

    points: List[Fig10Point]
    true_power_ratio: float

    def in_window(self, low: float = 0.10, high: float = 0.40) -> List[Fig10Point]:
        """Points inside the paper's recommended 10-40 % window."""
        return [
            p for p in self.points if low <= p.reference_ratio <= high
        ]

    def max_abs_error_in_window_pct(self) -> float:
        """Worst error inside the recommended window."""
        window = [p for p in self.in_window() if not p.failed]
        if not window:
            raise MeasurementError("no successful points inside the window")
        return max(abs(p.error_pct) for p in window)


def run_fig10(
    config: Optional[MatlabSimConfig] = None,
    ratios=DEFAULT_RATIOS,
    n_average: int = 4,
    seed: GeneratorLike = 2005,
    engine: Optional[MeasurementEngine] = None,
    scheduler: Optional[MeasurementScheduler] = None,
) -> Fig10Result:
    """Sweep the reference amplitude and record power-ratio errors.

    Each point averages ``n_average`` independent acquisitions (the
    small-amplitude region has a noisy line estimate); a point is marked
    failed only when every acquisition fails.  A smaller record than
    Table 2's default keeps the sweep fast; pass a custom ``config`` to
    reproduce at full length.  Every ratio shares one analysis
    configuration (the reference amplitude does not enter it), so the
    scheduler plans the *entire sweep* — all ratios, all averages — as
    a single multi-device batch, with the same per-trial generators as
    the per-ratio batches it replaces.
    """
    # Keep the 60 Hz reference on-bin (df = 2 Hz) for the default sweep;
    # off-bin leakage interacts with the line measurement and would
    # confound the amplitude sweep.
    base = config if config is not None else MatlabSimConfig(
        n_samples=250_000, nperseg=5000
    )
    if n_average < 1:
        raise ValueError(f"n_average must be >= 1, got {n_average}")
    sched = as_scheduler(engine=engine, scheduler=scheduler)
    ratios = tuple(ratios)
    gen = make_rng(seed)
    rngs = spawn_rngs(gen, len(ratios))

    tasks = []
    for ratio, rng in zip(ratios, rngs):
        sim = MatlabSimulation(replace(base, reference_ratio=ratio))
        estimator = sim.make_estimator()
        # The same trial children run_batch would spawn for this ratio.
        tasks += [
            MeasurementTask(sim, estimator, child)
            for child in spawn_rngs(make_rng(rng), n_average)
        ]
    results = sched.run(tasks, allow_failures=True)

    points = []
    true_ratio = MatlabSimulation(base).true_power_ratio
    for k, ratio in enumerate(ratios):
        ratio_results = results[k * n_average : (k + 1) * n_average]
        y_values = [r.y for r in ratio_results if r is not None]
        if not y_values:
            points.append(
                Fig10Point(reference_ratio=ratio, power_ratio=None, error_pct=None)
            )
            continue
        y_mean = float(np.mean(y_values))
        error = 100.0 * (y_mean - true_ratio) / true_ratio
        points.append(
            Fig10Point(
                reference_ratio=ratio, power_ratio=y_mean, error_pct=error
            )
        )
    return Fig10Result(points=points, true_power_ratio=true_ratio)
