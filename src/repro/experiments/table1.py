"""Table 1: reference noise-figure / noise-factor values.

A definitional check: NF 0/3/10 dB correspond to F = 1/2/10 (with 3 dB
being exactly ``10*log10(2) = 3.0103``, the paper rounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.definitions import f_to_nf, nf_to_f


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1."""

    nf_db: float
    noise_factor: float
    example: str


@dataclass(frozen=True)
class Table1Result:
    """All rows of Table 1."""

    rows: List[Table1Row]


#: The paper's reference rows: (NF dB, example device).
PAPER_ROWS = (
    (0.0, "noiseless analog circuit"),
    (3.0103, "RF low noise amplifier"),
    (10.0, "RF mixer"),
)


def run_table1() -> Table1Result:
    """Regenerate Table 1 from the definitions (eq 3)."""
    rows = [
        Table1Row(nf_db=nf, noise_factor=nf_to_f(nf), example=example)
        for nf, example in PAPER_ROWS
    ]
    return Table1Result(rows=rows)
