"""Experiment harness: one module per paper table/figure plus ablations.

Every ``run_*`` function is deterministic given its ``seed`` and returns a
plain dataclass of results; the matching benchmark regenerates the paper's
rows/series from it and the examples reuse the same entry points.

Index (see DESIGN.md section 4):

================  =============================================
Module            Paper content
================  =============================================
``table1``        Reference NF/F values
``table2``        Noise power ratio by three methods
``table3``        Four-opamp prototype NF (expected vs measured)
``fig7``          Hot/cold noise + reference waveforms
``fig8``          Bitstream PSD levels before normalization
``fig9``          Normalized PSD floors (zoom at 60 Hz)
``fig10``         Power-ratio error vs reference amplitude
``fig13``         Prototype PSDs after normalization
``gain_sensitivity``  Direct vs Y-factor under gain drift (eq 10/11)
``uncertainty``   Hot-temperature error budget (ref [6] claim)
``resources``     SoC resource accounting, 1-bit vs ADC vs streaming
``vanvleck``      Arcsine-correction ablation
``record_length`` Accuracy vs acquisition length ablation
``robustness``    Comparator non-ideality ablation
``fixedpoint_ablation``  Fixed-point DSP word-length ablation
``spot_nf``       NF vs frequency extension (octave bands)
``production``    Guard-banded production screening extension
================  =============================================
"""

from repro.experiments.matlab_sim import MatlabSimulation, MatlabSimConfig

__all__ = ["MatlabSimulation", "MatlabSimConfig"]
