"""Figure 13: prototype bitstream PSDs after normalization.

The experimental counterpart of figure 9: the 3 kHz reference line, the
noise measurement band around 1 kHz and the normalized hot/cold floors
whose ratio carries the DUT noise figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.bist import BISTResult
from repro.dsp.spectrum import Spectrum
from repro.instruments.testbench import PrototypeTestbench, build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


@dataclass(frozen=True)
class Fig13Result:
    """Normalized prototype spectra and the measurement they imply."""

    noise_band_hz: Tuple[float, float]
    reference_frequency_hz: float
    floor_after_hot: float
    floor_after_cold: float
    line_power_hot_raw: float
    line_power_cold_raw: float
    bist: BISTResult
    expected_nf_db: float
    spectrum_hot_normalized: Spectrum
    spectrum_cold_normalized: Spectrum

    @property
    def floor_ratio_after(self) -> float:
        """Hot/cold normalized floor ratio (the measured Y)."""
        return self.floor_after_hot / self.floor_after_cold

    @property
    def nf_error_db(self) -> float:
        """Measured minus expected NF."""
        return self.bist.noise_figure_db - self.expected_nf_db


def run_fig13(
    bench: Optional[PrototypeTestbench] = None,
    opamp: str = "OP27",
    n_samples: int = 2**19,
    noise_band_hz: Tuple[float, float] = (500.0, 1500.0),
    seed: GeneratorLike = 2005,
) -> Fig13Result:
    """Regenerate the figure-13 normalized-PSD view of the prototype."""
    if bench is None:
        bench = build_prototype_testbench(opamp, n_samples=n_samples)
    estimator = bench.make_estimator(noise_band_hz=noise_band_hz)
    normalizer = estimator.normalizer

    gen = make_rng(seed)
    rng_hot, rng_cold = spawn_rngs(gen, 2)
    bits_hot = bench.acquire_bitstream("hot", rng_hot)
    bits_cold = bench.acquire_bitstream("cold", rng_cold)
    spec_hot = estimator.spectrum_of(bits_hot)
    spec_cold = estimator.spectrum_of(bits_cold)
    result = estimator.estimate_from_spectra(spec_hot, spec_cold)
    norm = result.normalization

    zones_hot = normalizer.exclusion_zones(spec_hot, norm.line_frequency_hot_hz)
    zones_cold = normalizer.exclusion_zones(spec_cold, norm.line_frequency_cold_hz)
    return Fig13Result(
        noise_band_hz=noise_band_hz,
        reference_frequency_hz=bench.reference.frequency_hz,
        floor_after_hot=norm.hot.band_mean_density(
            *noise_band_hz, exclude=zones_hot
        ),
        floor_after_cold=norm.cold.band_mean_density(
            *noise_band_hz, exclude=zones_cold
        ),
        line_power_hot_raw=norm.line_power_hot,
        line_power_cold_raw=norm.line_power_cold,
        bist=result,
        expected_nf_db=bench.expected_nf_db(*noise_band_hz),
        spectrum_hot_normalized=norm.hot,
        spectrum_cold_normalized=norm.cold,
    )
