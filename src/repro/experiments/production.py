"""Extension experiment: production screening escape/overkill tradeoff.

Simulates a lot of devices whose true NF spreads around a specification
limit (process variation on the opamp's voltage noise), measures each
with the 1-bit BIST and screens with several guard-band settings.  The
tradeoff the guard band buys — fewer escapes for more retests/overkill —
is the production-economics argument behind BIST NF measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analog.opamp import OpAmpNoiseModel
from repro.core.bist import OneBitNoiseFigureBIST
from repro.core.production import (
    PopulationOutcome,
    ProductionNfScreen,
    screen_population,
)
from repro.engine import MeasurementEngine
from repro.errors import ConfigurationError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


def _build_device_bench(true_nf_db: float, n_samples: int):
    """Synthesize one device's testbench for a target true NF."""
    model = OpAmpNoiseModel.from_expected_nf(
        float(true_nf_db), 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
    )
    return build_prototype_testbench(model, n_samples=n_samples)


def measure_device(task, rng) -> float:
    """Sweep worker: one device's BIST measurement (engine-batched).

    ``task`` is ``(true_nf_db, n_samples)``.  Module-level so the
    engine's process backend can pickle it.
    """
    true_nf_db, n_samples = task
    bench = _build_device_bench(true_nf_db, int(n_samples))
    estimator = bench.make_estimator()
    engine = MeasurementEngine()
    return engine.measure(bench, estimator, rng=rng).noise_figure_db


@dataclass(frozen=True)
class GuardbandRow:
    """Screening statistics for one guard-band setting."""

    guardband_sigmas: float
    guardband_db: float
    outcome: PopulationOutcome


@dataclass(frozen=True)
class ProductionResult:
    """The guard-band sweep over one simulated lot."""

    limit_db: float
    measurement_sigma_db: float
    n_devices: int
    true_nf_db: List[float]
    measured_nf_db: List[float]
    rows: List[GuardbandRow]

    def escapes_decrease_with_guardband(self) -> bool:
        """Escapes must not increase as the guard band widens."""
        escapes = [r.outcome.n_escapes for r in self.rows]
        return all(b <= a for a, b in zip(escapes, escapes[1:]))


def run_production(
    limit_db: float = 8.0,
    nf_spread_db: float = 1.5,
    n_devices: int = 24,
    guardband_sigmas: Sequence[float] = (0.0, 1.0, 2.0),
    n_samples: int = 2**17,
    measurement_sigma_db: float = 0.45,
    seed: GeneratorLike = 2005,
    engine: Optional[MeasurementEngine] = None,
    multi_device_batch: Optional[bool] = None,
) -> ProductionResult:
    """Simulate a lot and sweep the guard band.

    Each device's true NF is drawn uniformly from
    ``limit +/- nf_spread`` (a worst-case lot straddling the limit), its
    opamp is synthesized to that NF, and one BIST measurement is taken.
    On the (default) vectorized engine the whole lot runs as **one
    multi-device engine batch**
    (:meth:`~repro.engine.MeasurementEngine.measure_devices`): every
    device's analog chain keeps its own DUT model and reference
    amplitude, records are packed as they are digitized, and all
    ``2 * n_devices`` records share one batched Welch pass.  An engine
    with ``backend="process"`` instead fans whole devices over worker
    processes (``map_sweep``) — device acquisition dominates the
    screen, so per-device workers beat a serial-acquire batch on
    multi-core hosts.  ``multi_device_batch`` overrides the choice
    explicitly; the per-device generators make every path produce
    identical measurements.
    """
    if n_devices < 4:
        raise ConfigurationError(f"need >= 4 devices, got {n_devices}")
    if nf_spread_db <= 0:
        raise ConfigurationError(f"spread must be > 0, got {nf_spread_db}")
    eng = engine if engine is not None else MeasurementEngine()
    if multi_device_batch is None:
        multi_device_batch = eng.backend != "process"
    gen = make_rng(seed)
    draw_rng, *device_rngs = spawn_rngs(gen, n_devices + 1)
    true_values = draw_rng.uniform(
        limit_db - nf_spread_db, limit_db + nf_spread_db, size=n_devices
    )

    if multi_device_batch:
        benches = [
            _build_device_bench(float(true_nf), int(n_samples))
            for true_nf in true_values
        ]
        estimators = [bench.make_estimator() for bench in benches]
        results = eng.measure_devices(benches, estimators, rngs=device_rngs)
        measured_values = [r.noise_figure_db for r in results]
        estimator: Optional[OneBitNoiseFigureBIST] = estimators[-1]
    else:
        tasks = [(float(true_nf), int(n_samples)) for true_nf in true_values]
        measured_values = eng.map_sweep(measure_device, tasks, rngs=device_rngs)
        # The screen needs a configured estimator; rebuild the last
        # device's (matching what the serial loop left behind).
        estimator = _build_device_bench(
            float(true_values[-1]), int(n_samples)
        ).make_estimator()

    rows = []
    for sigmas in guardband_sigmas:
        screen = ProductionNfScreen(
            estimator,
            limit_db=limit_db,
            measurement_sigma_db=measurement_sigma_db,
            guardband_sigmas=float(sigmas),
        )
        outcome = screen_population(screen, true_values, measured_values)
        rows.append(
            GuardbandRow(
                guardband_sigmas=float(sigmas),
                guardband_db=screen.guardband_db,
                outcome=outcome,
            )
        )
    return ProductionResult(
        limit_db=limit_db,
        measurement_sigma_db=measurement_sigma_db,
        n_devices=n_devices,
        true_nf_db=[float(v) for v in true_values],
        measured_nf_db=measured_values,
        rows=rows,
    )
