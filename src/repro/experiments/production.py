"""Extension experiment: production screening escape/overkill tradeoff.

Simulates a lot of devices whose true NF spreads around a specification
limit (process variation on the opamp's voltage noise), measures each
with the 1-bit BIST and screens with several guard-band settings.  The
tradeoff the guard band buys — fewer escapes for more retests/overkill —
is the production-economics argument behind BIST NF measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analog.opamp import OpAmpNoiseModel
from repro.core.bist import OneBitNoiseFigureBIST
from repro.core.production import (
    PopulationOutcome,
    ProductionNfScreen,
    screen_population,
)
from repro.errors import ConfigurationError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


@dataclass(frozen=True)
class GuardbandRow:
    """Screening statistics for one guard-band setting."""

    guardband_sigmas: float
    guardband_db: float
    outcome: PopulationOutcome


@dataclass(frozen=True)
class ProductionResult:
    """The guard-band sweep over one simulated lot."""

    limit_db: float
    measurement_sigma_db: float
    n_devices: int
    true_nf_db: List[float]
    measured_nf_db: List[float]
    rows: List[GuardbandRow]

    def escapes_decrease_with_guardband(self) -> bool:
        """Escapes must not increase as the guard band widens."""
        escapes = [r.outcome.n_escapes for r in self.rows]
        return all(b <= a for a, b in zip(escapes, escapes[1:]))


def run_production(
    limit_db: float = 8.0,
    nf_spread_db: float = 1.5,
    n_devices: int = 24,
    guardband_sigmas: Sequence[float] = (0.0, 1.0, 2.0),
    n_samples: int = 2**17,
    measurement_sigma_db: float = 0.45,
    seed: GeneratorLike = 2005,
) -> ProductionResult:
    """Simulate a lot and sweep the guard band.

    Each device's true NF is drawn uniformly from
    ``limit +/- nf_spread`` (a worst-case lot straddling the limit), its
    opamp is synthesized to that NF, and one BIST measurement is taken.
    """
    if n_devices < 4:
        raise ConfigurationError(f"need >= 4 devices, got {n_devices}")
    if nf_spread_db <= 0:
        raise ConfigurationError(f"spread must be > 0, got {nf_spread_db}")
    gen = make_rng(seed)
    draw_rng, *device_rngs = spawn_rngs(gen, n_devices + 1)
    true_values = draw_rng.uniform(
        limit_db - nf_spread_db, limit_db + nf_spread_db, size=n_devices
    )

    measured_values = []
    estimator: Optional[OneBitNoiseFigureBIST] = None
    for true_nf, device_rng in zip(true_values, device_rngs):
        model = OpAmpNoiseModel.from_expected_nf(
            float(true_nf), 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
        )
        bench = build_prototype_testbench(model, n_samples=n_samples)
        estimator = bench.make_estimator()
        result = estimator.measure(bench.acquire_bitstream, rng=device_rng)
        measured_values.append(result.noise_figure_db)

    rows = []
    for sigmas in guardband_sigmas:
        screen = ProductionNfScreen(
            estimator,
            limit_db=limit_db,
            measurement_sigma_db=measurement_sigma_db,
            guardband_sigmas=float(sigmas),
        )
        outcome = screen_population(screen, true_values, measured_values)
        rows.append(
            GuardbandRow(
                guardband_sigmas=float(sigmas),
                guardband_db=screen.guardband_db,
                outcome=outcome,
            )
        )
    return ProductionResult(
        limit_db=limit_db,
        measurement_sigma_db=measurement_sigma_db,
        n_devices=n_devices,
        true_nf_db=[float(v) for v in true_values],
        measured_nf_db=measured_values,
        rows=rows,
    )
