"""Extension experiment: production screening escape/overkill tradeoff.

Simulates a lot of devices whose true NF spreads around a specification
limit (process variation on the opamp's voltage noise), measures each
with the 1-bit BIST and screens with several guard-band settings.  The
tradeoff the guard band buys — fewer escapes for more retests/overkill —
is the production-economics argument behind BIST NF measurement.

The lot runs through the measurement scheduler
(:class:`~repro.engine.MeasurementScheduler`): devices are planned into
compatible sub-batches, so a *mixed-configuration* lot (per-device
record lengths and/or FFT sizes) still executes as one planned run with
results bit-identical to measuring every device on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.analog.opamp import OpAmpNoiseModel
from repro.core.bist import OneBitNoiseFigureBIST
from repro.core.production import (
    PopulationOutcome,
    ProductionNfScreen,
    Verdict,
    screen_population,
)
from repro.engine import MeasurementEngine, MeasurementTask
from repro.engine.scheduler import (
    MeasurementScheduler,
    RunReport,
    as_scheduler,
)
from repro.errors import ConfigurationError, ExecutionError, MeasurementError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.store.keys import SCHEMA_VERSION, digest, seed_fingerprint


def _build_device_bench(true_nf_db: float, n_samples: int):
    """Synthesize one device's testbench for a target true NF."""
    model = OpAmpNoiseModel.from_expected_nf(
        float(true_nf_db), 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
    )
    return build_prototype_testbench(model, n_samples=n_samples)


def measure_device(task, rng) -> float:
    """Sweep worker: one device's BIST measurement (engine-batched).

    ``task`` is ``(true_nf_db, n_samples, nperseg)``.  Module-level so
    the engine's process backend can pickle it.
    """
    true_nf_db, n_samples, nperseg = task
    bench = _build_device_bench(true_nf_db, int(n_samples))
    estimator = bench.make_estimator(nperseg=int(nperseg))
    engine = MeasurementEngine()
    return engine.measure(bench, estimator, rng=rng).noise_figure_db


def _per_device(value, n_devices: int, name: str) -> List[int]:
    """Broadcast a scalar setting, or validate a per-device sequence."""
    if np.isscalar(value):
        return [int(value)] * n_devices
    values = [int(v) for v in value]
    if len(values) != n_devices:
        raise ConfigurationError(
            f"got {n_devices} devices but {len(values)} {name} values"
        )
    return values


def _draw_lot(
    limit_db: float,
    nf_spread_db: float,
    n_devices: int,
    seed: GeneratorLike,
):
    """The lot's true NFs and per-device generators (the screen's RNG
    discipline, shared with the retest path so both reproduce the same
    lot from one seed)."""
    gen = make_rng(seed)
    draw_rng, *device_rngs = spawn_rngs(gen, n_devices + 1)
    true_values = draw_rng.uniform(
        limit_db - nf_spread_db, limit_db + nf_spread_db, size=n_devices
    )
    return true_values, device_rngs


def _lot_tasks(true_values, samples_by_device, nperseg_by_device, device_rngs):
    """One planned measurement task per device of the lot."""
    benches = [
        _build_device_bench(float(true_nf), device_samples)
        for true_nf, device_samples in zip(true_values, samples_by_device)
    ]
    estimators = [
        bench.make_estimator(nperseg=device_nperseg)
        for bench, device_nperseg in zip(benches, nperseg_by_device)
    ]
    return [
        MeasurementTask(bench, estimator, rng)
        for bench, estimator, rng in zip(benches, estimators, device_rngs)
    ]


def production_lot_key(
    limit_db: float,
    nf_spread_db: float,
    n_devices: int,
    samples_by_device,
    nperseg_by_device,
    measurement_sigma_db: float,
    seed: GeneratorLike,
    rng_mode: str,
) -> Optional[str]:
    """Content address of one production lot's screen outcome.

    Covers everything that determines the lot and its measurements
    (``None`` for unrepeatable seeds): the retest flow uses it to find
    a prior outcome in the store without re-running the screen.
    """
    seed_fp = seed_fingerprint(seed)
    if seed_fp is None:
        return None
    return digest(
        {
            "schema": SCHEMA_VERSION,
            "kind": "production_lot",
            "limit_db": float(limit_db),
            "nf_spread_db": float(nf_spread_db),
            "n_devices": int(n_devices),
            "n_samples": [int(v) for v in samples_by_device],
            "nperseg": [int(v) for v in nperseg_by_device],
            "measurement_sigma_db": float(measurement_sigma_db),
            "seed": seed_fp,
            "rng_mode": str(rng_mode),
        }
    )


@dataclass(frozen=True)
class GuardbandRow:
    """Screening statistics for one guard-band setting."""

    guardband_sigmas: float
    guardband_db: float
    outcome: PopulationOutcome


@dataclass(frozen=True)
class ProductionResult:
    """The guard-band sweep over one simulated lot."""

    limit_db: float
    measurement_sigma_db: float
    n_devices: int
    true_nf_db: List[float]
    measured_nf_db: List[float]
    rows: List[GuardbandRow]
    n_plan_groups: int = 1
    #: Execution telemetry of the screen (attempts / retries / injected
    #: faults / per-group wall-clock); only populated by
    #: ``run_production(report=True)``.
    run_report: Optional[RunReport] = None

    def escapes_decrease_with_guardband(self) -> bool:
        """Escapes must not increase as the guard band widens."""
        escapes = [r.outcome.n_escapes for r in self.rows]
        return all(b <= a for a, b in zip(escapes, escapes[1:]))


def run_production(
    limit_db: float = 8.0,
    nf_spread_db: float = 1.5,
    n_devices: int = 24,
    guardband_sigmas: Sequence[float] = (0.0, 1.0, 2.0),
    n_samples: Union[int, Sequence[int]] = 2**17,
    measurement_sigma_db: float = 0.45,
    seed: GeneratorLike = 2005,
    engine: Optional[MeasurementEngine] = None,
    multi_device_batch: Optional[bool] = None,
    nperseg: Union[int, Sequence[int]] = 8192,
    scheduler: Optional[MeasurementScheduler] = None,
    resume: bool = False,
    report: bool = False,
    max_group_devices: Optional[int] = None,
    checkpoint=None,
) -> ProductionResult:
    """Simulate a lot and sweep the guard band.

    Each device's true NF is drawn uniformly from
    ``limit +/- nf_spread`` (a worst-case lot straddling the limit), its
    opamp is synthesized to that NF, and one BIST measurement is taken.
    ``n_samples`` and ``nperseg`` may be per-device sequences — a
    mixed-configuration lot — in which case the scheduler's planner
    groups compatible devices into sub-batches and runs each group as
    one multi-device engine batch, falling back to per-device
    measurement only for singletons.  A homogeneous lot is one planned
    batch (one digitize pass, one batched Welch pass).

    An engine with ``backend="process"`` and a homogeneous lot instead
    fans whole devices over its persistent worker pool (``map_sweep``)
    — device acquisition dominates the screen, so per-device workers
    beat a serial-acquire batch on multi-core hosts.
    ``multi_device_batch`` overrides the choice explicitly; the
    per-device generators make every path produce identical
    measurements.

    A store-backed scheduler persists every device's measurement plus
    the lot's outcome manifest (keyed by :func:`production_lot_key`) as
    the screen advances; ``resume=True`` replays an interrupted screen
    measuring only the devices the store is missing (results identical
    to a cold run).

    ``report=True`` runs the screen through the planner's telemetry
    path and attaches the :class:`~repro.engine.scheduler.RunReport`
    (attempts, retries, injected-fault counts, per-group wall-clock) to
    the result — the chaos harness's view of a screen.  A production
    outcome needs every device measured, so a screen that dead-letters
    a device past all recovery raises :class:`~repro.errors.
    ExecutionError` instead of screening a partial lot.

    ``max_group_devices`` splits the lot's planned sub-batches to at
    most that many devices each, and ``checkpoint`` (an
    ``on_group_end(group_index, n_groups)`` callable) fires after each
    sub-batch commits — together they are the measurement service's
    drain/preemption points: a checkpoint that raises aborts the rest
    of the screen with every finished sub-batch already persisted, and
    a later ``resume=True`` pass measures only what is missing.  Both
    force the planned path; results stay bit-identical to an unchunked
    screen (each device carries its own generator).
    """
    if n_devices < 4:
        raise ConfigurationError(f"need >= 4 devices, got {n_devices}")
    if nf_spread_db <= 0:
        raise ConfigurationError(f"spread must be > 0, got {nf_spread_db}")
    chunked = max_group_devices is not None or checkpoint is not None
    if (report or chunked) and multi_device_batch is False:
        raise ConfigurationError(
            "report=True, max_group_devices and checkpoint need the "
            "planned path; they cannot combine with "
            "multi_device_batch=False"
        )
    sched = as_scheduler(engine=engine, scheduler=scheduler)
    eng = sched.engine
    samples_by_device = _per_device(n_samples, n_devices, "n_samples")
    nperseg_by_device = _per_device(nperseg, n_devices, "nperseg")
    homogeneous = (
        len(set(samples_by_device)) == 1 and len(set(nperseg_by_device)) == 1
    )
    if multi_device_batch is None:
        # Resuming and persistence need per-device provenance keys,
        # which only the planned path computes — map_sweep workers
        # rebuild benches inside the worker, out of the key's reach.
        # A write-capable store therefore forces the planned path (its
        # results publish worker-direct on the process backend anyway).
        multi_device_batch = (
            report
            or resume
            or chunked
            or eng.cache_writes
            or not (eng.backend == "process" and homogeneous)
        )
    # Key the lot before drawing it: drawing spawns children off a
    # generator seed, and the key must address the pre-draw lineage
    # (the one the retest flow can recompute).  The manifest write
    # follows the engine's cache mode — a read-only ("frozen") store
    # is never written.
    lot_key = None
    if eng.cache_writes:
        lot_key = production_lot_key(
            limit_db, nf_spread_db, n_devices, samples_by_device,
            nperseg_by_device, measurement_sigma_db, seed, eng.rng_mode,
        )
    true_values, device_rngs = _draw_lot(
        limit_db, nf_spread_db, n_devices, seed
    )

    n_plan_groups = 1
    screen_report: Optional[RunReport] = None
    if multi_device_batch:
        tasks = _lot_tasks(
            true_values, samples_by_device, nperseg_by_device, device_rngs
        )
        plan = sched.plan(tasks, max_group_size=max_group_devices)
        n_plan_groups = plan.n_groups
        if report:
            screen_report = plan.run_report(
                eng, resume=resume, on_group_end=checkpoint
            )
            results = screen_report.results
            missing = [i for i, r in enumerate(results) if r is None]
            if missing:
                raise ExecutionError(
                    f"screen left {len(missing)} device(s) unmeasured "
                    f"(indices {missing}); dead letters: "
                    f"{[f.describe() for f in screen_report.dead]}"
                )
        else:
            results = plan.run(eng, resume=resume, on_group_end=checkpoint)
        measured_values = [r.noise_figure_db for r in results]
        estimator: Optional[OneBitNoiseFigureBIST] = tasks[-1].estimator
    else:
        tasks = [
            (float(true_nf), device_samples, device_nperseg)
            for true_nf, device_samples, device_nperseg in zip(
                true_values, samples_by_device, nperseg_by_device
            )
        ]
        measured_values = sched.map_sweep(
            measure_device, tasks, rngs=device_rngs
        )
        # The screen needs a configured estimator; rebuild the last
        # device's (matching what the serial loop left behind).
        estimator = _build_device_bench(
            float(true_values[-1]), samples_by_device[-1]
        ).make_estimator(nperseg=nperseg_by_device[-1])

    if lot_key is not None:
        sched.store.put_outcome(
            lot_key,
            {
                "kind": "production_lot",
                "limit_db": float(limit_db),
                "measurement_sigma_db": float(measurement_sigma_db),
                "n_devices": int(n_devices),
                "true_nf_db": [float(v) for v in true_values],
                "measured_nf_db": [float(v) for v in measured_values],
            },
        )

    rows = []
    for sigmas in guardband_sigmas:
        screen = ProductionNfScreen(
            estimator,
            limit_db=limit_db,
            measurement_sigma_db=measurement_sigma_db,
            guardband_sigmas=float(sigmas),
        )
        outcome = screen_population(screen, true_values, measured_values)
        rows.append(
            GuardbandRow(
                guardband_sigmas=float(sigmas),
                guardband_db=screen.guardband_db,
                outcome=outcome,
            )
        )
    return ProductionResult(
        limit_db=limit_db,
        measurement_sigma_db=measurement_sigma_db,
        n_devices=n_devices,
        true_nf_db=[float(v) for v in true_values],
        measured_nf_db=measured_values,
        rows=rows,
        n_plan_groups=n_plan_groups,
        run_report=screen_report,
    )


@dataclass(frozen=True)
class RetestResult:
    """The end-to-end screen -> persist -> replan-failures loop.

    ``merged_nf_db`` holds the lot's final measurements: the initial
    screen's value for devices whose verdict stood, the retest
    measurement for every failed / guard-band device.  ``rows`` sweeps
    the guard band over the merged lot, exactly as
    :class:`ProductionResult` does over the initial one.
    """

    limit_db: float
    measurement_sigma_db: float
    retest_guardband_sigmas: float
    n_devices: int
    true_nf_db: List[float]
    initial_nf_db: List[float]
    retest_indices: List[int]
    merged_nf_db: List[float]
    rows: List[GuardbandRow]
    initial_from_store: bool

    @property
    def n_retested(self) -> int:
        """Devices the replan actually re-measured."""
        return len(self.retest_indices)


def retest_rngs_for(seed: GeneratorLike, n_devices: int):
    """The deterministic retest generators of a lot.

    Children of the lot seed *beyond* the ones the initial screen
    consumed (draw + one per device), so retest measurements are
    independent of the first pass yet reproducible from the same seed —
    which is what lets a merged retest outcome be compared against a
    full re-screen using the same streams.
    """
    children = spawn_rngs(make_rng(seed), 1 + 2 * n_devices)
    return children[1 + n_devices :]


def run_production_retest(
    limit_db: float = 8.0,
    nf_spread_db: float = 1.5,
    n_devices: int = 24,
    guardband_sigmas: Sequence[float] = (0.0, 1.0, 2.0),
    retest_guardband_sigmas: float = 2.0,
    n_samples: Union[int, Sequence[int]] = 2**17,
    measurement_sigma_db: float = 0.45,
    seed: GeneratorLike = 2005,
    retest_seed: Optional[GeneratorLike] = None,
    nperseg: Union[int, Sequence[int]] = 8192,
    engine: Optional[MeasurementEngine] = None,
    scheduler: Optional[MeasurementScheduler] = None,
    resume: bool = False,
) -> RetestResult:
    """Screen a lot, persist it, and re-measure only its failures.

    The production loop the store exists for:

    1. *Screen.*  The lot's prior outcome is looked up in the
       scheduler's store under :func:`production_lot_key`; on a miss
       the initial screen runs now (persisting per-device results and
       the outcome manifest as it goes).
    2. *Replan.*  Devices whose measurement lands above the
       guard-banded limit (``retest_guardband_sigmas``) — the FAIL and
       RETEST bins — are re-planned through
       :func:`~repro.engine.scheduler.plan_retest` with fresh,
       deterministic retest generators (:func:`retest_rngs_for`, or
       ``retest_seed``); every other device is *not acquired again*.
    3. *Merge.*  Retest measurements replace the initial ones; the
       guard-band sweep reruns over the merged lot.

    The merged outcome equals a full re-screen in which retested
    devices use their retest generators and every other device its
    original one — asserted in the integration tests — while measuring
    only the failed / guard-band fraction of the lot.

    ``seed`` must be a repeatable integer: the retest flow draws the
    lot twice (once to address the store, once inside the screen), so
    a stateful generator — whose lineage the first draw would consume
    — cannot reproduce the same lot and is rejected outright.
    """
    if not isinstance(seed, (int, np.integer)):
        raise ConfigurationError(
            "run_production_retest needs a repeatable integer seed "
            f"(got {type(seed).__name__}); generators are consumed by "
            "the first lot draw and cannot re-address the same lot"
        )
    sched = as_scheduler(engine=engine, scheduler=scheduler)
    eng = sched.engine
    samples_by_device = _per_device(n_samples, n_devices, "n_samples")
    nperseg_by_device = _per_device(nperseg, n_devices, "nperseg")
    # Trusting a stored outcome is a cache *read*; a write-only engine
    # re-screens and only records.
    lot_key = (
        production_lot_key(
            limit_db, nf_spread_db, n_devices, samples_by_device,
            nperseg_by_device, measurement_sigma_db, seed, eng.rng_mode,
        )
        if sched.store is not None
        else None
    )
    prior = (
        sched.store.get_outcome(lot_key)
        if lot_key is not None and eng.cache_reads
        else None
    )

    true_values, device_rngs = _draw_lot(
        limit_db, nf_spread_db, n_devices, seed
    )
    if prior is not None:
        stored_true = [float(v) for v in prior["true_nf_db"]]
        if stored_true != [float(v) for v in true_values]:
            raise MeasurementError(
                "stored production outcome does not reproduce from this "
                "seed (store written by different parameters?)"
            )
        initial_values = [float(v) for v in prior["measured_nf_db"]]
    else:
        initial = run_production(
            limit_db=limit_db,
            nf_spread_db=nf_spread_db,
            n_devices=n_devices,
            guardband_sigmas=guardband_sigmas,
            n_samples=n_samples,
            measurement_sigma_db=measurement_sigma_db,
            seed=seed,
            nperseg=nperseg,
            scheduler=sched,
            multi_device_batch=True,
            resume=resume,
        )
        initial_values = list(initial.measured_nf_db)

    tasks = _lot_tasks(
        true_values, samples_by_device, nperseg_by_device, device_rngs
    )
    screen = ProductionNfScreen(
        tasks[-1].estimator,
        limit_db=limit_db,
        measurement_sigma_db=measurement_sigma_db,
        guardband_sigmas=float(retest_guardband_sigmas),
    )
    verdicts = [screen.classify(float(v)) for v in initial_values]
    retest_indices = [
        i
        for i, v in enumerate(verdicts)
        if v in (Verdict.FAIL, Verdict.RETEST)
    ]
    if retest_seed is not None:
        retest_rngs = spawn_rngs(make_rng(retest_seed), n_devices)
    else:
        retest_rngs = retest_rngs_for(seed, n_devices)
    retested = sched.run_retest(tasks, verdicts, retest_rngs=retest_rngs)

    merged = [
        float(initial_values[i])
        if retested[i] is None
        else float(retested[i].noise_figure_db)
        for i in range(n_devices)
    ]
    rows = []
    for sigmas in guardband_sigmas:
        merged_screen = ProductionNfScreen(
            tasks[-1].estimator,
            limit_db=limit_db,
            measurement_sigma_db=measurement_sigma_db,
            guardband_sigmas=float(sigmas),
        )
        rows.append(
            GuardbandRow(
                guardband_sigmas=float(sigmas),
                guardband_db=merged_screen.guardband_db,
                outcome=screen_population(merged_screen, true_values, merged),
            )
        )
    return RetestResult(
        limit_db=limit_db,
        measurement_sigma_db=measurement_sigma_db,
        retest_guardband_sigmas=float(retest_guardband_sigmas),
        n_devices=n_devices,
        true_nf_db=[float(v) for v in true_values],
        initial_nf_db=[float(v) for v in initial_values],
        retest_indices=retest_indices,
        merged_nf_db=merged,
        rows=rows,
        initial_from_store=prior is not None,
    )
