"""Extension experiment: production screening escape/overkill tradeoff.

Simulates a lot of devices whose true NF spreads around a specification
limit (process variation on the opamp's voltage noise), measures each
with the 1-bit BIST and screens with several guard-band settings.  The
tradeoff the guard band buys — fewer escapes for more retests/overkill —
is the production-economics argument behind BIST NF measurement.

The lot runs through the measurement scheduler
(:class:`~repro.engine.MeasurementScheduler`): devices are planned into
compatible sub-batches, so a *mixed-configuration* lot (per-device
record lengths and/or FFT sizes) still executes as one planned run with
results bit-identical to measuring every device on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.analog.opamp import OpAmpNoiseModel
from repro.core.bist import OneBitNoiseFigureBIST
from repro.core.production import (
    PopulationOutcome,
    ProductionNfScreen,
    screen_population,
)
from repro.engine import MeasurementEngine, MeasurementTask
from repro.engine.scheduler import MeasurementScheduler, as_scheduler
from repro.errors import ConfigurationError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


def _build_device_bench(true_nf_db: float, n_samples: int):
    """Synthesize one device's testbench for a target true NF."""
    model = OpAmpNoiseModel.from_expected_nf(
        float(true_nf_db), 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
    )
    return build_prototype_testbench(model, n_samples=n_samples)


def measure_device(task, rng) -> float:
    """Sweep worker: one device's BIST measurement (engine-batched).

    ``task`` is ``(true_nf_db, n_samples, nperseg)``.  Module-level so
    the engine's process backend can pickle it.
    """
    true_nf_db, n_samples, nperseg = task
    bench = _build_device_bench(true_nf_db, int(n_samples))
    estimator = bench.make_estimator(nperseg=int(nperseg))
    engine = MeasurementEngine()
    return engine.measure(bench, estimator, rng=rng).noise_figure_db


def _per_device(value, n_devices: int, name: str) -> List[int]:
    """Broadcast a scalar setting, or validate a per-device sequence."""
    if np.isscalar(value):
        return [int(value)] * n_devices
    values = [int(v) for v in value]
    if len(values) != n_devices:
        raise ConfigurationError(
            f"got {n_devices} devices but {len(values)} {name} values"
        )
    return values


@dataclass(frozen=True)
class GuardbandRow:
    """Screening statistics for one guard-band setting."""

    guardband_sigmas: float
    guardband_db: float
    outcome: PopulationOutcome


@dataclass(frozen=True)
class ProductionResult:
    """The guard-band sweep over one simulated lot."""

    limit_db: float
    measurement_sigma_db: float
    n_devices: int
    true_nf_db: List[float]
    measured_nf_db: List[float]
    rows: List[GuardbandRow]
    n_plan_groups: int = 1

    def escapes_decrease_with_guardband(self) -> bool:
        """Escapes must not increase as the guard band widens."""
        escapes = [r.outcome.n_escapes for r in self.rows]
        return all(b <= a for a, b in zip(escapes, escapes[1:]))


def run_production(
    limit_db: float = 8.0,
    nf_spread_db: float = 1.5,
    n_devices: int = 24,
    guardband_sigmas: Sequence[float] = (0.0, 1.0, 2.0),
    n_samples: Union[int, Sequence[int]] = 2**17,
    measurement_sigma_db: float = 0.45,
    seed: GeneratorLike = 2005,
    engine: Optional[MeasurementEngine] = None,
    multi_device_batch: Optional[bool] = None,
    nperseg: Union[int, Sequence[int]] = 8192,
    scheduler: Optional[MeasurementScheduler] = None,
) -> ProductionResult:
    """Simulate a lot and sweep the guard band.

    Each device's true NF is drawn uniformly from
    ``limit +/- nf_spread`` (a worst-case lot straddling the limit), its
    opamp is synthesized to that NF, and one BIST measurement is taken.
    ``n_samples`` and ``nperseg`` may be per-device sequences — a
    mixed-configuration lot — in which case the scheduler's planner
    groups compatible devices into sub-batches and runs each group as
    one multi-device engine batch, falling back to per-device
    measurement only for singletons.  A homogeneous lot is one planned
    batch (one digitize pass, one batched Welch pass).

    An engine with ``backend="process"`` and a homogeneous lot instead
    fans whole devices over its persistent worker pool (``map_sweep``)
    — device acquisition dominates the screen, so per-device workers
    beat a serial-acquire batch on multi-core hosts.
    ``multi_device_batch`` overrides the choice explicitly; the
    per-device generators make every path produce identical
    measurements.
    """
    if n_devices < 4:
        raise ConfigurationError(f"need >= 4 devices, got {n_devices}")
    if nf_spread_db <= 0:
        raise ConfigurationError(f"spread must be > 0, got {nf_spread_db}")
    sched = as_scheduler(engine=engine, scheduler=scheduler)
    eng = sched.engine
    samples_by_device = _per_device(n_samples, n_devices, "n_samples")
    nperseg_by_device = _per_device(nperseg, n_devices, "nperseg")
    homogeneous = (
        len(set(samples_by_device)) == 1 and len(set(nperseg_by_device)) == 1
    )
    if multi_device_batch is None:
        multi_device_batch = not (eng.backend == "process" and homogeneous)
    gen = make_rng(seed)
    draw_rng, *device_rngs = spawn_rngs(gen, n_devices + 1)
    true_values = draw_rng.uniform(
        limit_db - nf_spread_db, limit_db + nf_spread_db, size=n_devices
    )

    n_plan_groups = 1
    if multi_device_batch:
        benches = [
            _build_device_bench(float(true_nf), device_samples)
            for true_nf, device_samples in zip(true_values, samples_by_device)
        ]
        estimators = [
            bench.make_estimator(nperseg=device_nperseg)
            for bench, device_nperseg in zip(benches, nperseg_by_device)
        ]
        plan = sched.plan(
            [
                MeasurementTask(bench, estimator, rng)
                for bench, estimator, rng in zip(
                    benches, estimators, device_rngs
                )
            ]
        )
        n_plan_groups = plan.n_groups
        results = plan.run(eng)
        measured_values = [r.noise_figure_db for r in results]
        estimator: Optional[OneBitNoiseFigureBIST] = estimators[-1]
    else:
        tasks = [
            (float(true_nf), device_samples, device_nperseg)
            for true_nf, device_samples, device_nperseg in zip(
                true_values, samples_by_device, nperseg_by_device
            )
        ]
        measured_values = sched.map_sweep(
            measure_device, tasks, rngs=device_rngs
        )
        # The screen needs a configured estimator; rebuild the last
        # device's (matching what the serial loop left behind).
        estimator = _build_device_bench(
            float(true_values[-1]), samples_by_device[-1]
        ).make_estimator(nperseg=nperseg_by_device[-1])

    rows = []
    for sigmas in guardband_sigmas:
        screen = ProductionNfScreen(
            estimator,
            limit_db=limit_db,
            measurement_sigma_db=measurement_sigma_db,
            guardband_sigmas=float(sigmas),
        )
        outcome = screen_population(screen, true_values, measured_values)
        rows.append(
            GuardbandRow(
                guardband_sigmas=float(sigmas),
                guardband_db=screen.guardband_db,
                outcome=outcome,
            )
        )
    return ProductionResult(
        limit_db=limit_db,
        measurement_sigma_db=measurement_sigma_db,
        n_devices=n_devices,
        true_nf_db=[float(v) for v in true_values],
        measured_nf_db=measured_values,
        rows=rows,
        n_plan_groups=n_plan_groups,
    )
