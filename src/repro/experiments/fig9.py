"""Figure 9: PSD floors before/after normalization (zoom at 60 Hz).

Before normalization the two bitstream floors almost coincide (the paper:
"noise levels were very close before the normalization procedure"); after
scaling each spectrum to unit reference-line power the floors separate by
the true power ratio.  We quantify both states' floor densities in a zoom
band around the reference and the implied ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


@dataclass(frozen=True)
class Fig9Result:
    """Floor densities around the reference, before and after."""

    zoom_band_hz: Tuple[float, float]
    floor_before_hot: float
    floor_before_cold: float
    floor_after_hot: float
    floor_after_cold: float
    true_power_ratio: float

    @property
    def ratio_before(self) -> float:
        """Hot/cold floor ratio before normalization (~1)."""
        return self.floor_before_hot / self.floor_before_cold

    @property
    def ratio_after(self) -> float:
        """Hot/cold floor ratio after normalization (~true ratio)."""
        return self.floor_after_hot / self.floor_after_cold


def run_fig9(
    config: Optional[MatlabSimConfig] = None,
    zoom_halfwidth_hz: float = 40.0,
    seed: GeneratorLike = 2005,
) -> Fig9Result:
    """Regenerate the figure-9 zoom comparison."""
    sim = MatlabSimulation(config)
    gen = make_rng(seed)
    rng_hot, rng_cold = spawn_rngs(gen, 2)
    estimator = sim.make_estimator()
    normalizer = estimator.normalizer

    spec_hot = estimator.spectrum_of(sim.bitstream("hot", rng_hot))
    spec_cold = estimator.spectrum_of(sim.bitstream("cold", rng_cold))
    norm = normalizer.normalize_pair(spec_hot, spec_cold)

    f_ref = sim.config.reference_frequency_hz
    zoom = (max(spec_hot.df, f_ref - zoom_halfwidth_hz), f_ref + zoom_halfwidth_hz)
    zones_hot = normalizer.exclusion_zones(spec_hot, norm.line_frequency_hot_hz)
    zones_cold = normalizer.exclusion_zones(spec_cold, norm.line_frequency_cold_hz)

    return Fig9Result(
        zoom_band_hz=zoom,
        floor_before_hot=spec_hot.band_mean_density(*zoom, exclude=zones_hot),
        floor_before_cold=spec_cold.band_mean_density(*zoom, exclude=zones_cold),
        floor_after_hot=norm.hot.band_mean_density(*zoom, exclude=zones_hot),
        floor_after_cold=norm.cold.band_mean_density(*zoom, exclude=zones_cold),
        true_power_ratio=sim.true_power_ratio,
    )
