"""Ablation: Van Vleck arcsine correction vs the paper's linear use.

The paper relies on the arcsine law being "approximately linear for small
values of the input argument" and never inverts it.  This ablation runs
the Y estimation both ways — Welch PSD of the raw bitstream (linear
assumption) and Blackman-Tukey PSD of the Van Vleck-inverted
autocorrelation — across reference amplitudes, showing where the linear
shortcut starts to cost accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.digitizer.arcsine import corrected_psd
from repro.errors import MeasurementError
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs

DEFAULT_RATIOS = (0.15, 0.30, 0.50, 0.70)


@dataclass(frozen=True)
class VanVleckPoint:
    """Linear vs corrected estimation at one reference amplitude."""

    reference_ratio: float
    error_linear_pct: Optional[float]
    error_corrected_pct: Optional[float]


@dataclass(frozen=True)
class VanVleckResult:
    """The ablation sweep."""

    points: List[VanVleckPoint]
    true_power_ratio: float


def run_vanvleck(
    ratios=DEFAULT_RATIOS,
    config: Optional[MatlabSimConfig] = None,
    max_lag: int = 2048,
    seed: GeneratorLike = 2005,
) -> VanVleckResult:
    """Compare linear and Van Vleck-corrected Y estimates."""
    base = config if config is not None else MatlabSimConfig(
        n_samples=250_000, nperseg=5000
    )
    gen = make_rng(seed)
    rngs = spawn_rngs(gen, len(tuple(ratios)))
    true_ratio = MatlabSimulation(base).true_power_ratio

    points = []
    for ratio, rng in zip(ratios, rngs):
        sim = MatlabSimulation(replace(base, reference_ratio=ratio))
        estimator = sim.make_estimator()
        rng_hot, rng_cold = spawn_rngs(rng, 2)
        bits_hot = sim.bitstream("hot", rng_hot)
        bits_cold = sim.bitstream("cold", rng_cold)

        def error_of(y: float) -> float:
            return 100.0 * (y - true_ratio) / true_ratio

        try:
            linear = estimator.estimate_from_bitstreams(bits_hot, bits_cold)
            err_linear = error_of(linear.y)
        except MeasurementError:
            err_linear = None
        try:
            spec_hot = corrected_psd(bits_hot, max_lag)
            spec_cold = corrected_psd(bits_cold, max_lag)
            corrected = estimator.estimate_from_spectra(spec_hot, spec_cold)
            err_corrected = error_of(corrected.y)
        except MeasurementError:
            err_corrected = None
        points.append(
            VanVleckPoint(
                reference_ratio=ratio,
                error_linear_pct=err_linear,
                error_corrected_pct=err_corrected,
            )
        )
    return VanVleckResult(points=points, true_power_ratio=true_ratio)
