"""Extension experiment: spot NF vs frequency for a 1/f-dominated DUT.

One hot/cold acquisition pair yields NF in every octave band; the
analytical model (same densities, integrated per band) provides the
expected curve.  A flicker-heavy opamp makes the low-frequency bands
read several dB higher — the shape both paths must agree on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analog.amplifier import NonInvertingAmplifier
from repro.analog.noise_analysis import expected_noise_figure_db, noise_budget
from repro.analog.opamp import OpAmpNoiseModel
from repro.constants import T0_KELVIN
from repro.core.spot_nf import SpotNoiseFigureSweep, octave_bands
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs

#: A flicker-heavy device: 3 kHz 1/f corner puts several dB of NF slope
#: inside the measurement span.
FLICKER_OPAMP = OpAmpNoiseModel(
    name="flicker",
    en_v_per_rthz=8e-9,
    in_a_per_rthz=0.0,
    en_corner_hz=3000.0,
    gbw_hz=8e6,
)


@dataclass(frozen=True)
class SpotNfRow:
    """Measured vs expected NF in one octave band.

    ``measured_nf_db`` comes from the raw bitstream PSD (the paper's
    linear-approximation path); ``corrected_nf_db`` from the Van
    Vleck-inverted Blackman-Tukey PSD.  When hot and cold spectral
    *shapes* differ (flicker-heavy DUT, white-dominated hot source) the
    limiter's third-order distortion no longer cancels between states
    and the linear path biases; the correction removes that bias.
    """

    f_low_hz: float
    f_high_hz: float
    expected_nf_db: float
    measured_nf_db: float
    error_db: float
    corrected_nf_db: float
    corrected_error_db: float


@dataclass(frozen=True)
class SpotNfExperimentResult:
    """The full NF(f) comparison."""

    rows: List[SpotNfRow]

    @property
    def slope_db(self) -> float:
        """Measured NF drop from the lowest to the highest band."""
        return self.rows[0].measured_nf_db - self.rows[-1].measured_nf_db

    @property
    def expected_slope_db(self) -> float:
        """Analytical NF drop across the same bands."""
        return self.rows[0].expected_nf_db - self.rows[-1].expected_nf_db

    @property
    def max_abs_error_db(self) -> float:
        """Worst per-band |measured - expected| (linear path)."""
        return max(abs(r.error_db) for r in self.rows)

    @property
    def max_abs_corrected_error_db(self) -> float:
        """Worst per-band error of the Van Vleck-corrected path."""
        return max(abs(r.corrected_error_db) for r in self.rows)


def run_spot_nf(
    opamp: Optional[OpAmpNoiseModel] = None,
    f_start_hz: float = 125.0,
    n_bands: int = 4,
    n_samples: int = 2**19,
    seed: GeneratorLike = 2005,
) -> SpotNfExperimentResult:
    """Measure NF per octave band and compare against the analysis.

    The hot temperature is chosen from the *worst* (lowest) band so the
    Y factor stays usable everywhere: with a fixed-ENR source a
    high-flicker band would collapse Y toward 1 (see EXPERIMENTS.md).
    """
    model = opamp if opamp is not None else FLICKER_OPAMP
    probe = NonInvertingAmplifier(model, 10_000.0, 100.0, 600.0)
    worst_te = (
        noise_budget(probe, f_start_hz, 2.0 * f_start_hz).noise_factor - 1.0
    ) * T0_KELVIN
    t_hot = max(2900.0, 2.0 * (T0_KELVIN + worst_te) - worst_te)
    # A hotter source widens the hot/cold level gap; size the reference
    # from the cold RMS such that the *hot* state stays inside the
    # 10-40 % window of figure 10.
    bench = build_prototype_testbench(
        model, t_hot_k=t_hot, n_samples=n_samples, reference_ratio=0.35
    )
    bands = octave_bands(f_start_hz, n_bands, bench.sample_rate_hz / 2.0)

    estimator = bench.make_estimator()
    sweep = SpotNoiseFigureSweep(estimator, bands)
    gen = make_rng(seed)
    rng_hot, rng_cold = spawn_rngs(gen, 2)
    bits_hot = bench.acquire_bitstream("hot", rng_hot)
    bits_cold = bench.acquire_bitstream("cold", rng_cold)
    linear = sweep.estimate(bits_hot, bits_cold)

    # Van Vleck-corrected path (Blackman-Tukey on the inverted
    # autocorrelation); max_lag keeps the reference on-bin:
    # df = fs / (2*max_lag) = 4 Hz for fs = 32768 Hz.
    from repro.core.definitions import YFactorResult
    from repro.digitizer.arcsine import corrected_psd

    max_lag = int(bench.sample_rate_hz / (2.0 * estimator.config.bin_spacing_hz))
    spec_hot = corrected_psd(bits_hot, max_lag)
    spec_cold = corrected_psd(bits_cold, max_lag)
    norm = estimator.normalizer.normalize_pair(spec_hot, spec_cold)

    rows = []
    for point in linear.points:
        expected = expected_noise_figure_db(
            bench.dut, point.f_low_hz, point.f_high_hz
        )
        p_hot, p_cold = estimator.normalizer.normalized_band_powers(
            norm, point.f_low_hz, point.f_high_hz
        )
        corrected = YFactorResult.from_y(
            p_hot / p_cold, estimator.t_hot_k, estimator.t_cold_k
        ).noise_figure_db
        rows.append(
            SpotNfRow(
                f_low_hz=point.f_low_hz,
                f_high_hz=point.f_high_hz,
                expected_nf_db=expected,
                measured_nf_db=point.noise_figure_db,
                error_db=point.noise_figure_db - expected,
                corrected_nf_db=corrected,
                corrected_error_db=corrected - expected,
            )
        )
    return SpotNfExperimentResult(rows=rows)
