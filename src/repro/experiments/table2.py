"""Table 2: noise power ratio by three methods (Th=10000 K, Tc=1000 K).

The paper compares:

1. ratio of mean-square values (time domain, full analog access);
2. ratio of PSD band powers (full analog access);
3. ratio of PSD band powers from the 1-bit digitizer, reference excluded
   and spectra normalized on the reference line.

and derives F / NF from each ratio via eq 9.  The paper reports about
2.5 % power-ratio error for the 1-bit method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.definitions import f_to_nf, noise_factor_from_y
from repro.dsp.power import mean_square
from repro.dsp.psd import welch
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


@dataclass(frozen=True)
class Table2Row:
    """One method's outcome."""

    method: str
    power_ratio: float
    noise_factor: float
    nf_db: float
    ratio_error_pct: float


@dataclass(frozen=True)
class Table2Result:
    """All three methods plus the exact reference values."""

    rows: List[Table2Row]
    true_power_ratio: float
    true_nf_db: float

    def row(self, method: str) -> Table2Row:
        """Look up a row by method name."""
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(method)


def _make_row(method: str, y: float, sim: MatlabSimulation) -> Table2Row:
    c = sim.config
    factor = noise_factor_from_y(y, c.t_hot_k, c.t_cold_k, c.t0_k)
    return Table2Row(
        method=method,
        power_ratio=y,
        noise_factor=factor,
        nf_db=f_to_nf(factor),
        ratio_error_pct=100.0 * (y - sim.true_power_ratio) / sim.true_power_ratio,
    )


def run_table2(
    config: Optional[MatlabSimConfig] = None,
    seed: GeneratorLike = 2005,
) -> Table2Result:
    """Regenerate Table 2.

    The same hot/cold noise realizations feed all three methods, exactly
    as the paper's single simulation did.
    """
    sim = MatlabSimulation(config)
    gen = make_rng(seed)
    rng_hot, rng_cold, rng_dig_hot, rng_dig_cold = spawn_rngs(gen, 4)

    noise_hot = sim.render_noise("hot", rng_hot)
    noise_cold = sim.render_noise("cold", rng_cold)
    reference = sim.reference_waveform()

    # Method 1: time-domain mean-square ratio.
    y_ms = mean_square(noise_hot) / mean_square(noise_cold)

    # Method 2: analog PSD band-power ratio.
    c = sim.config
    spec_hot = welch(noise_hot, nperseg=c.nperseg)
    spec_cold = welch(noise_cold, nperseg=c.nperseg)
    f_low, f_high = c.noise_band_hz
    y_psd = spec_hot.band_power(f_low, f_high) / spec_cold.band_power(f_low, f_high)

    # Method 3: 1-bit PSD ratio, reference excluded, spectra normalized.
    from repro.digitizer.digitizer import OneBitDigitizer

    digitizer = OneBitDigitizer()
    bits_hot = digitizer.digitize(noise_hot, reference, rng_dig_hot)
    bits_cold = digitizer.digitize(noise_cold, reference, rng_dig_cold)
    estimator = sim.make_estimator()
    onebit = estimator.estimate_from_bitstreams(bits_hot, bits_cold)

    rows = [
        _make_row("mean_square_ratio", y_ms, sim),
        _make_row("psd_ratio", y_psd, sim),
        _make_row("onebit_psd_ratio_excluding_reference", onebit.y, sim),
    ]
    true_f = noise_factor_from_y(
        sim.true_power_ratio, c.t_hot_k, c.t_cold_k, c.t0_k
    )
    return Table2Result(
        rows=rows,
        true_power_ratio=sim.true_power_ratio,
        true_nf_db=f_to_nf(true_f),
    )
