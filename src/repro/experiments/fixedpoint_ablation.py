"""Ablation: fixed-point SoC DSP word lengths vs the float pipeline.

Runs the same pair of captured bitstreams through the floating-point
Welch estimator and through fixed-point variants at several word-length
settings, reporting the NF deviation each one introduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analog.opamp import OpAmpNoiseModel
from repro.errors import ConfigurationError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.soc.fixedpoint import FixedPointSpec, fixed_point_welch

DEFAULT_SPECS = (
    (16, 32),
    (12, 32),
    (8, 24),
    (16, 16),
)


@dataclass(frozen=True)
class FixedPointPoint:
    """NF deviation for one word-length configuration."""

    window_bits: int
    accumulator_bits: int
    nf_db: float
    deviation_db: float


@dataclass(frozen=True)
class FixedPointResult:
    """Float reference plus all fixed-point variants."""

    float_nf_db: float
    expected_nf_db: float
    points: List[FixedPointPoint]

    def worst_deviation_db(self) -> float:
        """Largest |NF deviation| across configurations."""
        return max(abs(p.deviation_db) for p in self.points)


def run_fixedpoint(
    specs: Sequence[Tuple[int, int]] = DEFAULT_SPECS,
    target_nf_db: float = 6.0,
    n_samples: int = 2**18,
    seed: GeneratorLike = 2005,
) -> FixedPointResult:
    """Compare fixed-point DSP variants on one captured bitstream pair."""
    specs = list(specs)
    if not specs:
        raise ConfigurationError("need at least one word-length spec")

    model = OpAmpNoiseModel.from_expected_nf(
        target_nf_db, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
        name=f"fixedpoint_nf{target_nf_db:g}",
    )
    bench = build_prototype_testbench(model, n_samples=n_samples)
    estimator = bench.make_estimator()
    gen = make_rng(seed)
    rng_hot, rng_cold = spawn_rngs(gen, 2)
    bits_hot = bench.acquire_bitstream("hot", rng_hot)
    bits_cold = bench.acquire_bitstream("cold", rng_cold)

    float_result = estimator.estimate_from_bitstreams(bits_hot, bits_cold)

    points = []
    for window_bits, acc_bits in specs:
        spec = FixedPointSpec(window_bits=window_bits, accumulator_bits=acc_bits)
        spec_hot = fixed_point_welch(bits_hot, estimator.config.nperseg, spec)
        spec_cold = fixed_point_welch(bits_cold, estimator.config.nperseg, spec)
        result = estimator.estimate_from_spectra(spec_hot, spec_cold)
        points.append(
            FixedPointPoint(
                window_bits=window_bits,
                accumulator_bits=acc_bits,
                nf_db=result.noise_figure_db,
                deviation_db=result.noise_figure_db - float_result.noise_figure_db,
            )
        )
    return FixedPointResult(
        float_nf_db=float_result.noise_figure_db,
        expected_nf_db=bench.expected_nf_db(500.0, 1500.0),
        points=points,
    )
