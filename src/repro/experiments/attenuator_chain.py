"""Figure-4 consistency check: programmable-attenuator hot levels.

The paper's Y-factor setup derives its hot levels from one noise
generator behind a programmable attenuator.  Measuring the *same* DUT at
several attenuator settings must return the same noise figure — each
setting changes Th, and the estimator is told the corresponding
calibrated value.  Any spread across settings exposes calibration-
transfer errors (the practical worry behind section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analog.components import Attenuator
from repro.analog.opamp import OpAmpNoiseModel
from repro.constants import T0_KELVIN
from repro.errors import ConfigurationError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs

DEFAULT_LOSSES_DB = (0.0, 3.0, 6.0, 10.0)

#: The generator's excess temperature before attenuation (~10000 K total
#: at the 0 dB setting, ENR ~15 dB).  Chosen so a single reference
#: amplitude keeps BOTH states inside figure 10's 10-40 % window across
#: the full attenuation range: the hot/cold RMS span at 0 dB is ~3x and
#: the window spans 4x.
GENERATOR_EXCESS_K = 10000.0 - T0_KELVIN


@dataclass(frozen=True)
class AttenuatorRow:
    """Measurement at one attenuator setting."""

    loss_db: float
    t_hot_k: float
    enr_db: float
    measured_nf_db: float
    error_db: float


@dataclass(frozen=True)
class AttenuatorChainResult:
    """NF consistency across attenuator settings."""

    expected_nf_db: float
    rows: List[AttenuatorRow]

    @property
    def spread_db(self) -> float:
        """Max minus min measured NF across settings."""
        values = [r.measured_nf_db for r in self.rows]
        return max(values) - min(values)

    @property
    def max_abs_error_db(self) -> float:
        """Worst deviation from the analytical expectation."""
        return max(abs(r.error_db) for r in self.rows)


def run_attenuator_chain(
    losses_db: Sequence[float] = DEFAULT_LOSSES_DB,
    target_nf_db: float = 6.0,
    n_samples: int = 2**18,
    seed: GeneratorLike = 2005,
) -> AttenuatorChainResult:
    """Measure one DUT at several attenuator settings.

    Each setting scales the generator's excess temperature by the
    attenuator's power factor (ambient passes unchanged for a matched
    pad at ambient temperature); the estimator is calibrated with the
    resulting hot temperature.
    """
    losses = [float(x) for x in losses_db]
    if not losses:
        raise ConfigurationError("need at least one attenuator setting")
    model = OpAmpNoiseModel.from_expected_nf(
        target_nf_db, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
        name=f"attchain_nf{target_nf_db:g}",
    )
    gen = make_rng(seed)
    rngs = spawn_rngs(gen, len(losses))

    rows = []
    expected = None
    for loss_db, rng in zip(losses, rngs):
        attenuator = Attenuator(loss_db)
        t_excess = attenuator.attenuate_temperature(GENERATOR_EXCESS_K)
        t_hot = T0_KELVIN + t_excess
        bench = build_prototype_testbench(
            model, t_hot_k=t_hot, n_samples=n_samples, reference_ratio=0.35
        )
        if expected is None:
            expected = bench.expected_nf_db(500.0, 1500.0)
        estimator = bench.make_estimator()
        result = estimator.measure(bench.acquire_bitstream, rng=rng)
        rows.append(
            AttenuatorRow(
                loss_db=loss_db,
                t_hot_k=t_hot,
                enr_db=10 * np.log10(t_excess / T0_KELVIN),
                measured_nf_db=result.noise_figure_db,
                error_db=result.noise_figure_db - expected,
            )
        )
    return AttenuatorChainResult(expected_nf_db=expected, rows=rows)
