"""The "low cost" claim: SoC resources of the 1-bit BIST vs a full ADC.

Runs a complete measurement through the :mod:`repro.soc` controller and
reports memory (bit-packed 1-bit captures vs 12-bit ADC words), DSP
cycles, and total test time; this quantifies sections 1/4/7 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.bist import BISTResult
from repro.instruments.testbench import PrototypeTestbench, build_prototype_testbench
from repro.signals.random import GeneratorLike
from repro.soc.bist_controller import BISTController, ResourceReport
from repro.soc.memory import SampleMemory
from repro.soc.processor import DSPProcessor


@dataclass(frozen=True)
class ResourcesResult:
    """Resource accounting of one full measurement."""

    result: BISTResult
    report: ResourceReport
    adc_memory_bytes_12bit: int
    adc_memory_bytes_8bit: int
    streaming_memory_bytes: int

    @property
    def onebit_memory_bytes(self) -> int:
        """Packed 1-bit capture memory (both states)."""
        return self.report.memory_bytes_peak

    @property
    def memory_saving_vs_12bit(self) -> float:
        """ADC-to-BIST memory ratio (12x for 12-bit words)."""
        return self.adc_memory_bytes_12bit / self.onebit_memory_bytes

    @property
    def streaming_saving_vs_capture(self) -> float:
        """Full-capture to streaming-mode memory ratio."""
        return self.onebit_memory_bytes / self.streaming_memory_bytes


def run_resources(
    bench: Optional[PrototypeTestbench] = None,
    opamp: str = "OP27",
    n_samples: int = 2**18,
    memory_capacity_bytes: int = 512 * 1024,
    clock_hz: float = 100e6,
    seed: GeneratorLike = 2005,
) -> ResourcesResult:
    """Measure once through the SoC controller and account resources."""
    if bench is None:
        bench = build_prototype_testbench(opamp, n_samples=n_samples)
    estimator = bench.make_estimator()
    controller = BISTController(
        estimator,
        SampleMemory(memory_capacity_bytes),
        DSPProcessor(clock_hz=clock_hz),
    )
    outcome = controller.run(bench.acquire_bitstream, rng=seed)
    from repro.soc.streaming import StreamingWelch

    # Packed accumulator: the reported working set is the real
    # bit-packed staging buffer, not a 1-bit estimate over a float one.
    streaming = StreamingWelch(
        estimator.config.nperseg,
        estimator.config.sample_rate_hz,
        packed=True,
    )
    return ResourcesResult(
        result=outcome.result,
        report=outcome.resources,
        adc_memory_bytes_12bit=controller.adc_alternative_memory_bytes(12),
        adc_memory_bytes_8bit=controller.adc_alternative_memory_bytes(8),
        streaming_memory_bytes=streaming.memory_bytes(),
    )
