"""Figure 7: noise + reference waveforms for hot and cold temperatures.

The figure shows the two digitizer input pairs; the reproducible content
is the waveform statistics (noise RMS per state, constant reference
amplitude, hot/cold RMS ratio) plus a short segment of each composite
waveform for display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


@dataclass(frozen=True)
class Fig7State:
    """Statistics of one state's digitizer input."""

    state: str
    noise_rms: float
    noise_rms_expected: float
    reference_amplitude: float
    composite_rms: float
    crest_factor: float
    segment: np.ndarray


@dataclass(frozen=True)
class Fig7Result:
    """Both states plus the constancy checks the method relies on."""

    hot: Fig7State
    cold: Fig7State
    segment_sample_rate_hz: float

    @property
    def rms_ratio_squared(self) -> float:
        """Measured hot/cold noise power ratio (should be ~3.49)."""
        return (self.hot.noise_rms / self.cold.noise_rms) ** 2

    @property
    def reference_is_constant(self) -> bool:
        """The reference amplitude must not change between states."""
        return self.hot.reference_amplitude == self.cold.reference_amplitude


def run_fig7(
    config: Optional[MatlabSimConfig] = None,
    segment_samples: int = 500,
    seed: GeneratorLike = 2005,
) -> Fig7Result:
    """Regenerate the figure-7 waveforms and their statistics."""
    sim = MatlabSimulation(config)
    gen = make_rng(seed)
    rng_hot, rng_cold = spawn_rngs(gen, 2)
    reference = sim.reference_waveform()

    states = {}
    for state, rng in (("hot", rng_hot), ("cold", rng_cold)):
        noise = sim.render_noise(state, rng)
        composite = noise - reference
        n_seg = min(segment_samples, composite.n_samples)
        states[state] = Fig7State(
            state=state,
            noise_rms=noise.rms(),
            noise_rms_expected=sim.noise_rms(state),
            reference_amplitude=sim.reference_amplitude_v,
            composite_rms=composite.rms(),
            crest_factor=composite.crest_factor(),
            segment=composite.samples[:n_seg].copy(),
        )
    return Fig7Result(
        hot=states["hot"],
        cold=states["cold"],
        segment_sample_rate_hz=sim.config.sample_rate_hz,
    )
