"""Table 3: prototype NF for four opamps (expected vs BIST-measured).

The paper measured a non-inverting amplifier (Av=101) built with OP27,
OP07, TL081 and CA3140 at Th=2900 K / Tc=290 K and compared against the
expected values from datasheet noise analysis, observing at most 2 dB of
absolute error.

Two modes (DESIGN.md section 2):

* ``"paper"`` — opamps synthesized so the analytical expected NF matches
  the paper's expected column exactly (3.7 / 6.5 / 10.1 / 16.2 dB); the
  BIST measurement then validates the method the same way the paper does.
* ``"datasheet"`` — the typical-datasheet opamp library; expected values
  differ from the paper (whose circuit-analysis inputs are unpublished)
  but measured must still track expected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analog.amplifier import NonInvertingAmplifier
from repro.analog.noise_analysis import noise_budget
from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.constants import T0_KELVIN
from repro.errors import ConfigurationError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs

#: The paper's Table 3 (opamp, expected NF dB, paper-measured NF dB).
PAPER_TABLE3 = (
    ("OP27", 3.7, 3.69),
    ("OP07", 6.5, 4.841),
    ("TL081", 10.1, 9.698),
    ("CA3140", 16.2, 14.02),
)

_MODES = ("paper", "datasheet")


@dataclass(frozen=True)
class Table3Row:
    """One opamp's outcome."""

    opamp: str
    expected_nf_db: float
    measured_nf_db: float
    error_db: float
    paper_expected_nf_db: float
    paper_measured_nf_db: float


@dataclass(frozen=True)
class Table3Result:
    """All four opamps."""

    mode: str
    rows: List[Table3Row]

    @property
    def max_abs_error_db(self) -> float:
        """Maximum |expected - measured| (the paper quotes 2 dB)."""
        return max(abs(r.error_db) for r in self.rows)


def _hot_temperature_for(model: OpAmpNoiseModel, rs: float) -> float:
    """Pick a hot temperature that keeps the Y factor usable.

    A fixed ENR source loses resolution on high-NF DUTs: with Te >> Th
    the Y factor collapses toward 1 and estimation noise amplifies (this
    is why the paper's own CA3140 row errs by 2.2 dB).  Standard practice
    (HP app note 57-1) is a higher-ENR source; we target Y >= 1.5.
    """
    amp = NonInvertingAmplifier(model, 10_000.0, 100.0, rs)
    te = (noise_budget(amp, 500.0, 1500.0).noise_factor - 1.0) * T0_KELVIN
    needed = 1.5 * (T0_KELVIN + te) - te
    return max(2900.0, float(np.ceil(needed / 100.0) * 100.0))


def _bench_for(
    name: str,
    paper_expected: float,
    mode: str,
    n_samples: int,
    source_resistance_ohm: float,
):
    if mode == "datasheet":
        model = OPAMP_LIBRARY[name]
        return build_prototype_testbench(
            model,
            source_resistance_ohm=source_resistance_ohm,
            t_hot_k=_hot_temperature_for(model, source_resistance_ohm),
            n_samples=n_samples,
        )
    # "paper" mode: synthesize the device from the published expected NF.
    # Rf || Rg of the Av=101 DUT is ~99 ohm.
    model = OpAmpNoiseModel.from_expected_nf(
        paper_expected,
        source_resistance_ohm=source_resistance_ohm,
        feedback_parallel_ohm=99.0,
        gbw_hz=8e6,
        name=f"{name}(paper-calibrated)",
    )
    return build_prototype_testbench(
        model,
        source_resistance_ohm=source_resistance_ohm,
        n_samples=n_samples,
    )


def run_table3(
    mode: str = "paper",
    n_samples: int = 2**19,
    source_resistance_ohm: float = 600.0,
    noise_band_hz: Tuple[float, float] = (500.0, 1500.0),
    seed: GeneratorLike = 2005,
) -> Table3Result:
    """Regenerate Table 3: measure all four opamps with the 1-bit BIST."""
    if mode not in _MODES:
        raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")
    gen = make_rng(seed)
    rngs = spawn_rngs(gen, len(PAPER_TABLE3))

    rows = []
    for (name, paper_expected, paper_measured), rng in zip(PAPER_TABLE3, rngs):
        bench = _bench_for(
            name, paper_expected, mode, n_samples, source_resistance_ohm
        )
        estimator = bench.make_estimator(noise_band_hz=noise_band_hz)
        expected = bench.expected_nf_db(*noise_band_hz)
        result = estimator.measure(bench.acquire_bitstream, rng=rng)
        rows.append(
            Table3Row(
                opamp=name,
                expected_nf_db=expected,
                measured_nf_db=result.noise_figure_db,
                error_db=result.noise_figure_db - expected,
                paper_expected_nf_db=paper_expected,
                paper_measured_nf_db=paper_measured,
            )
        )
    return Table3Result(mode=mode, rows=rows)
