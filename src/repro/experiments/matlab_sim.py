"""The section-5.2 Matlab simulation environment, shared by Table 2 and
figures 7-10.

The paper's simulation applies two Gaussian noise levels (hot/cold source
temperatures seen through a DUT of known noise factor) plus a constant
square-wave reference to the 1-bit digitizer.  The implied DUT has
NF = 10 dB: the reported true power ratio 3.4866 matches
``(Th + Te)/(Tc + Te)`` with ``Te = (F-1)*290 K = 2610 K`` for
Th = 10000 K, Tc = 1000 K.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.bitstream import PackedRecordBatch, RecordProvenance
from repro.constants import T0_KELVIN
from repro.core.bist import BISTMeasurementConfig, OneBitNoiseFigureBIST
from repro.core.definitions import nf_to_f, noise_temperature_from_factor
from repro.digitizer.digitizer import OneBitDigitizer
from repro.errors import ConfigurationError
from repro.signals.batch_rng import (
    BatchNoiseGenerator,
    bernoulli_thresholds_u32,
    gaussian_exceed_probability,
    validate_rng_mode,
    white_noise_matrix,
)
from repro.signals.random import GeneratorLike, make_rng
from repro.signals.sources import GaussianNoiseSource, SquareSource
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class MatlabSimConfig:
    """Parameters of the section-5.2 simulation.

    Defaults reproduce the paper: Th=10000 K, Tc=1000 K, an implied 10 dB
    DUT, 1e6 samples with FFT size 1e4, and a square reference whose
    amplitude is 20 % of the cold noise RMS (inside figure 10's 10-40 %
    window).  The 60 Hz reference frequency comes from figure 9's zoom.
    """

    t_hot_k: float = 10000.0
    t_cold_k: float = 1000.0
    dut_nf_db: float = 10.0
    t0_k: float = T0_KELVIN
    sample_rate_hz: float = 10000.0
    n_samples: int = 1_000_000
    nperseg: int = 10000
    reference_frequency_hz: float = 60.0
    reference_ratio: float = 0.20
    cold_rms_v: float = 0.30
    noise_band_hz: Tuple[float, float] = (100.0, 4500.0)

    def __post_init__(self):
        if self.t_hot_k <= self.t_cold_k:
            raise ConfigurationError(
                f"Th ({self.t_hot_k} K) must exceed Tc ({self.t_cold_k} K)"
            )
        if not 0 < self.reference_ratio < 1:
            raise ConfigurationError(
                f"reference ratio must be in (0, 1), got {self.reference_ratio}"
            )
        if self.cold_rms_v <= 0:
            raise ConfigurationError(
                f"cold RMS must be > 0, got {self.cold_rms_v}"
            )


class MatlabSimulation:
    """Reproduction of the paper's Matlab noise-ratio simulation."""

    def __init__(self, config: Optional[MatlabSimConfig] = None):
        self.config = config if config is not None else MatlabSimConfig()
        factor = nf_to_f(self.config.dut_nf_db)
        self.te_k = noise_temperature_from_factor(factor, self.config.t0_k)
        self._reference: Optional[Waveform] = None
        # Per-(state, digitizer-config) u32 Bernoulli thresholds for the
        # philox direct-synthesis path; one ndtr pass each, then reused
        # across every record and repeat.
        self._bernoulli_cache: dict = {}

    # ------------------------------------------------------------------
    @property
    def true_power_ratio(self) -> float:
        """The exact noise power ratio ``(Th+Te)/(Tc+Te)``.

        3.4931 for the paper's defaults (their simulation measured
        3.4866 on one realization).
        """
        c = self.config
        return (c.t_hot_k + self.te_k) / (c.t_cold_k + self.te_k)

    def noise_rms(self, state: str) -> float:
        """DUT-output noise RMS for a state (cold anchored at cold_rms_v)."""
        c = self.config
        if state == "cold":
            return c.cold_rms_v
        if state == "hot":
            return c.cold_rms_v * float(np.sqrt(self.true_power_ratio))
        raise ConfigurationError(f"state must be 'hot' or 'cold', got {state!r}")

    @property
    def reference_amplitude_v(self) -> float:
        """Square-wave reference amplitude (ratio x cold RMS)."""
        return self.config.reference_ratio * self.config.cold_rms_v

    # ------------------------------------------------------------------
    def render_noise(self, state: str, rng: GeneratorLike = None) -> Waveform:
        """The analog noise record for one state (no reference)."""
        c = self.config
        source = GaussianNoiseSource(self.noise_rms(state))
        return source.render(c.n_samples, c.sample_rate_hz, rng)

    def reference_waveform(self) -> Waveform:
        """The constant-amplitude square reference.

        Deterministic, so it is rendered once and cached (the simulation
        parameters are frozen; re-rendering a 1e6-sample square wave per
        acquisition dominated the seed's serial hot path).
        """
        if self._reference is None:
            c = self.config
            source = SquareSource(
                c.reference_frequency_hz, self.reference_amplitude_v
            )
            self._reference = source.render(c.n_samples, c.sample_rate_hz)
        return self._reference

    def bitstream(
        self,
        state: str,
        rng: GeneratorLike = None,
        digitizer: Optional[OneBitDigitizer] = None,
        packed: bool = False,
    ) -> Waveform:
        """Digitize one state's noise against the shared reference.

        With ``packed`` the record comes back as a
        :class:`~repro.bitstream.PackedBitstream` (1 bit/sample).
        """
        dig = digitizer if digitizer is not None else OneBitDigitizer()
        gen = make_rng(rng)
        noise = self.render_noise(state, gen)
        return dig.digitize(
            noise, self.reference_waveform(), gen, packed=packed
        )

    def _bernoulli_thresholds(self, state: str, dig: OneBitDigitizer):
        """u32 compare thresholds for direct packed-record synthesis.

        The 1-bit decision for white Gaussian noise against the
        deterministic reference is a Bernoulli draw per latched sample
        with ``P(bit=1) = P(Z >= (ref_t - offset) / sigma)``, where
        ``sigma`` folds the comparator's own input noise in
        (independent Gaussians add in quadrature) and a jitter-free
        clock divider simply decimates the reference.  Returns ``None``
        when the digitizer leaves the Bernoulli model (hysteresis makes
        decisions state-dependent, jitter randomizes the sampling
        instants).  Thresholds are cached per (state, digitizer
        configuration) — one CDF pass serves every record and repeat.
        """
        comp, latch = dig.comparator, dig.sampler
        if comp.hysteresis_v != 0.0 or latch.jitter_rms_samples > 0.0:
            return None
        key = (state, comp.offset_v, comp.input_noise_rms, latch.divider)
        cached = self._bernoulli_cache.get(key)
        if cached is None:
            sigma = float(
                np.hypot(self.noise_rms(state), comp.input_noise_rms)
            )
            reference = self.reference_waveform().samples[:: latch.divider]
            p = gaussian_exceed_probability(
                (reference - comp.offset_v) / sigma
            )
            cached = bernoulli_thresholds_u32(p)
            self._bernoulli_cache[key] = cached
        return cached

    def _batch_setup(self, states, rngs, digitizer):
        """Shared per-batch setup: generators, per-state densities and
        the digitizer — one source of truth for every batch path, so
        the packed and float acquisitions cannot drift apart."""
        dig = digitizer if digitizer is not None else OneBitDigitizer()
        states = list(states)
        gens = [make_rng(rng) for rng in rngs]
        if len(states) != len(gens):
            raise ConfigurationError(
                f"got {len(states)} states but {len(gens)} generators"
            )
        rms = {state: self.noise_rms(state) for state in set(states)}
        return states, gens, rms, dig

    def acquire_analog_batch(
        self,
        states,
        rngs,
        digitizer: Optional[OneBitDigitizer] = None,
        rng_mode: str = "compat",
    ):
        """Render the per-record noise stack for a batch of states.

        Returns ``(analog, reference, dig_rngs, sample_rate,
        digitizer)`` — the :class:`~repro.engine.AnalogBatchAcquirer`
        protocol.  Each record draws from its own generator at its own
        state's noise density (the per-record-density form cross-DUT
        batching relies on), and the same generators are handed back
        for the digitizer spawn, exactly as in the scalar
        :meth:`bitstream` path.  ``rng_mode="philox"`` fills the stack
        from per-record counter streams in one 2-D pass (fast mode,
        deterministic but not bit-identical to compat).
        """
        c = self.config
        states, gens, rms, dig = self._batch_setup(states, rngs, digitizer)
        noise = white_noise_matrix(
            gens,
            c.n_samples,
            scale=np.array([rms[state] for state in states]),
            rng_mode=rng_mode,
        )
        return (
            noise,
            self.reference_waveform().samples,
            gens,
            c.sample_rate_hz,
            dig,
        )

    def acquire_bitstreams(
        self,
        states,
        rngs,
        digitizer: Optional[OneBitDigitizer] = None,
        packed: bool = False,
        rng_mode: str = "compat",
    ):
        """Digitize a batch of states as one stacked record batch.

        In compat mode row ``i`` is bit-exact equal to
        ``bitstream(states[i], rngs[i]).samples``.  Returns
        ``(bitstreams, sample_rate)`` — the batch-acquisition protocol
        shared with :class:`~repro.instruments.testbench.
        PrototypeTestbench`.

        With ``packed`` the records come back as a
        :class:`~repro.bitstream.PackedRecordBatch` and the acquisition
        streams record by record: each record's analog noise is drawn,
        digitized to packed words and discarded before the next one, so
        peak float memory is one record — not the batch — no matter how
        many records are stacked.

        ``rng_mode="philox"`` is the fast synthesis mode.  For packed
        acquisition through a digitizer the Bernoulli model covers
        (no hysteresis, no latch jitter — offset, comparator input
        noise and clock division all fold in analytically), the packed
        records are synthesized *directly*: each bit is an iid
        Bernoulli draw with probability ``P(noise >= ref_t)``, pulled
        from one per-record Philox counter stream as a 32-bit uniform
        compare — no Gaussian float is ever materialized, which is
        where the >= 3x record-synthesis speedup of the noise layer
        comes from.  The synthesized records follow exactly the same
        stochastic process as the compat records (white noise against
        a deterministic reference makes the decisions independent
        across samples), up to a ``2**-32`` probability quantization
        per sample; they are deterministic per seed but a different
        realization than compat.  Configurations outside the Bernoulli
        model fall back to counter-based noise fills plus the regular
        digitize path.
        """
        validate_rng_mode(rng_mode)
        c = self.config
        if packed:
            states, gens, rms, dig = self._batch_setup(
                states, rngs, digitizer
            )
            if rng_mode == "philox":
                thresholds = {
                    state: self._bernoulli_thresholds(state, dig)
                    for state in set(states)
                }
                if all(t is not None for t in thresholds.values()):
                    batch_gen = BatchNoiseGenerator(gens)
                    words = batch_gen.packed_bernoulli_words(
                        [thresholds[state] for state in states]
                    )
                    provenance = [
                        RecordProvenance.from_rng(
                            gen, state=state, rng_mode="philox"
                        )
                        for state, gen in zip(states, gens)
                    ]
                    out_rate = c.sample_rate_hz / dig.sampler.divider
                    batch = PackedRecordBatch(
                        words,
                        thresholds[states[0]].size,
                        out_rate,
                        provenance=provenance,
                        validate=False,
                        copy=False,
                    )
                    return batch, out_rate
            reference = self.reference_waveform().samples
            rows = []
            for state, gen in zip(states, gens):
                noise = white_noise_matrix(
                    [gen], c.n_samples, scale=rms[state], rng_mode=rng_mode
                )[0]
                record = dig.digitize_batch(
                    noise[np.newaxis, :],
                    reference,
                    c.sample_rate_hz,
                    [gen],
                    packed=True,
                    rng_mode=rng_mode,
                )
                rows.append(record[0])
            batch = PackedRecordBatch.from_records(rows)
            return batch, c.sample_rate_hz / dig.sampler.divider
        noise, reference, gens, rate, dig = self.acquire_analog_batch(
            states, rngs, digitizer=digitizer, rng_mode=rng_mode
        )
        bits = dig.digitize_batch(
            noise,
            reference,
            rate,
            gens,
            overwrite_input=True,
        )
        return bits, rate / dig.sampler.divider

    # ------------------------------------------------------------------
    def make_config(self) -> BISTMeasurementConfig:
        """Analysis configuration matching the simulation parameters."""
        c = self.config
        return BISTMeasurementConfig(
            sample_rate_hz=c.sample_rate_hz,
            n_samples=c.n_samples,
            nperseg=c.nperseg,
            reference_frequency_hz=c.reference_frequency_hz,
            noise_band_hz=c.noise_band_hz,
            harmonic_kind="odd",
        )

    def make_estimator(self) -> OneBitNoiseFigureBIST:
        """1-bit estimator calibrated with the simulation temperatures."""
        c = self.config
        return OneBitNoiseFigureBIST(
            self.make_config(), t_hot_k=c.t_hot_k, t_cold_k=c.t_cold_k, t0_k=c.t0_k
        )
