"""Section 4.2 / reference [6] analysis: noise-source uncertainty.

The paper argues that "even large errors like 5 % in the hot temperature
can still provide useful measurements ... if an error of +/-0.3 dB is
acceptable (for noise figures of 3 dB and 10 dB)".  This experiment
regenerates that budget analytically and by Monte-Carlo, and additionally
verifies it end-to-end by running the full 1-bit BIST with a biased hot
source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analog.opamp import OpAmpNoiseModel
from repro.core.uncertainty import (
    MonteCarloResult,
    UncertaintyBudget,
    monte_carlo_nf,
    nf_uncertainty_budget,
)
from repro.engine import MeasurementEngine, MeasurementTask
from repro.engine.scheduler import MeasurementScheduler, as_scheduler
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


@dataclass(frozen=True)
class UncertaintyRow:
    """Budget for one nominal NF value."""

    nf_db: float
    y_nominal: float
    sigma_nf_analytic_db: float
    nf_std_montecarlo_db: float
    within_p3db: bool


@dataclass(frozen=True)
class EndToEndBiasRow:
    """Full-pipeline check: BIST with an actually-biased hot source."""

    nf_db_target: float
    hot_level_error: float
    measured_unbiased_db: float
    measured_biased_db: float
    bias_shift_db: float


@dataclass(frozen=True)
class UncertaintyResult:
    """Analytic + Monte-Carlo budgets and end-to-end bias check."""

    rows: List[UncertaintyRow]
    end_to_end: List[EndToEndBiasRow]
    rel_sigma_t_hot: float


def run_uncertainty(
    nf_values_db: Tuple[float, ...] = (3.0, 10.0),
    t_hot_k: float = 2900.0,
    rel_sigma_t_hot: float = 0.05,
    n_trials: int = 20000,
    end_to_end_n_samples: int = 2**18,
    seed: GeneratorLike = 2005,
    engine: Optional[MeasurementEngine] = None,
    scheduler: Optional[MeasurementScheduler] = None,
) -> UncertaintyResult:
    """Regenerate the +/-0.3 dB uncertainty claim."""
    sched = as_scheduler(engine=engine, scheduler=scheduler)
    gen = make_rng(seed)
    mc_rng, e2e_rng = spawn_rngs(gen, 2)

    rows = []
    for nf in nf_values_db:
        budget = nf_uncertainty_budget(
            nf, t_hot_k, rel_sigma_t_hot=rel_sigma_t_hot
        )
        mc = monte_carlo_nf(
            nf,
            t_hot_k,
            rel_sigma_t_hot=rel_sigma_t_hot,
            n_trials=n_trials,
            rng=mc_rng,
        )
        rows.append(
            UncertaintyRow(
                nf_db=nf,
                y_nominal=budget.y_nominal,
                sigma_nf_analytic_db=budget.sigma_nf_db,
                nf_std_montecarlo_db=mc.nf_std_db,
                within_p3db=budget.sigma_nf_db <= 0.3,
            )
        )

    # End-to-end: run the BIST against a hot source that is actually 5 %
    # hotter than its calibration (worst-case deterministic bias).  Both
    # runs share the same rng so the noise realizations are identical and
    # the shift isolates the systematic effect.  All (unbiased, biased)
    # pairs share one analysis configuration, so the planned run
    # executes every check as a single multi-device batch.
    tasks = []
    for i, nf in enumerate(nf_values_db):
        # An integer seed reused for both runs reproduces the same noise
        # realization (a Generator object would advance between calls).
        shared_seed = int(
            spawn_rngs(e2e_rng, len(nf_values_db))[i].integers(2**63)
        )
        model = OpAmpNoiseModel.from_expected_nf(
            nf, source_resistance_ohm=600.0, feedback_parallel_ohm=99.0,
            gbw_hz=8e6, name=f"nf{nf:g}",
        )
        bench_ok = build_prototype_testbench(
            model, t_hot_k=t_hot_k, n_samples=end_to_end_n_samples
        )
        bench_biased = build_prototype_testbench(
            model,
            t_hot_k=t_hot_k,
            n_samples=end_to_end_n_samples,
            hot_level_error=rel_sigma_t_hot,
        )
        tasks += [
            MeasurementTask(bench_ok, bench_ok.make_estimator(), shared_seed),
            MeasurementTask(
                bench_biased, bench_biased.make_estimator(), shared_seed
            ),
        ]
    measured = sched.run(tasks)

    end_to_end = []
    for i, nf in enumerate(nf_values_db):
        measured_ok, measured_biased = measured[2 * i], measured[2 * i + 1]
        end_to_end.append(
            EndToEndBiasRow(
                nf_db_target=nf,
                hot_level_error=rel_sigma_t_hot,
                measured_unbiased_db=measured_ok.noise_figure_db,
                measured_biased_db=measured_biased.noise_figure_db,
                bias_shift_db=(
                    measured_biased.noise_figure_db - measured_ok.noise_figure_db
                ),
            )
        )
    return UncertaintyResult(
        rows=rows, end_to_end=end_to_end, rel_sigma_t_hot=rel_sigma_t_hot
    )
