"""Ablation: BIST robustness against comparator non-idealities.

The paper's BIST cell is a bare comparator; real silicon has offset,
hysteresis and sampling jitter.  This ablation sweeps each non-ideality
(expressed relative to the cold output noise RMS, or in sample periods
for jitter) and reports the NF shift versus an ideal-comparator run on
the same noise realization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analog.opamp import OpAmpNoiseModel
from repro.digitizer.comparator import Comparator
from repro.digitizer.digitizer import OneBitDigitizer
from repro.digitizer.sampler import SampledLatch
from repro.engine import MeasurementEngine, MeasurementTask
from repro.engine.scheduler import MeasurementScheduler, as_scheduler
from repro.errors import ConfigurationError, MeasurementError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


@dataclass(frozen=True)
class RobustnessPoint:
    """NF shift for one non-ideality setting."""

    kind: str
    relative_level: float
    nf_db: Optional[float]
    shift_db: Optional[float]


@dataclass(frozen=True)
class RobustnessResult:
    """All sweeps plus the ideal-comparator baseline."""

    baseline_nf_db: float
    expected_nf_db: float
    points: List[RobustnessPoint]

    def worst_shift_db(self, kind: str) -> float:
        """Largest |NF shift| among successful points of one sweep."""
        shifts = [
            abs(p.shift_db)
            for p in self.points
            if p.kind == kind and p.shift_db is not None
        ]
        if not shifts:
            raise MeasurementError(f"no successful points for {kind!r}")
        return max(shifts)


def _digitizer_for(kind: str, level: float, cold_rms: float) -> OneBitDigitizer:
    if kind == "offset":
        return OneBitDigitizer(comparator=Comparator(offset_v=level * cold_rms))
    if kind == "input_noise":
        return OneBitDigitizer(
            comparator=Comparator(input_noise_rms=level * cold_rms)
        )
    if kind == "hysteresis":
        return OneBitDigitizer(
            comparator=Comparator(hysteresis_v=level * cold_rms)
        )
    if kind == "jitter":
        return OneBitDigitizer(sampler=SampledLatch(1, jitter_rms_samples=level))
    raise ConfigurationError(f"unknown non-ideality kind {kind!r}")


def run_robustness(
    offset_levels: Sequence[float] = (0.05, 0.10, 0.20),
    noise_levels: Sequence[float] = (0.05, 0.10, 0.20),
    hysteresis_levels: Sequence[float] = (0.05, 0.10),
    jitter_levels: Sequence[float] = (0.5, 1.0),
    target_nf_db: float = 6.0,
    n_samples: int = 2**18,
    seed: GeneratorLike = 2005,
    engine: Optional[MeasurementEngine] = None,
    scheduler: Optional[MeasurementScheduler] = None,
    resume: bool = False,
) -> RobustnessResult:
    """Sweep comparator non-idealities; share the seed across settings so
    shifts isolate the systematic effect.

    Every setting's bench differs only in its digitizer, so all of them
    (baseline included) share one analysis configuration and the
    scheduler runs the whole ablation as a single planned multi-device
    batch — each device digitizing with its own non-ideal comparator,
    all records sharing one batched Welch pass.  The shared integer
    seed reproduces the identical noise realization per setting, as the
    serial loop did.
    """
    model = OpAmpNoiseModel.from_expected_nf(
        target_nf_db, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
        name=f"robustness_nf{target_nf_db:g}",
    )
    sched = as_scheduler(engine=engine, scheduler=scheduler)
    shared_seed = int(make_rng(seed).integers(2**63))

    def bench_with(digitizer: Optional[OneBitDigitizer]):
        kwargs = {} if digitizer is None else {"digitizer": digitizer}
        return build_prototype_testbench(model, n_samples=n_samples, **kwargs)

    baseline_bench = build_prototype_testbench(model, n_samples=n_samples)
    expected = baseline_bench.expected_nf_db(500.0, 1500.0)
    cold_rms = baseline_bench.predicted_output_rms("cold")

    sweeps = (
        ("offset", offset_levels),
        ("input_noise", noise_levels),
        ("hysteresis", hysteresis_levels),
        ("jitter", jitter_levels),
    )
    settings = [(kind, float(level)) for kind, levels in sweeps
                for level in levels]
    benches = [bench_with(None)] + [
        bench_with(_digitizer_for(kind, level, cold_rms))
        for kind, level in settings
    ]
    results = sched.run(
        [
            MeasurementTask(bench, bench.make_estimator(), shared_seed)
            for bench in benches
        ],
        allow_failures=True,
        resume=resume,
    )
    if results[0] is None:
        raise MeasurementError("baseline measurement lost its reference line")
    baseline = results[0].noise_figure_db

    points = []
    for (kind, level), result in zip(settings, results[1:]):
        if result is None:
            points.append(RobustnessPoint(kind, level, None, None))
            continue
        nf = result.noise_figure_db
        points.append(RobustnessPoint(kind, level, nf, nf - baseline))
    return RobustnessResult(
        baseline_nf_db=baseline, expected_nf_db=expected, points=points
    )
