"""Ablation: BIST robustness against comparator non-idealities.

The paper's BIST cell is a bare comparator; real silicon has offset,
hysteresis and sampling jitter.  This ablation sweeps each non-ideality
(expressed relative to the cold output noise RMS, or in sample periods
for jitter) and reports the NF shift versus an ideal-comparator run on
the same noise realization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analog.opamp import OpAmpNoiseModel
from repro.digitizer.comparator import Comparator
from repro.digitizer.digitizer import OneBitDigitizer
from repro.digitizer.sampler import SampledLatch
from repro.errors import ConfigurationError, MeasurementError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs


@dataclass(frozen=True)
class RobustnessPoint:
    """NF shift for one non-ideality setting."""

    kind: str
    relative_level: float
    nf_db: Optional[float]
    shift_db: Optional[float]


@dataclass(frozen=True)
class RobustnessResult:
    """All sweeps plus the ideal-comparator baseline."""

    baseline_nf_db: float
    expected_nf_db: float
    points: List[RobustnessPoint]

    def worst_shift_db(self, kind: str) -> float:
        """Largest |NF shift| among successful points of one sweep."""
        shifts = [
            abs(p.shift_db)
            for p in self.points
            if p.kind == kind and p.shift_db is not None
        ]
        if not shifts:
            raise MeasurementError(f"no successful points for {kind!r}")
        return max(shifts)


def _digitizer_for(kind: str, level: float, cold_rms: float) -> OneBitDigitizer:
    if kind == "offset":
        return OneBitDigitizer(comparator=Comparator(offset_v=level * cold_rms))
    if kind == "input_noise":
        return OneBitDigitizer(
            comparator=Comparator(input_noise_rms=level * cold_rms)
        )
    if kind == "hysteresis":
        return OneBitDigitizer(
            comparator=Comparator(hysteresis_v=level * cold_rms)
        )
    if kind == "jitter":
        return OneBitDigitizer(sampler=SampledLatch(1, jitter_rms_samples=level))
    raise ConfigurationError(f"unknown non-ideality kind {kind!r}")


def run_robustness(
    offset_levels: Sequence[float] = (0.05, 0.10, 0.20),
    noise_levels: Sequence[float] = (0.05, 0.10, 0.20),
    hysteresis_levels: Sequence[float] = (0.05, 0.10),
    jitter_levels: Sequence[float] = (0.5, 1.0),
    target_nf_db: float = 6.0,
    n_samples: int = 2**18,
    seed: GeneratorLike = 2005,
) -> RobustnessResult:
    """Sweep comparator non-idealities; share the seed across settings so
    shifts isolate the systematic effect."""
    model = OpAmpNoiseModel.from_expected_nf(
        target_nf_db, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
        name=f"robustness_nf{target_nf_db:g}",
    )
    shared_seed = int(make_rng(seed).integers(2**63))

    def measure_with(digitizer: Optional[OneBitDigitizer]) -> float:
        kwargs = {} if digitizer is None else {"digitizer": digitizer}
        bench = build_prototype_testbench(model, n_samples=n_samples, **kwargs)
        estimator = bench.make_estimator()
        return estimator.measure(
            bench.acquire_bitstream, rng=shared_seed
        ).noise_figure_db

    baseline_bench = build_prototype_testbench(model, n_samples=n_samples)
    expected = baseline_bench.expected_nf_db(500.0, 1500.0)
    cold_rms = baseline_bench.predicted_output_rms("cold")
    baseline = measure_with(None)

    sweeps = (
        ("offset", offset_levels),
        ("input_noise", noise_levels),
        ("hysteresis", hysteresis_levels),
        ("jitter", jitter_levels),
    )
    points = []
    for kind, levels in sweeps:
        for level in levels:
            digitizer = _digitizer_for(kind, float(level), cold_rms)
            try:
                nf = measure_with(digitizer)
            except MeasurementError:
                points.append(RobustnessPoint(kind, float(level), None, None))
                continue
            points.append(
                RobustnessPoint(kind, float(level), nf, nf - baseline)
            )
    return RobustnessResult(
        baseline_nf_db=baseline, expected_nf_db=expected, points=points
    )
