"""Ablation: estimation accuracy vs acquisition record length.

The paper captures 1e6 samples per state.  This ablation quantifies why:
the reference-line power estimate dominates the Y-factor noise, and its
variance falls with the number of Welch segments.  For each record
length, several independent measurements are run and the NF error mean
and standard deviation are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analog.opamp import OpAmpNoiseModel
from repro.engine import MeasurementEngine
from repro.errors import ConfigurationError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs

DEFAULT_LENGTHS = (2**15, 2**16, 2**17, 2**18, 2**19)


@dataclass(frozen=True)
class RecordLengthPoint:
    """Accuracy statistics at one record length."""

    n_samples: int
    n_trials: int
    nf_mean_db: float
    nf_std_db: float
    mean_error_db: float


@dataclass(frozen=True)
class RecordLengthResult:
    """The full ablation sweep."""

    points: List[RecordLengthPoint]
    expected_nf_db: float

    def std_is_decreasing(self) -> bool:
        """Whether the NF scatter shrinks with record length (allowing
        one inversion from finite trial counts)."""
        stds = [p.nf_std_db for p in self.points]
        inversions = sum(1 for a, b in zip(stds, stds[1:]) if b > a)
        return inversions <= 1


def run_record_length(
    lengths: Sequence[int] = DEFAULT_LENGTHS,
    n_trials: int = 6,
    target_nf_db: float = 6.0,
    seed: GeneratorLike = 2005,
    engine: Optional[MeasurementEngine] = None,
) -> RecordLengthResult:
    """Sweep the record length; repeat each point ``n_trials`` times.

    The per-length trials run as one stacked batch through the
    measurement engine (same per-trial generators as the serial loop).
    """
    lengths = [int(n) for n in lengths]
    if not lengths:
        raise ConfigurationError("need at least one record length")
    if n_trials < 2:
        raise ConfigurationError(f"n_trials must be >= 2, got {n_trials}")
    eng = engine if engine is not None else MeasurementEngine()

    model = OpAmpNoiseModel.from_expected_nf(
        target_nf_db, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
        name=f"ablation_nf{target_nf_db:g}",
    )
    gen = make_rng(seed)
    length_rngs = spawn_rngs(gen, len(lengths))

    points = []
    expected = None
    for n_samples, rng in zip(lengths, length_rngs):
        bench = build_prototype_testbench(model, n_samples=n_samples)
        if expected is None:
            expected = bench.expected_nf_db(500.0, 1500.0)
        estimator = bench.make_estimator()
        results = eng.run_batch(bench, estimator, n_trials, rng=rng)
        arr = np.asarray([r.noise_figure_db for r in results])
        points.append(
            RecordLengthPoint(
                n_samples=n_samples,
                n_trials=n_trials,
                nf_mean_db=float(np.mean(arr)),
                nf_std_db=float(np.std(arr, ddof=1)),
                mean_error_db=float(np.mean(arr) - expected),
            )
        )
    return RecordLengthResult(points=points, expected_nf_db=expected)
