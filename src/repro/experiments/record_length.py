"""Ablation: estimation accuracy vs acquisition record length.

The paper captures 1e6 samples per state.  This ablation quantifies why:
the reference-line power estimate dominates the Y-factor noise, and its
variance falls with the number of Welch segments.  For each record
length, several independent measurements are run and the NF error mean
and standard deviation are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analog.opamp import OpAmpNoiseModel
from repro.engine import MeasurementEngine, MeasurementTask
from repro.engine.scheduler import MeasurementScheduler, as_scheduler
from repro.errors import ConfigurationError
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs

DEFAULT_LENGTHS = (2**15, 2**16, 2**17, 2**18, 2**19)


@dataclass(frozen=True)
class RecordLengthPoint:
    """Accuracy statistics at one record length."""

    n_samples: int
    n_trials: int
    nf_mean_db: float
    nf_std_db: float
    mean_error_db: float


@dataclass(frozen=True)
class RecordLengthResult:
    """The full ablation sweep."""

    points: List[RecordLengthPoint]
    expected_nf_db: float

    def std_is_decreasing(self) -> bool:
        """Whether the NF scatter shrinks with record length (allowing
        one inversion from finite trial counts)."""
        stds = [p.nf_std_db for p in self.points]
        inversions = sum(1 for a, b in zip(stds, stds[1:]) if b > a)
        return inversions <= 1


def run_record_length(
    lengths: Sequence[int] = DEFAULT_LENGTHS,
    n_trials: int = 6,
    target_nf_db: float = 6.0,
    seed: GeneratorLike = 2005,
    engine: Optional[MeasurementEngine] = None,
    scheduler: Optional[MeasurementScheduler] = None,
    resume: bool = False,
) -> RecordLengthResult:
    """Sweep the record length; repeat each point ``n_trials`` times.

    The whole ablation — every length, every trial — is one planned
    scheduler run: the planner groups the trials of each record length
    into their own compatible sub-batch (lengths differ, so they cannot
    share one), with the same per-trial generators as the serial loop,
    so the statistics are unchanged.

    On a store-backed scheduler every trial persists as its sub-batch
    completes, and ``resume=True`` replays an interrupted sweep
    measuring only the missing trials (statistics identical to a cold
    run — the store round-trip is bit-exact).
    """
    lengths = [int(n) for n in lengths]
    if not lengths:
        raise ConfigurationError("need at least one record length")
    if n_trials < 2:
        raise ConfigurationError(f"n_trials must be >= 2, got {n_trials}")
    sched = as_scheduler(engine=engine, scheduler=scheduler)

    model = OpAmpNoiseModel.from_expected_nf(
        target_nf_db, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
        name=f"ablation_nf{target_nf_db:g}",
    )
    gen = make_rng(seed)
    length_rngs = spawn_rngs(gen, len(lengths))

    tasks = []
    expected = None
    for n_samples, rng in zip(lengths, length_rngs):
        bench = build_prototype_testbench(model, n_samples=n_samples)
        if expected is None:
            expected = bench.expected_nf_db(500.0, 1500.0)
        estimator = bench.make_estimator()
        # The same trial children run_batch would spawn for this length.
        tasks += [
            MeasurementTask(bench, estimator, child)
            for child in spawn_rngs(make_rng(rng), n_trials)
        ]
    results = sched.run(tasks, resume=resume)

    points = []
    for k, n_samples in enumerate(lengths):
        arr = np.asarray(
            [
                r.noise_figure_db
                for r in results[k * n_trials : (k + 1) * n_trials]
            ]
        )
        points.append(
            RecordLengthPoint(
                n_samples=n_samples,
                n_trials=n_trials,
                nf_mean_db=float(np.mean(arr)),
                nf_std_db=float(np.std(arr, ddof=1)),
                mean_error_db=float(np.mean(arr) - expected),
            )
        )
    return RecordLengthResult(points=points, expected_nf_db=expected)
