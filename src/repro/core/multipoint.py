"""Simultaneous multi-test-point noise-figure measurement.

The paper's abstract motivates the 1-bit digitizer with "simultaneous
evaluation of noise figure in several test points of the analog circuit":
because each digitizer is a single comparator permanently attached to its
test point (no analog multiplexer to the shared ADC), all taps can acquire
during the *same* hot/cold source states.

:class:`MultiPointBIST` coordinates that: one shared reference waveform,
one digitizer per tap, a per-tap estimator (the gain between the source
and each tap differs, but the Y-factor math is gain-free).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.constants import T0_KELVIN
from repro.core.bist import BISTMeasurementConfig, BISTResult, OneBitNoiseFigureBIST
from repro.digitizer.digitizer import OneBitDigitizer
from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class TestPoint:
    """A named analog test point with its own permanently-wired digitizer."""

    # Domain term ("analog test point"), not a pytest test class.
    __test__ = False

    name: str
    digitizer: OneBitDigitizer

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("test point needs a non-empty name")
        if not isinstance(self.digitizer, OneBitDigitizer):
            raise ConfigurationError(
                f"digitizer must be a OneBitDigitizer, got "
                f"{type(self.digitizer).__name__}"
            )


class MultiPointBIST:
    """Simultaneous NF measurement at several test points.

    Parameters
    ----------
    test_points:
        The taps, each with its own digitizer.
    config:
        Shared acquisition/analysis configuration (all taps sample the
        same reference and record length).
    t_hot_k / t_cold_k:
        Calibrated noise-source temperatures.
    """

    def __init__(
        self,
        test_points: Sequence[TestPoint],
        config: BISTMeasurementConfig,
        t_hot_k: float,
        t_cold_k: float = T0_KELVIN,
        t0_k: float = T0_KELVIN,
    ):
        points = list(test_points)
        if not points:
            raise ConfigurationError("need at least one test point")
        names = [p.name for p in points]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate test-point names: {names}")
        self.test_points = points
        self.config = config
        self._estimator = OneBitNoiseFigureBIST(config, t_hot_k, t_cold_k, t0_k)

    @property
    def names(self):
        """Test-point names in declaration order."""
        return [p.name for p in self.test_points]

    # ------------------------------------------------------------------
    def _reference_for(self, reference, name: str) -> Waveform:
        if isinstance(reference, Waveform):
            return reference
        if name not in reference:
            raise ConfigurationError(
                f"no reference waveform provided for test point {name!r}"
            )
        return reference[name]

    def digitize_state(
        self,
        signals: Mapping[str, Waveform],
        reference,
        rng: GeneratorLike = None,
    ) -> Dict[str, Waveform]:
        """Digitize one source state at every tap (simultaneously).

        ``signals`` maps tap name to the analog waveform present at that
        tap during the state.  ``reference`` is either a single waveform
        shared by all taps (one on-chip generator) or a mapping of tap
        name to waveform — per-tap amplitude scaling keeps each cell
        inside figure 10's 10-40 % window when tap noise levels differ.
        The reference(s) must be identical across the hot and cold calls;
        only the constancy matters to the normalization.
        """
        missing = [p.name for p in self.test_points if p.name not in signals]
        if missing:
            raise ConfigurationError(f"missing signals for test points: {missing}")
        gen = make_rng(rng)
        rngs = spawn_rngs(gen, len(self.test_points))
        bitstreams = {}
        for point, child in zip(self.test_points, rngs):
            bitstreams[point.name] = point.digitizer.digitize(
                signals[point.name],
                self._reference_for(reference, point.name),
                child,
            )
        return bitstreams

    def estimate(
        self,
        bits_hot: Mapping[str, Waveform],
        bits_cold: Mapping[str, Waveform],
    ) -> Dict[str, BISTResult]:
        """Estimate NF at every tap from its hot/cold bitstream pair."""
        results = {}
        for point in self.test_points:
            if point.name not in bits_hot or point.name not in bits_cold:
                raise ConfigurationError(
                    f"missing bitstreams for test point {point.name!r}"
                )
            results[point.name] = self._estimator.estimate_from_bitstreams(
                bits_hot[point.name], bits_cold[point.name]
            )
        return results

    def measure(
        self,
        acquire_state: Callable[[str, GeneratorLike], Mapping[str, Waveform]],
        reference,
        rng: GeneratorLike = None,
    ) -> Dict[str, BISTResult]:
        """Full two-state, all-taps measurement.

        ``acquire_state(state, rng)`` returns the per-tap analog waveforms
        for the given source state; both states are digitized against the
        same reference (shared waveform or per-tap mapping) and estimated
        per tap.
        """
        gen = make_rng(rng)
        hot_rng, cold_rng, dig_hot, dig_cold = spawn_rngs(gen, 4)
        hot_signals = acquire_state("hot", hot_rng)
        cold_signals = acquire_state("cold", cold_rng)
        bits_hot = self.digitize_state(hot_signals, reference, dig_hot)
        bits_cold = self.digitize_state(cold_signals, reference, dig_cold)
        return self.estimate(bits_hot, bits_cold)
