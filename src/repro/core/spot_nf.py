"""Spot noise figure vs frequency from one pair of 1-bit acquisitions.

A natural extension of the paper's method: the normalized spectra carry
the *whole* noise spectrum, so one hot/cold acquisition pair yields the
noise figure in any number of sub-bands — NF(f) — at no extra analog or
acquisition cost.  With a 1/f-dominated DUT the low bands read higher NF,
which the analytical model predicts independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.constants import T0_KELVIN
from repro.core.bist import OneBitNoiseFigureBIST
from repro.core.definitions import YFactorResult
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class SpotNfPoint:
    """Noise figure measured in one sub-band."""

    f_low_hz: float
    f_high_hz: float
    y: float
    noise_figure_db: float

    @property
    def f_center_hz(self) -> float:
        """Geometric band center."""
        return float(np.sqrt(self.f_low_hz * self.f_high_hz))


@dataclass(frozen=True)
class SpotNfResult:
    """NF(f) across all requested sub-bands."""

    points: List[SpotNfPoint]

    @property
    def frequencies_hz(self) -> np.ndarray:
        return np.array([p.f_center_hz for p in self.points])

    @property
    def nf_db(self) -> np.ndarray:
        return np.array([p.noise_figure_db for p in self.points])


class SpotNoiseFigureSweep:
    """Per-band NF from a single hot/cold bitstream pair.

    Parameters
    ----------
    estimator:
        A configured :class:`OneBitNoiseFigureBIST`; its reference
        normalization and temperatures are reused, only the noise band is
        swept.
    bands_hz:
        Sub-bands ``(f_low, f_high)``; each must avoid the reference
        frequency's exclusion zones enough to retain bins.
    """

    def __init__(
        self,
        estimator: OneBitNoiseFigureBIST,
        bands_hz: Sequence[Tuple[float, float]],
    ):
        if not isinstance(estimator, OneBitNoiseFigureBIST):
            raise ConfigurationError(
                f"estimator must be OneBitNoiseFigureBIST, got "
                f"{type(estimator).__name__}"
            )
        bands = [(float(a), float(b)) for a, b in bands_hz]
        if not bands:
            raise ConfigurationError("need at least one band")
        nyquist = estimator.config.sample_rate_hz / 2.0
        for f_low, f_high in bands:
            if not 0 < f_low < f_high <= nyquist:
                raise ConfigurationError(
                    f"band ({f_low}, {f_high}) must satisfy "
                    f"0 < f_low < f_high <= {nyquist}"
                )
        self.estimator = estimator
        self.bands_hz = bands

    def estimate(self, bits_hot: Waveform, bits_cold: Waveform) -> SpotNfResult:
        """Run the sweep: one PSD + normalization, many band powers."""
        est = self.estimator
        spec_hot = est.spectrum_of(bits_hot)
        spec_cold = est.spectrum_of(bits_cold)
        norm = est.normalizer.normalize_pair(spec_hot, spec_cold)

        points = []
        for f_low, f_high in self.bands_hz:
            p_hot, p_cold = est.normalizer.normalized_band_powers(
                norm, f_low, f_high
            )
            if p_cold <= 0:
                raise MeasurementError(
                    f"band ({f_low}, {f_high}) has zero cold power"
                )
            y = p_hot / p_cold
            result = YFactorResult.from_y(
                y, est.t_hot_k, est.t_cold_k, est.t0_k
            )
            points.append(
                SpotNfPoint(
                    f_low_hz=f_low,
                    f_high_hz=f_high,
                    y=y,
                    noise_figure_db=result.noise_figure_db,
                )
            )
        return SpotNfResult(points=points)


def octave_bands(
    f_start_hz: float, n_bands: int, nyquist_hz: float
) -> List[Tuple[float, float]]:
    """Build ``n_bands`` octave-spaced sub-bands starting at ``f_start``."""
    if f_start_hz <= 0:
        raise ConfigurationError(f"f_start must be > 0, got {f_start_hz}")
    if n_bands < 1:
        raise ConfigurationError(f"n_bands must be >= 1, got {n_bands}")
    bands = []
    f_low = float(f_start_hz)
    for _ in range(n_bands):
        f_high = 2.0 * f_low
        if f_high > nyquist_hz:
            raise ConfigurationError(
                f"octave band ({f_low}, {f_high}) exceeds Nyquist "
                f"{nyquist_hz} Hz; reduce n_bands"
            )
        bands.append((f_low, f_high))
        f_low = f_high
    return bands
