"""Repeated-measurement averaging for production test flows.

A single two-state acquisition carries a fraction-of-a-dB scatter
dominated by the reference-line estimate (see the record-length
ablation).  Production flows either lengthen the record or repeat the
measurement; this module implements the latter with summary statistics
and a normal-theory confidence interval on the mean NF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.core.bist import BISTResult, OneBitNoiseFigureBIST
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class AveragedResult:
    """Summary of ``n`` repeated NF measurements."""

    nf_values_db: Tuple[float, ...]
    nf_mean_db: float
    nf_std_db: float
    confidence_halfwidth_db: float
    n_failed: int

    @property
    def n_measurements(self) -> int:
        """Number of successful repeats."""
        return len(self.nf_values_db)

    @property
    def confidence_interval_db(self) -> Tuple[float, float]:
        """~95 % confidence interval on the mean NF."""
        return (
            self.nf_mean_db - self.confidence_halfwidth_db,
            self.nf_mean_db + self.confidence_halfwidth_db,
        )


class RepeatedMeasurement:
    """Run an estimator ``n_repeats`` times and aggregate.

    Parameters
    ----------
    estimator:
        Configured :class:`OneBitNoiseFigureBIST`.
    n_repeats:
        Number of independent two-state acquisitions (>= 2).
    allow_failures:
        When True, acquisitions that raise :class:`MeasurementError`
        (e.g. a lost reference line) are counted and skipped instead of
        aborting the flow; at least two repeats must still succeed.
    """

    def __init__(
        self,
        estimator: OneBitNoiseFigureBIST,
        n_repeats: int = 4,
        allow_failures: bool = False,
    ):
        if not isinstance(estimator, OneBitNoiseFigureBIST):
            raise ConfigurationError(
                f"estimator must be OneBitNoiseFigureBIST, got "
                f"{type(estimator).__name__}"
            )
        if n_repeats < 2:
            raise ConfigurationError(f"n_repeats must be >= 2, got {n_repeats}")
        self.estimator = estimator
        self.n_repeats = int(n_repeats)
        self.allow_failures = bool(allow_failures)

    def measure(
        self,
        acquire: Callable[[str, GeneratorLike], Waveform],
        rng: GeneratorLike = None,
    ) -> AveragedResult:
        """Run all repeats serially and summarize."""
        gen = make_rng(rng)
        values: List[float] = []
        n_failed = 0
        for child in spawn_rngs(gen, self.n_repeats):
            try:
                result = self.estimator.measure(acquire, rng=child)
            except MeasurementError:
                if not self.allow_failures:
                    raise
                n_failed += 1
                continue
            values.append(result.noise_figure_db)
        return self._summarize(values, n_failed)

    def measure_batch(
        self,
        source,
        rng: GeneratorLike = None,
        engine=None,
    ) -> AveragedResult:
        """Run all repeats as one stacked batch through the engine.

        ``source`` is a batch acquirer (e.g. a
        :class:`~repro.instruments.testbench.PrototypeTestbench`); the
        engine spawns per-repeat generators exactly like :meth:`measure`,
        so the statistics agree with the serial path to the batched-FFT
        rounding (<= 1e-10 on the PSDs).
        """
        from repro.engine import MeasurementEngine

        eng = engine if engine is not None else MeasurementEngine()
        results = eng.run_batch(
            source,
            self.estimator,
            self.n_repeats,
            rng,
            allow_failures=self.allow_failures,
        )
        values = [r.noise_figure_db for r in results if r is not None]
        n_failed = sum(1 for r in results if r is None)
        return self._summarize(values, n_failed)

    def _summarize(self, values: List[float], n_failed: int) -> AveragedResult:
        if len(values) < 2:
            raise MeasurementError(
                f"only {len(values)} of {self.n_repeats} repeats succeeded; "
                "cannot form statistics"
            )
        arr = np.asarray(values)
        std = float(np.std(arr, ddof=1))
        halfwidth = 1.96 * std / np.sqrt(arr.size)
        return AveragedResult(
            nf_values_db=tuple(float(v) for v in arr),
            nf_mean_db=float(np.mean(arr)),
            nf_std_db=std,
            confidence_halfwidth_db=float(halfwidth),
            n_failed=n_failed,
        )
