"""Reference-line spectrum normalization (paper section 5.2).

The 1-bit digitizer destroys absolute power information: the bitstream is
always +/-1, so its total power is 1 regardless of the analog noise level.
The paper's trick is to add a *constant-amplitude* reference waveform at
the comparator input.  Through the limiter a small line of amplitude ``A``
in noise of std ``sigma`` keeps amplitude ``sqrt(2/pi)*A/sigma`` — so the
reference line measures ``1/sigma`` of each acquisition.  Dividing each
bitstream PSD by its own reference-line power rescales both acquisitions
to a common absolute scale, after which the ratio of noise band powers is
the Y factor.

The reference line (and its harmonics, which a square reference and
limiter distortion both produce) must be excluded from the noise band —
the paper's Table 2 shows the error dropping to ~2.5 % once the reference
is excluded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError, MeasurementError

_HARMONIC_KINDS = ("odd", "all", "none")


@dataclass(frozen=True)
class NormalizationResult:
    """Outcome of normalizing a hot/cold spectrum pair on the reference line.

    The normalized spectra are scaled such that each has unit reference
    line power; their band powers are then directly comparable.
    """

    hot: Spectrum
    cold: Spectrum
    line_frequency_hot_hz: float
    line_frequency_cold_hz: float
    line_power_hot: float
    line_power_cold: float
    scale_hot: float
    scale_cold: float

    @property
    def line_power_ratio(self) -> float:
        """Cold/hot reference line power ratio (equals the amplitude-
        calibration correction the paper applies in figure 9)."""
        return self.line_power_cold / self.line_power_hot


class ReferenceNormalizer:
    """Locates, measures and excludes the reference line in PSDs.

    Parameters
    ----------
    reference_frequency_hz:
        Nominal reference frequency (the generator setting, e.g. 3 kHz).
    search_halfwidth_hz:
        Peak-search window around the nominal frequency — a low-quality
        generator may be off-frequency; the normalization tracks the main
        component (paper section 6).
    integration_halfwidth_hz:
        Half-width of the line-power integration around the located peak;
        default is the spectrum's window ENBW.
    harmonic_kind:
        Which harmonics to exclude from noise bands: ``"odd"`` (square
        reference), ``"all"`` (conservative, also covers limiter
        intermodulation) or ``"none"``.
    exclusion_halfwidth_hz:
        Half-width of each exclusion zone; default is
        ``3 * integration`` half-width (or 3 bins if unset).
    subtract_floor:
        Subtract the local noise floor from the line-power estimate
        (recommended; the hot-state line is weak relative to the floor).
    """

    def __init__(
        self,
        reference_frequency_hz: float,
        search_halfwidth_hz: float,
        integration_halfwidth_hz: Optional[float] = None,
        harmonic_kind: str = "odd",
        exclusion_halfwidth_hz: Optional[float] = None,
        subtract_floor: bool = True,
    ):
        if reference_frequency_hz <= 0:
            raise ConfigurationError(
                f"reference frequency must be > 0 Hz, got {reference_frequency_hz}"
            )
        if search_halfwidth_hz <= 0:
            raise ConfigurationError(
                f"search halfwidth must be > 0 Hz, got {search_halfwidth_hz}"
            )
        if search_halfwidth_hz >= reference_frequency_hz:
            raise ConfigurationError(
                "search halfwidth must be below the reference frequency "
                f"(got {search_halfwidth_hz} vs {reference_frequency_hz} Hz)"
            )
        if harmonic_kind not in _HARMONIC_KINDS:
            raise ConfigurationError(
                f"harmonic_kind must be one of {_HARMONIC_KINDS}, got "
                f"{harmonic_kind!r}"
            )
        self.reference_frequency_hz = float(reference_frequency_hz)
        self.search_halfwidth_hz = float(search_halfwidth_hz)
        self.integration_halfwidth_hz = (
            float(integration_halfwidth_hz)
            if integration_halfwidth_hz is not None
            else None
        )
        self.harmonic_kind = harmonic_kind
        self.exclusion_halfwidth_hz = (
            float(exclusion_halfwidth_hz)
            if exclusion_halfwidth_hz is not None
            else None
        )
        self.subtract_floor = bool(subtract_floor)

    # ------------------------------------------------------------------
    def line_power(self, spectrum: Spectrum) -> Tuple[float, float]:
        """Locate the reference line and return ``(frequency, power)``."""
        return spectrum.line_power(
            self.reference_frequency_hz,
            self.search_halfwidth_hz,
            self.integration_halfwidth_hz,
            subtract_floor=self.subtract_floor,
        )

    def _exclusion_halfwidth(self, spectrum: Spectrum) -> float:
        if self.exclusion_halfwidth_hz is not None:
            return self.exclusion_halfwidth_hz
        base = (
            self.integration_halfwidth_hz
            if self.integration_halfwidth_hz is not None
            else spectrum.enbw_hz
        )
        return 3.0 * base

    def exclusion_zones(
        self,
        spectrum: Spectrum,
        fundamental_hz: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """Exclusion zones covering the reference line and its harmonics.

        Returns ``(center, halfwidth)`` pairs up to the spectrum's maximum
        frequency, based on the located (or provided) fundamental.
        """
        fund = (
            float(fundamental_hz)
            if fundamental_hz is not None
            else self.line_power(spectrum)[0]
        )
        halfwidth = self._exclusion_halfwidth(spectrum)
        zones = [(fund, halfwidth)]
        if self.harmonic_kind == "none":
            return zones
        step = 2 if self.harmonic_kind == "odd" else 1
        order = 1 + step
        while order * fund <= spectrum.f_max + halfwidth:
            zones.append((order * fund, halfwidth))
            order += step
        return zones

    # ------------------------------------------------------------------
    def normalize_pair(
        self, hot_spectrum: Spectrum, cold_spectrum: Spectrum
    ) -> NormalizationResult:
        """Normalize both spectra to unit reference-line power.

        This is the paper's figure 9 correction: after scaling, the
        constant-amplitude reference line measures identically in both
        acquisitions and the noise floors differ by the true power ratio.
        """
        f_hot, p_hot = self.line_power(hot_spectrum)
        f_cold, p_cold = self.line_power(cold_spectrum)
        if p_hot <= 0 or p_cold <= 0:
            raise MeasurementError(
                f"reference line powers must be positive, got hot={p_hot}, "
                f"cold={p_cold}"
            )
        rel_offset = abs(f_hot - f_cold) / self.reference_frequency_hz
        if rel_offset > 0.05:
            raise MeasurementError(
                "reference line found at inconsistent frequencies: "
                f"{f_hot} Hz (hot) vs {f_cold} Hz (cold)"
            )
        scale_hot = 1.0 / p_hot
        scale_cold = 1.0 / p_cold
        return NormalizationResult(
            hot=hot_spectrum.scaled(scale_hot),
            cold=cold_spectrum.scaled(scale_cold),
            line_frequency_hot_hz=f_hot,
            line_frequency_cold_hz=f_cold,
            line_power_hot=p_hot,
            line_power_cold=p_cold,
            scale_hot=scale_hot,
            scale_cold=scale_cold,
        )

    def normalized_band_powers(
        self,
        result: NormalizationResult,
        f_low_hz: float,
        f_high_hz: float,
    ) -> Tuple[float, float]:
        """Noise band powers (hot, cold) with the reference excluded."""
        zones_hot = self.exclusion_zones(result.hot, result.line_frequency_hot_hz)
        zones_cold = self.exclusion_zones(result.cold, result.line_frequency_cold_hz)
        p_hot = result.hot.band_power(f_low_hz, f_high_hz, exclude=zones_hot)
        p_cold = result.cold.band_power(f_low_hz, f_high_hz, exclude=zones_cold)
        return p_hot, p_cold
