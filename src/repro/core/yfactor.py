"""Full-ADC Y-factor estimation (paper section 4.2, figure 4).

This is the reference estimator the 1-bit BIST is compared against: with
full access to the analog output record (an ideal ADC), the Y factor is
simply the ratio of measured powers; gain drift cancels (eq 11).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.constants import T0_KELVIN
from repro.core.definitions import YFactorResult
from repro.dsp.power import mean_square
from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.waveform import Waveform


class YFactorMethod:
    """Y-factor estimator with full (multi-bit) output access.

    Parameters
    ----------
    t_hot_k / t_cold_k:
        Calibrated source temperatures of the two states.
    t0_k:
        Reference temperature for the noise-factor definition.
    """

    def __init__(
        self,
        t_hot_k: float,
        t_cold_k: float = T0_KELVIN,
        t0_k: float = T0_KELVIN,
    ):
        if t_hot_k <= t_cold_k:
            raise ConfigurationError(
                f"hot temperature ({t_hot_k} K) must exceed cold ({t_cold_k} K)"
            )
        if t0_k <= 0:
            raise ConfigurationError(f"T0 must be > 0 K, got {t0_k}")
        self.t_hot_k = float(t_hot_k)
        self.t_cold_k = float(t_cold_k)
        self.t0_k = float(t0_k)

    # ------------------------------------------------------------------
    def from_powers(self, p_hot: float, p_cold: float) -> YFactorResult:
        """Estimate from two measured output powers (eq 5 + eq 8)."""
        if p_hot <= 0 or p_cold <= 0:
            raise MeasurementError(
                f"powers must be positive, got hot={p_hot}, cold={p_cold}"
            )
        y = p_hot / p_cold
        if y <= 1.0:
            raise MeasurementError(
                f"hot power must exceed cold power, got Y={y:.4f}"
            )
        return YFactorResult.from_y(
            y, self.t_hot_k, self.t_cold_k, self.t0_k, p_hot=p_hot, p_cold=p_cold
        )

    def from_records(
        self,
        hot_record: Union[Waveform, np.ndarray],
        cold_record: Union[Waveform, np.ndarray],
    ) -> YFactorResult:
        """Estimate from time-domain output records (mean-square powers)."""
        return self.from_powers(mean_square(hot_record), mean_square(cold_record))

    def from_spectra(
        self,
        hot_spectrum: Spectrum,
        cold_spectrum: Spectrum,
        f_low_hz: float,
        f_high_hz: float,
        exclude: Sequence[Tuple[float, float]] = (),
    ) -> YFactorResult:
        """Estimate from PSDs integrated over a band (Table 2 "PSD ratio")."""
        p_hot = hot_spectrum.band_power(f_low_hz, f_high_hz, exclude=exclude)
        p_cold = cold_spectrum.band_power(f_low_hz, f_high_hz, exclude=exclude)
        return self.from_powers(p_hot, p_cold)
