"""Frequency-response measurement with the same 1-bit BIST cell.

The paper's conclusion stresses that the proposed cell "extends the
capabilities of a simple BIST cell [3], allowing one to perform frequency
and noise measurements".  This module implements the frequency-related
capability following reference [3]'s statistical-sampler idea: a sine
stimulus is applied to the DUT, the DUT output is compared against a
Gaussian dither reference, and the stimulus line power in the bitstream
PSD tracks ``(A_out/sigma)^2``.  With a fixed dither level, the relative
line amplitudes across stimulus frequencies trace the DUT's magnitude
response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.constants import amplitude_to_db
from repro.digitizer.digitizer import OneBitDigitizer
from repro.dsp.psd import welch
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.signals.sources import GaussianNoiseSource, SineSource
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class FrequencyResponsePoint:
    """One measured point of the magnitude response."""

    frequency_hz: float
    line_power: float
    magnitude_relative: float
    magnitude_db: float


@dataclass(frozen=True)
class FrequencyResponseResult:
    """Magnitude response normalized to the strongest point."""

    points: List[FrequencyResponsePoint]

    @property
    def frequencies_hz(self) -> np.ndarray:
        return np.array([p.frequency_hz for p in self.points])

    @property
    def magnitudes_db(self) -> np.ndarray:
        return np.array([p.magnitude_db for p in self.points])

    def minus_3db_frequency(self) -> float:
        """First frequency at which the response falls 3 dB below peak.

        Linear interpolation between the bracketing measured points;
        raises if the response never crosses -3 dB.
        """
        mags = self.magnitudes_db
        freqs = self.frequencies_hz
        below = np.nonzero(mags <= -3.0)[0]
        if below.size == 0:
            raise MeasurementError(
                "response never crosses -3 dB within the measured span"
            )
        i = below[0]
        if i == 0:
            return float(freqs[0])
        f0, f1 = freqs[i - 1], freqs[i]
        m0, m1 = mags[i - 1], mags[i]
        frac = (-3.0 - m0) / (m1 - m0)
        return float(f0 + frac * (f1 - f0))


class FrequencyResponseBIST:
    """Swept-sine magnitude response through the 1-bit digitizer.

    Parameters
    ----------
    frequencies_hz:
        Stimulus frequencies to sweep.
    stimulus_amplitude:
        Sine amplitude at the DUT input.
    dither_rms:
        RMS of the Gaussian dither applied as the comparator reference;
        must dominate the DUT output swing for the linearized arcsine
        relation to hold.
    n_samples / sample_rate_hz / nperseg:
        Acquisition and Welch parameters per frequency point.
    """

    def __init__(
        self,
        frequencies_hz: Sequence[float],
        stimulus_amplitude: float,
        dither_rms: float,
        n_samples: int,
        sample_rate_hz: float,
        nperseg: int,
        digitizer: Optional[OneBitDigitizer] = None,
    ):
        freqs = [float(f) for f in frequencies_hz]
        if not freqs:
            raise ConfigurationError("need at least one stimulus frequency")
        if any(f <= 0 or f >= sample_rate_hz / 2 for f in freqs):
            raise ConfigurationError(
                "all stimulus frequencies must lie in (0, Nyquist), got "
                f"{freqs}"
            )
        if stimulus_amplitude <= 0:
            raise ConfigurationError(
                f"stimulus amplitude must be > 0, got {stimulus_amplitude}"
            )
        if dither_rms <= 0:
            raise ConfigurationError(f"dither RMS must be > 0, got {dither_rms}")
        if n_samples < nperseg:
            raise ConfigurationError(
                f"n_samples ({n_samples}) must be >= nperseg ({nperseg})"
            )
        self.frequencies_hz = freqs
        self.stimulus_amplitude = float(stimulus_amplitude)
        self.dither_rms = float(dither_rms)
        self.n_samples = int(n_samples)
        self.sample_rate_hz = float(sample_rate_hz)
        self.nperseg = int(nperseg)
        self.digitizer = digitizer if digitizer is not None else OneBitDigitizer()

    def measure(
        self,
        process: Callable[[Waveform, GeneratorLike], Waveform],
        rng: GeneratorLike = None,
    ) -> FrequencyResponseResult:
        """Sweep the stimulus and return the relative magnitude response.

        ``process(stimulus, rng)`` is the DUT: it maps the input waveform
        to the analog test-point waveform (e.g. a bound
        ``NonInvertingAmplifier.process``).
        """
        gen = make_rng(rng)
        children = spawn_rngs(gen, 3 * len(self.frequencies_hz))
        dither_source = GaussianNoiseSource(self.dither_rms)
        df = self.sample_rate_hz / self.nperseg

        raw_points = []
        for i, freq in enumerate(self.frequencies_hz):
            rng_dut, rng_dither, rng_dig = children[3 * i : 3 * i + 3]
            stimulus = SineSource(freq, self.stimulus_amplitude).render(
                self.n_samples, self.sample_rate_hz
            )
            output = process(stimulus, rng_dut)
            dither = dither_source.render(
                output.n_samples, output.sample_rate, rng_dither
            )
            bits = self.digitizer.digitize(output, dither, rng_dig)
            spectrum = welch(bits, nperseg=self.nperseg)
            _, line = spectrum.line_power(freq, search_halfwidth_hz=5 * df)
            raw_points.append((freq, line))

        peak = max(line for _, line in raw_points)
        if peak <= 0:
            raise MeasurementError("no stimulus line detected at any frequency")
        points = [
            FrequencyResponsePoint(
                frequency_hz=freq,
                line_power=line,
                magnitude_relative=float(np.sqrt(line / peak)),
                magnitude_db=amplitude_to_db(max(np.sqrt(line / peak), 1e-15)),
            )
            for freq, line in raw_points
        ]
        return FrequencyResponseResult(points=points)
