"""Uncertainty propagation for Y-factor noise-figure measurements.

Implements the analysis the paper cites from its reference [6]: even a 5 %
error in the hot temperature keeps the measured noise figure within about
+/-0.3 dB for 3-10 dB devices.  Both an analytic first-order budget
(partial derivatives of eq 8) and a Monte-Carlo propagation are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.constants import T0_KELVIN, linear_to_db
from repro.core.definitions import (
    f_to_nf,
    nf_to_f,
    noise_factor_from_y,
    y_factor_expected,
)
from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike, make_rng

_LN10_OVER_10 = np.log(10.0) / 10.0


@dataclass(frozen=True)
class UncertaintyBudget:
    """First-order uncertainty budget of a Y-factor NF measurement."""

    noise_factor: float
    noise_figure_db: float
    y_nominal: float
    sigma_f: float
    sigma_nf_db: float
    contributions_f: Dict[str, float]

    def dominant_source(self) -> str:
        """Largest contributor to the noise-factor variance."""
        return max(self.contributions_f, key=self.contributions_f.get)


def _partials(y: float, t_hot: float, t_cold: float, t0: float):
    """Partial derivatives of eq 8 w.r.t. (Th, Tc, Y)."""
    denom = y - 1.0
    numerator = (t_hot / t0 - 1.0) - y * (t_cold / t0 - 1.0)
    d_th = 1.0 / (t0 * denom)
    d_tc = -y / (t0 * denom)
    d_y = (-(t_cold / t0 - 1.0) * denom - numerator) / (denom**2)
    return d_th, d_tc, d_y


def nf_uncertainty_budget(
    noise_figure_db: float,
    t_hot_k: float,
    t_cold_k: float = T0_KELVIN,
    t0_k: float = T0_KELVIN,
    rel_sigma_t_hot: float = 0.05,
    rel_sigma_t_cold: float = 0.0,
    rel_sigma_y: float = 0.0,
) -> UncertaintyBudget:
    """First-order NF uncertainty for a DUT of the given noise figure.

    ``rel_sigma_*`` are 1-sigma *relative* errors of the hot temperature,
    cold temperature and measured Y factor.  The NF sigma uses
    ``sigma_NF = (10/ln10) * sigma_F / F``.
    """
    for name, value in (
        ("rel_sigma_t_hot", rel_sigma_t_hot),
        ("rel_sigma_t_cold", rel_sigma_t_cold),
        ("rel_sigma_y", rel_sigma_y),
    ):
        if value < 0:
            raise ConfigurationError(f"{name} must be >= 0, got {value}")
    factor = nf_to_f(noise_figure_db)
    y = y_factor_expected(factor, t_hot_k, t_cold_k, t0_k)
    d_th, d_tc, d_y = _partials(y, t_hot_k, t_cold_k, t0_k)
    contributions = {
        "t_hot": (d_th * rel_sigma_t_hot * t_hot_k) ** 2,
        "t_cold": (d_tc * rel_sigma_t_cold * t_cold_k) ** 2,
        "y": (d_y * rel_sigma_y * y) ** 2,
    }
    sigma_f = float(np.sqrt(sum(contributions.values())))
    sigma_nf_db = 10.0 / np.log(10.0) * sigma_f / factor
    return UncertaintyBudget(
        noise_factor=factor,
        noise_figure_db=noise_figure_db,
        y_nominal=y,
        sigma_f=sigma_f,
        sigma_nf_db=float(sigma_nf_db),
        contributions_f=contributions,
    )


@dataclass(frozen=True)
class MonteCarloResult:
    """Monte-Carlo NF distribution summary."""

    nf_mean_db: float
    nf_std_db: float
    nf_p05_db: float
    nf_p95_db: float
    n_trials: int
    n_rejected: int


def monte_carlo_nf(
    noise_figure_db: float,
    t_hot_k: float,
    t_cold_k: float = T0_KELVIN,
    t0_k: float = T0_KELVIN,
    rel_sigma_t_hot: float = 0.05,
    rel_sigma_y: float = 0.0,
    n_trials: int = 10000,
    rng: GeneratorLike = None,
) -> MonteCarloResult:
    """Monte-Carlo propagation of hot-temperature and Y errors.

    Each trial perturbs the *actual* hot temperature (the estimator still
    uses the calibrated value) and optionally the measured Y, then
    re-evaluates eq 8.  Trials yielding F < 1 are rejected and counted
    (they correspond to measurements a test engineer would flag).
    """
    if n_trials < 10:
        raise ConfigurationError(f"n_trials must be >= 10, got {n_trials}")
    gen = make_rng(rng)
    factor = nf_to_f(noise_figure_db)
    te = (factor - 1.0) * t0_k

    t_hot_actual = t_hot_k * (
        1.0 + rel_sigma_t_hot * gen.standard_normal(n_trials)
    )
    y_actual = (t_hot_actual + te) / (t_cold_k + te)
    if rel_sigma_y > 0:
        y_actual = y_actual * (1.0 + rel_sigma_y * gen.standard_normal(n_trials))

    # Vectorized eq-8 re-evaluation: trials with Y <= 1 or F < 1 are
    # rejected (measurements a test engineer would flag), the rest map
    # straight to dB.  Same arithmetic as the per-trial loop, 1e4x fewer
    # Python iterations.
    with np.errstate(divide="ignore", invalid="ignore"):
        numerator = (t_hot_k / t0_k - 1.0) - y_actual * (t_cold_k / t0_k - 1.0)
        f_est = numerator / (y_actual - 1.0)
    accepted = (y_actual > 1.0) & (f_est >= 1.0)
    n_rejected = int(n_trials - np.count_nonzero(accepted))
    if not np.any(accepted):
        raise ConfigurationError(
            "all Monte-Carlo trials rejected; errors are too large for the "
            "configured temperatures"
        )
    values = linear_to_db(f_est[accepted])
    return MonteCarloResult(
        nf_mean_db=float(np.mean(values)),
        nf_std_db=float(np.std(values)),
        nf_p05_db=float(np.percentile(values, 5)),
        nf_p95_db=float(np.percentile(values, 95)),
        n_trials=n_trials,
        n_rejected=n_rejected,
    )
