"""Noise-figure core: the paper's contribution.

* :mod:`repro.core.definitions` — F/NF/SNR definitions and the Y-factor
  equations (paper eqs 1-9).
* :mod:`repro.core.direct` — the direct method (section 4.1) including its
  gain-drift sensitivity (eq 10).
* :mod:`repro.core.yfactor` — full-ADC Y-factor estimation (section 4.2).
* :mod:`repro.core.normalization` — reference-line spectrum normalization
  (section 5.2), the key enabling trick of the proposed method.
* :mod:`repro.core.bist` — the end-to-end 1-bit BIST noise-figure pipeline
  (section 4.3 + 5).
* :mod:`repro.core.uncertainty` — error propagation (section 4.2 / ref [6]).
* :mod:`repro.core.multipoint` — simultaneous multi-test-point measurement.
* :mod:`repro.core.frequency_response` — frequency-response reuse of the
  same BIST cell (ref [3], mentioned in section 7).
"""

from repro.core.averaging import AveragedResult, RepeatedMeasurement
from repro.core.bist import (
    BISTMeasurementConfig,
    BISTResult,
    OneBitNoiseFigureBIST,
)
from repro.core.definitions import (
    YFactorResult,
    enr_db,
    f_to_nf,
    friis_cascade_factor,
    nf_to_f,
    noise_factor_from_y,
    noise_factor_from_y_powers,
    noise_figure_from_y,
    noise_temperature_from_factor,
    snr_db_from_waveforms,
    y_factor_expected,
)
from repro.core.direct import DirectMethod, direct_method_gain_error_db
from repro.core.frequency_response import (
    FrequencyResponseBIST,
    FrequencyResponseResult,
)
from repro.core.multipoint import MultiPointBIST, TestPoint
from repro.core.normalization import NormalizationResult, ReferenceNormalizer
from repro.core.spot_nf import SpotNoiseFigureSweep, octave_bands
from repro.core.uncertainty import UncertaintyBudget, nf_uncertainty_budget
from repro.core.yfactor import YFactorMethod

__all__ = [
    "f_to_nf",
    "nf_to_f",
    "enr_db",
    "noise_factor_from_y",
    "noise_factor_from_y_powers",
    "noise_figure_from_y",
    "noise_temperature_from_factor",
    "y_factor_expected",
    "friis_cascade_factor",
    "snr_db_from_waveforms",
    "YFactorResult",
    "DirectMethod",
    "direct_method_gain_error_db",
    "YFactorMethod",
    "ReferenceNormalizer",
    "NormalizationResult",
    "OneBitNoiseFigureBIST",
    "BISTMeasurementConfig",
    "BISTResult",
    "UncertaintyBudget",
    "nf_uncertainty_budget",
    "MultiPointBIST",
    "TestPoint",
    "SpotNoiseFigureSweep",
    "octave_bands",
    "FrequencyResponseBIST",
    "FrequencyResponseResult",
    "RepeatedMeasurement",
    "AveragedResult",
]
