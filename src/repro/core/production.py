"""Production pass/fail NF screening built on the 1-bit BIST.

The paper's motivation is production test cost (section 1, and the
signature-test framing of its ref [7]).  This module closes that loop: a
specification limit, a guard band derived from the measurement's
uncertainty, and a classifier.  The guard band trades *escapes* (bad
devices passed) against *overkill* (good devices failed): tightening the
accepted region by ``k`` measurement sigmas suppresses escapes at the
cost of yield.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional

import numpy as np

from repro.core.bist import OneBitNoiseFigureBIST
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.signals.waveform import Waveform


class Verdict(Enum):
    """Outcome of a production NF screen."""

    PASS = "pass"
    FAIL = "fail"
    RETEST = "retest"


@dataclass(frozen=True)
class ScreenResult:
    """One device's screening outcome."""

    measured_nf_db: float
    limit_db: float
    guardband_db: float
    verdict: Verdict

    @property
    def effective_limit_db(self) -> float:
        """The guard-banded acceptance limit."""
        return self.limit_db - self.guardband_db


class ProductionNfScreen:
    """Guard-banded upper-limit NF screen.

    Parameters
    ----------
    estimator:
        Configured 1-bit estimator.
    limit_db:
        Specification limit (device fails above it).
    measurement_sigma_db:
        One-sigma repeatability of the measurement (from the
        record-length ablation or :mod:`repro.core.uncertainty`).
    guardband_sigmas:
        Guard band in sigmas subtracted from the limit; devices landing
        between the guard-banded and raw limits are marked RETEST.
    """

    def __init__(
        self,
        estimator: OneBitNoiseFigureBIST,
        limit_db: float,
        measurement_sigma_db: float,
        guardband_sigmas: float = 2.0,
    ):
        if not isinstance(estimator, OneBitNoiseFigureBIST):
            raise ConfigurationError(
                f"estimator must be OneBitNoiseFigureBIST, got "
                f"{type(estimator).__name__}"
            )
        if limit_db <= 0:
            raise ConfigurationError(f"limit must be > 0 dB, got {limit_db}")
        if measurement_sigma_db < 0:
            raise ConfigurationError(
                f"measurement sigma must be >= 0, got {measurement_sigma_db}"
            )
        if guardband_sigmas < 0:
            raise ConfigurationError(
                f"guardband must be >= 0 sigmas, got {guardband_sigmas}"
            )
        self.estimator = estimator
        self.limit_db = float(limit_db)
        self.measurement_sigma_db = float(measurement_sigma_db)
        self.guardband_sigmas = float(guardband_sigmas)

    @property
    def guardband_db(self) -> float:
        """Guard band in dB."""
        return self.guardband_sigmas * self.measurement_sigma_db

    def classify(self, measured_nf_db: float) -> Verdict:
        """Apply the guard-banded limit to a measured value."""
        if measured_nf_db <= self.limit_db - self.guardband_db:
            return Verdict.PASS
        if measured_nf_db > self.limit_db:
            return Verdict.FAIL
        return Verdict.RETEST

    def screen(
        self,
        acquire: Callable[[str, GeneratorLike], Waveform],
        rng: GeneratorLike = None,
    ) -> ScreenResult:
        """Measure one device and classify it."""
        result = self.estimator.measure(acquire, rng=rng)
        return ScreenResult(
            measured_nf_db=result.noise_figure_db,
            limit_db=self.limit_db,
            guardband_db=self.guardband_db,
            verdict=self.classify(result.noise_figure_db),
        )


@dataclass(frozen=True)
class PopulationOutcome:
    """Escape/overkill statistics over a screened device population."""

    n_devices: int
    n_pass: int
    n_fail: int
    n_retest: int
    n_escapes: int
    n_overkill: int

    @property
    def escape_rate(self) -> float:
        """Fraction of out-of-spec devices classified PASS."""
        return self.n_escapes / self.n_devices

    @property
    def overkill_rate(self) -> float:
        """Fraction of in-spec devices classified FAIL."""
        return self.n_overkill / self.n_devices


def screen_population(
    screen: ProductionNfScreen,
    true_nf_values_db,
    measured_nf_values_db,
) -> PopulationOutcome:
    """Classify a population given true and measured NF per device.

    ``true`` decides whether a PASS is an escape (true NF above the
    limit) and whether a FAIL is overkill (true NF within spec).
    """
    true_arr = np.asarray(list(true_nf_values_db), dtype=float)
    meas_arr = np.asarray(list(measured_nf_values_db), dtype=float)
    if true_arr.size != meas_arr.size:
        raise ConfigurationError(
            f"need one measurement per device, got {true_arr.size} true "
            f"and {meas_arr.size} measured"
        )
    if true_arr.size == 0:
        raise ConfigurationError("population must be non-empty")
    n_pass = n_fail = n_retest = n_escapes = n_overkill = 0
    for true_nf, measured in zip(true_arr, meas_arr):
        verdict = screen.classify(float(measured))
        in_spec = true_nf <= screen.limit_db
        if verdict is Verdict.PASS:
            n_pass += 1
            if not in_spec:
                n_escapes += 1
        elif verdict is Verdict.FAIL:
            n_fail += 1
            if in_spec:
                n_overkill += 1
        else:
            n_retest += 1
    return PopulationOutcome(
        n_devices=int(true_arr.size),
        n_pass=n_pass,
        n_fail=n_fail,
        n_retest=n_retest,
        n_escapes=n_escapes,
        n_overkill=n_overkill,
    )
