"""End-to-end 1-bit BIST noise-figure estimation (paper sections 4.3 & 5).

:class:`OneBitNoiseFigureBIST` consumes the two bitstreams the digitizer
captured in the hot and cold noise-source states and produces the noise
figure:

1. Welch PSD of each bitstream (the paper: 1e6 samples, FFT size 1e4);
2. locate the constant-amplitude reference line, normalize both spectra to
   unit line power (:mod:`repro.core.normalization`);
3. integrate the noise band power in each normalized spectrum, excluding
   the reference line and its harmonics;
4. ``Y = P_hot / P_cold`` and eq 8/9 give the noise factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.bitstream import PackedBitstream, PackedRecordBatch
from repro.constants import T0_KELVIN
from repro.core.definitions import YFactorResult
from repro.core.normalization import NormalizationResult, ReferenceNormalizer
from repro.dsp.psd import welch
from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class BISTMeasurementConfig:
    """Acquisition and analysis parameters of a 1-bit NF measurement.

    Parameters
    ----------
    sample_rate_hz:
        Bitstream sample rate.
    n_samples:
        Record length per state (the paper captures 1e6 samples).
    nperseg:
        Welch segment / FFT length (the paper uses 1e4).
    reference_frequency_hz:
        Nominal reference-waveform frequency.
    noise_band_hz:
        ``(f_low, f_high)`` band whose normalized power forms the Y ratio.
    harmonic_kind:
        Harmonics to exclude: ``"odd"`` for a square reference, ``"all"``
        for a sine through the nonlinear limiter, ``"none"`` to disable.
    window / overlap:
        Welch analysis window and fractional overlap.
    search_halfwidth_hz / line_integration_halfwidth_hz /
    exclusion_halfwidth_hz:
        Reference-line handling; defaults derive from the bin spacing
        ``sample_rate/nperseg`` (5 bins search, window ENBW integration,
        3 x integration exclusion).
    """

    sample_rate_hz: float
    n_samples: int
    nperseg: int
    reference_frequency_hz: float
    noise_band_hz: Tuple[float, float]
    harmonic_kind: str = "odd"
    window: str = "hann"
    overlap: float = 0.5
    search_halfwidth_hz: Optional[float] = None
    line_integration_halfwidth_hz: Optional[float] = None
    exclusion_halfwidth_hz: Optional[float] = None
    subtract_line_floor: bool = True

    def __post_init__(self):
        if self.sample_rate_hz <= 0:
            raise ConfigurationError(
                f"sample rate must be > 0, got {self.sample_rate_hz}"
            )
        if self.n_samples < self.nperseg:
            raise ConfigurationError(
                f"n_samples ({self.n_samples}) must be >= nperseg "
                f"({self.nperseg})"
            )
        if self.nperseg < 8:
            raise ConfigurationError(f"nperseg must be >= 8, got {self.nperseg}")
        f_low, f_high = self.noise_band_hz
        nyquist = self.sample_rate_hz / 2.0
        if not 0 < f_low < f_high <= nyquist:
            raise ConfigurationError(
                f"noise band must satisfy 0 < f_low < f_high <= Nyquist "
                f"({nyquist} Hz), got {self.noise_band_hz}"
            )
        if not 0 < self.reference_frequency_hz < nyquist:
            raise ConfigurationError(
                "reference frequency must lie below Nyquist, got "
                f"{self.reference_frequency_hz} Hz"
            )

    @property
    def bin_spacing_hz(self) -> float:
        """Welch bin spacing ``fs / nperseg``."""
        return self.sample_rate_hz / self.nperseg

    @property
    def duration_s(self) -> float:
        """Record duration per state."""
        return self.n_samples / self.sample_rate_hz

    def make_normalizer(self) -> ReferenceNormalizer:
        """Build the reference normalizer implied by this configuration."""
        df = self.bin_spacing_hz
        search = (
            self.search_halfwidth_hz
            if self.search_halfwidth_hz is not None
            else 5.0 * df
        )
        return ReferenceNormalizer(
            reference_frequency_hz=self.reference_frequency_hz,
            search_halfwidth_hz=search,
            integration_halfwidth_hz=self.line_integration_halfwidth_hz,
            harmonic_kind=self.harmonic_kind,
            exclusion_halfwidth_hz=self.exclusion_halfwidth_hz,
            subtract_floor=self.subtract_line_floor,
        )


@dataclass(frozen=True)
class BISTResult:
    """Full outcome of a 1-bit BIST noise-figure measurement."""

    y: float
    noise_factor: float
    noise_figure_db: float
    noise_temperature_k: float
    band_power_hot: float
    band_power_cold: float
    normalization: NormalizationResult
    t_hot_k: float
    t_cold_k: float

    @property
    def y_factor_result(self) -> YFactorResult:
        """The result in the generic Y-factor record form."""
        return YFactorResult(
            y=self.y,
            noise_factor=self.noise_factor,
            noise_figure_db=self.noise_figure_db,
            noise_temperature_k=self.noise_temperature_k,
            p_hot=self.band_power_hot,
            p_cold=self.band_power_cold,
        )


def check_bitstream_samples(samples, label: str) -> None:
    """Validate a +/-1 bitstream in whatever representation it arrives.

    Packed records (:class:`~repro.bitstream.PackedBitstream` /
    :class:`~repro.bitstream.PackedRecordBatch`) are validated directly
    on the packed words — every stored bit decodes to a valid ``+/-1``
    sample, so the check reduces to the O(1) padding-bit invariant and
    no unpack round-trip happens.  Float arrays get the vectorized
    ``|x| == 1`` pass — the seed's ``np.unique`` sorted every
    1e6-sample record (O(n log n)) on each call.  Stacked batches are
    checked row by row so the scratch stays one record wide; the sorted
    diagnostic is only computed on failure.
    """
    if isinstance(samples, (PackedBitstream, PackedRecordBatch)):
        try:
            samples.validate()
        except ConfigurationError as exc:
            raise ConfigurationError(f"{label} bitstream invalid: {exc}")
        return
    arr = np.asarray(samples)
    rows = arr.reshape(-1, arr.shape[-1]) if arr.ndim > 1 else arr[np.newaxis]
    if all(bool(np.all(np.abs(row) == 1.0)) for row in rows):
        return
    bad = np.unique(arr[np.abs(arr) != 1.0])
    raise ConfigurationError(
        f"{label} bitstream must contain only +/-1 values, found "
        f"{bad[:5]}"
    )


def _check_bitstream(wave, label: str) -> None:
    if isinstance(wave, PackedBitstream):
        check_bitstream_samples(wave, label)
        return
    check_bitstream_samples(wave.samples, label)


class OneBitNoiseFigureBIST:
    """The proposed method: noise figure from two 1-bit acquisitions.

    Parameters
    ----------
    config:
        Acquisition/analysis configuration.
    t_hot_k / t_cold_k:
        Calibrated noise-source temperatures (eq 8).
    t0_k:
        Reference temperature (290 K).
    """

    def __init__(
        self,
        config: BISTMeasurementConfig,
        t_hot_k: float,
        t_cold_k: float = T0_KELVIN,
        t0_k: float = T0_KELVIN,
    ):
        if not isinstance(config, BISTMeasurementConfig):
            raise ConfigurationError(
                f"config must be a BISTMeasurementConfig, got "
                f"{type(config).__name__}"
            )
        if t_hot_k <= t_cold_k:
            raise ConfigurationError(
                f"hot temperature ({t_hot_k} K) must exceed cold ({t_cold_k} K)"
            )
        self.config = config
        self.t_hot_k = float(t_hot_k)
        self.t_cold_k = float(t_cold_k)
        self.t0_k = float(t0_k)
        self._normalizer = config.make_normalizer()

    # ------------------------------------------------------------------
    @property
    def normalizer(self) -> ReferenceNormalizer:
        """The reference-line normalizer in use."""
        return self._normalizer

    def spectrum_of(
        self, bitstream: Union[Waveform, PackedBitstream]
    ) -> Spectrum:
        """Welch PSD of a (float or packed) bitstream with the
        configured parameters.  Packed records unpack one FFT block at
        a time and yield bit-identical PSDs."""
        return welch(
            bitstream,
            nperseg=self.config.nperseg,
            window=self.config.window,
            overlap=self.config.overlap,
            detrend=True,
        )

    def estimate_from_bitstreams(
        self,
        bits_hot: Union[Waveform, PackedBitstream],
        bits_cold: Union[Waveform, PackedBitstream],
    ) -> BISTResult:
        """Run the full pipeline on captured hot/cold bitstreams.

        Both captures may be float waveforms or packed records
        (:class:`~repro.bitstream.PackedBitstream`); results are
        identical either way.
        """
        _check_bitstream(bits_hot, "hot")
        _check_bitstream(bits_cold, "cold")
        if bits_hot.sample_rate != self.config.sample_rate_hz:
            raise ConfigurationError(
                f"hot bitstream rate {bits_hot.sample_rate} Hz does not "
                f"match configured {self.config.sample_rate_hz} Hz"
            )
        if bits_cold.sample_rate != self.config.sample_rate_hz:
            raise ConfigurationError(
                f"cold bitstream rate {bits_cold.sample_rate} Hz does not "
                f"match configured {self.config.sample_rate_hz} Hz"
            )
        spec_hot = self.spectrum_of(bits_hot)
        spec_cold = self.spectrum_of(bits_cold)
        return self.estimate_from_spectra(spec_hot, spec_cold)

    def estimate_from_spectra(
        self, spec_hot: Spectrum, spec_cold: Spectrum
    ) -> BISTResult:
        """Run normalization + Y-factor on precomputed bitstream PSDs."""
        norm = self._normalizer.normalize_pair(spec_hot, spec_cold)
        f_low, f_high = self.config.noise_band_hz
        p_hot, p_cold = self._normalizer.normalized_band_powers(
            norm, f_low, f_high
        )
        if p_cold <= 0:
            raise MeasurementError("cold band power is zero after exclusion")
        y = p_hot / p_cold
        result = YFactorResult.from_y(
            y, self.t_hot_k, self.t_cold_k, self.t0_k, p_hot=p_hot, p_cold=p_cold
        )
        return BISTResult(
            y=y,
            noise_factor=result.noise_factor,
            noise_figure_db=result.noise_figure_db,
            noise_temperature_k=result.noise_temperature_k,
            band_power_hot=p_hot,
            band_power_cold=p_cold,
            normalization=norm,
            t_hot_k=self.t_hot_k,
            t_cold_k=self.t_cold_k,
        )

    # ------------------------------------------------------------------
    def measure(
        self,
        acquire: Callable[[str, GeneratorLike], Waveform],
        rng: GeneratorLike = None,
    ) -> BISTResult:
        """Drive a two-state acquisition and estimate.

        ``acquire(state, rng)`` must return the captured bitstream for
        ``state`` in ``("hot", "cold")`` — typically bound to a testbench
        or a :class:`~repro.soc.bist_controller.BISTController`.
        """
        gen = make_rng(rng)
        rng_hot, rng_cold = spawn_rngs(gen, 2)
        bits_hot = acquire("hot", rng_hot)
        bits_cold = acquire("cold", rng_cold)
        return self.estimate_from_bitstreams(bits_hot, bits_cold)
