"""Noise-figure definitions and Y-factor equations (paper eqs 1-9).

Symbols follow the paper: noise factor ``F`` (linear), noise figure
``NF = 10*log10(F)`` (eq 3), Y factor ``Y = Nh/Nc`` (eq 5), reference
temperature ``T0 = 290 K``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.constants import T0_KELVIN, db_to_linear, linear_to_db
from repro.dsp.power import mean_square
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.waveform import Waveform


def f_to_nf(noise_factor: float) -> float:
    """Noise figure in dB from a linear noise factor (eq 3)."""
    if noise_factor < 1.0:
        raise ConfigurationError(
            f"noise factor must be >= 1 (a passive source adds no negative "
            f"noise), got {noise_factor}"
        )
    return linear_to_db(noise_factor)


def nf_to_f(noise_figure_db: float) -> float:
    """Linear noise factor from a noise figure in dB."""
    if noise_figure_db < 0.0:
        raise ConfigurationError(
            f"noise figure must be >= 0 dB, got {noise_figure_db}"
        )
    return db_to_linear(noise_figure_db)


def noise_temperature_from_factor(
    noise_factor: float, t0_k: float = T0_KELVIN
) -> float:
    """Equivalent input noise temperature ``Te = (F-1)*T0``."""
    if noise_factor < 1.0:
        raise ConfigurationError(f"noise factor must be >= 1, got {noise_factor}")
    return (noise_factor - 1.0) * t0_k


def enr_db(t_hot_k: float, t0_k: float = T0_KELVIN) -> float:
    """Excess noise ratio of a hot source, ``10*log10((Th-T0)/T0)``."""
    if t_hot_k <= t0_k:
        raise ConfigurationError(
            f"hot temperature {t_hot_k} K must exceed T0 {t0_k} K"
        )
    return linear_to_db((t_hot_k - t0_k) / t0_k)


def snr_db_from_waveforms(signal: Waveform, noise: Waveform) -> float:
    """SNR (eq 1) from separate signal and noise records."""
    p_noise = mean_square(noise)
    if p_noise <= 0:
        raise MeasurementError("noise record has zero power")
    p_signal = mean_square(signal)
    if p_signal <= 0:
        raise MeasurementError("signal record has zero power")
    return linear_to_db(p_signal / p_noise)


# ----------------------------------------------------------------------
# Y-factor equations
# ----------------------------------------------------------------------
def y_factor_expected(
    noise_factor: float,
    t_hot_k: float,
    t_cold_k: float = T0_KELVIN,
    t0_k: float = T0_KELVIN,
) -> float:
    """Forward model: the Y a DUT of noise factor F produces (from eqs 6-7).

    ``Y = (Th + Te) / (Tc + Te)`` with ``Te = (F-1)*T0``.
    """
    te = noise_temperature_from_factor(noise_factor, t0_k)
    if t_cold_k + te <= 0:
        raise ConfigurationError("cold-state noise power must be positive")
    return (t_hot_k + te) / (t_cold_k + te)


def noise_factor_from_y(
    y: float,
    t_hot_k: float,
    t_cold_k: float = T0_KELVIN,
    t0_k: float = T0_KELVIN,
) -> float:
    """Invert the Y-factor equation (paper eq 8).

    ``F = [(Th/T0 - 1) - Y*(Tc/T0 - 1)] / (Y - 1)``.
    """
    if y <= 1.0:
        raise MeasurementError(
            f"Y factor must exceed 1 (hot power above cold), got {y}"
        )
    if t_hot_k <= t_cold_k:
        raise ConfigurationError(
            f"hot temperature ({t_hot_k} K) must exceed cold ({t_cold_k} K)"
        )
    numerator = (t_hot_k / t0_k - 1.0) - y * (t_cold_k / t0_k - 1.0)
    factor = numerator / (y - 1.0)
    if factor < 1.0 - 1e-9:
        raise MeasurementError(
            f"Y={y} with Th={t_hot_k} K, Tc={t_cold_k} K implies F={factor:.4f} < 1; "
            "the measured Y is larger than a noiseless DUT would produce"
        )
    return max(factor, 1.0)


def noise_factor_from_y_powers(
    y: float,
    n_hot: float,
    n_cold: float,
    n0: float,
) -> float:
    """Power form of the Y-factor equation (paper eq 9).

    ``F = [(Nh/N0 - 1) - Y*(Nc/N0 - 1)] / (Y - 1)`` where the ``N`` are
    *source* noise powers (hot, cold and at T0) in any consistent unit.
    """
    if n0 <= 0:
        raise ConfigurationError(f"reference power N0 must be > 0, got {n0}")
    if y <= 1.0:
        raise MeasurementError(f"Y factor must exceed 1, got {y}")
    if n_hot <= n_cold:
        raise ConfigurationError(
            f"hot power ({n_hot}) must exceed cold power ({n_cold})"
        )
    numerator = (n_hot / n0 - 1.0) - y * (n_cold / n0 - 1.0)
    factor = numerator / (y - 1.0)
    if factor < 1.0 - 1e-9:
        raise MeasurementError(
            f"measured Y={y} implies F={factor:.4f} < 1; inconsistent powers"
        )
    return max(factor, 1.0)


def noise_figure_from_y(
    y: float,
    t_hot_k: float,
    t_cold_k: float = T0_KELVIN,
    t0_k: float = T0_KELVIN,
) -> float:
    """Noise figure in dB directly from a measured Y factor."""
    return f_to_nf(noise_factor_from_y(y, t_hot_k, t_cold_k, t0_k))


@dataclass(frozen=True)
class YFactorResult:
    """Outcome of a Y-factor noise measurement."""

    y: float
    noise_factor: float
    noise_figure_db: float
    noise_temperature_k: float
    p_hot: float
    p_cold: float

    @classmethod
    def from_y(
        cls,
        y: float,
        t_hot_k: float,
        t_cold_k: float = T0_KELVIN,
        t0_k: float = T0_KELVIN,
        p_hot: float = float("nan"),
        p_cold: float = float("nan"),
    ) -> "YFactorResult":
        """Build the result record from a measured Y and calibration temps."""
        factor = noise_factor_from_y(y, t_hot_k, t_cold_k, t0_k)
        return cls(
            y=y,
            noise_factor=factor,
            noise_figure_db=f_to_nf(factor),
            noise_temperature_k=noise_temperature_from_factor(factor, t0_k),
            p_hot=p_hot,
            p_cold=p_cold,
        )


def friis_cascade_factor(
    noise_factors: Sequence[float], power_gains: Sequence[float]
) -> float:
    """Friis formula for a chain of stages (section 6 of the paper)."""
    factors = list(noise_factors)
    gains = list(power_gains)
    if not factors:
        raise ConfigurationError("cascade needs at least one stage")
    if len(gains) != len(factors):
        raise ConfigurationError(
            f"need one gain per stage, got {len(factors)} factors and "
            f"{len(gains)} gains"
        )
    for f in factors:
        if f < 1.0:
            raise ConfigurationError(f"noise factors must be >= 1, got {f}")
    for g in gains:
        if g <= 0:
            raise ConfigurationError(f"gains must be > 0, got {g}")
    total = factors[0]
    running = gains[0]
    for f, g in zip(factors[1:], gains[1:]):
        total += (f - 1.0) / running
        running *= g
    return total
