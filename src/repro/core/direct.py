"""Direct noise-figure measurement (paper section 4.1, eqs 4 and 10).

The direct method measures the DUT's absolute output noise power with a
matched load at 290 K on its input, then divides by ``k*T0*B*G``.  Its
practical weakness — quantified here — is that any drift of the
conditioning-amplifier gain enters the estimate directly (eq 10), whereas
the Y-factor method cancels it (eq 11).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.constants import BOLTZMANN, T0_KELVIN, linear_to_db
from repro.core.definitions import f_to_nf
from repro.dsp.power import mean_square
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.waveform import Waveform


class DirectMethod:
    """Direct-method estimator.

    Parameters
    ----------
    assumed_power_gain:
        The total *power* gain the estimator believes the chain has
        (DUT * conditioning amplifier).  In the voltage-mode simulation
        this is the voltage gain squared.
    bandwidth_hz:
        Equivalent noise bandwidth of the measurement.
    source_power_n0:
        Source noise power at T0 in the same units as the measured output
        power.  Default uses ``k*T0*B`` (matched-power convention); for
        voltage-mode simulations pass ``4kT0*Rs*B`` instead.
    """

    def __init__(
        self,
        assumed_power_gain: float,
        bandwidth_hz: float,
        source_power_n0: float = None,
        t0_k: float = T0_KELVIN,
    ):
        if assumed_power_gain <= 0:
            raise ConfigurationError(
                f"assumed gain must be > 0, got {assumed_power_gain}"
            )
        if bandwidth_hz <= 0:
            raise ConfigurationError(
                f"bandwidth must be > 0 Hz, got {bandwidth_hz}"
            )
        self.assumed_power_gain = float(assumed_power_gain)
        self.bandwidth_hz = float(bandwidth_hz)
        self.t0_k = float(t0_k)
        if source_power_n0 is None:
            source_power_n0 = BOLTZMANN * self.t0_k * self.bandwidth_hz
        if source_power_n0 <= 0:
            raise ConfigurationError(
                f"source power must be > 0, got {source_power_n0}"
            )
        self.source_power_n0 = float(source_power_n0)

    # ------------------------------------------------------------------
    def noise_factor_from_power(self, output_power: float) -> float:
        """Estimate F from a measured output noise power (eq 4)."""
        if output_power <= 0:
            raise MeasurementError(
                f"output power must be > 0, got {output_power}"
            )
        factor = output_power / (self.source_power_n0 * self.assumed_power_gain)
        if factor < 1.0:
            raise MeasurementError(
                f"measured output power implies F={factor:.4f} < 1; the "
                "assumed gain or bandwidth is too large"
            )
        return factor

    def noise_figure_from_power(self, output_power: float) -> float:
        """NF in dB from a measured output power."""
        return f_to_nf(self.noise_factor_from_power(output_power))

    def measure(self, output_record: Union[Waveform, np.ndarray]) -> float:
        """NF in dB from a time-domain output noise record."""
        return self.noise_figure_from_power(mean_square(output_record))


def direct_method_gain_error_db(true_noise_factor: float, gain_drift: float) -> float:
    """NF estimation error of the direct method under gain drift (eq 10).

    If the actual chain power gain is ``drift`` times the assumed one, the
    estimated factor is ``F * drift``; the NF error in dB is therefore
    ``10*log10(drift)``, independent of the DUT.
    """
    if true_noise_factor < 1.0:
        raise ConfigurationError(
            f"noise factor must be >= 1, got {true_noise_factor}"
        )
    if gain_drift <= 0:
        raise ConfigurationError(f"gain drift must be > 0, got {gain_drift}")
    estimated = true_noise_factor * gain_drift
    return linear_to_db(estimated) - linear_to_db(true_noise_factor)
