"""Physical constants and dB/linear conversion helpers.

All noise-figure math in the paper is anchored on the IEEE standard
reference temperature ``T0 = 290 K`` and the Boltzmann constant ``k``
(equation 4 of the paper).
"""

from __future__ import annotations

import numpy as np

#: Boltzmann constant [J/K].
BOLTZMANN: float = 1.380649e-23

#: IEEE standard noise reference temperature [K] (290 K).
T0_KELVIN: float = 290.0

#: Convenience: 4*k*T0 [V^2/(Hz*ohm)] — Johnson noise density prefactor.
FOUR_K_T0: float = 4.0 * BOLTZMANN * T0_KELVIN


def linear_to_db(ratio):
    """Convert a linear *power* ratio to decibels (``10*log10``).

    Accepts scalars or arrays.  Raises ``ValueError`` for non-positive
    scalar input because a power ratio must be positive.
    """
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError(f"power ratio must be positive, got {ratio!r}")
    out = 10.0 * np.log10(arr)
    return float(out) if np.isscalar(ratio) or arr.ndim == 0 else out


def db_to_linear(db):
    """Convert decibels to a linear *power* ratio (``10**(db/10)``)."""
    arr = np.asarray(db, dtype=float)
    out = np.power(10.0, arr / 10.0)
    return float(out) if np.isscalar(db) or arr.ndim == 0 else out


def amplitude_to_db(ratio):
    """Convert a linear *amplitude* ratio to decibels (``20*log10``)."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError(f"amplitude ratio must be positive, got {ratio!r}")
    out = 20.0 * np.log10(arr)
    return float(out) if np.isscalar(ratio) or arr.ndim == 0 else out


def db_to_amplitude(db):
    """Convert decibels to a linear *amplitude* ratio (``10**(db/20)``)."""
    arr = np.asarray(db, dtype=float)
    out = np.power(10.0, arr / 20.0)
    return float(out) if np.isscalar(db) or arr.ndim == 0 else out
