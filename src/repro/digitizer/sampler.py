"""Sampling flip-flop (the D latch in figure 6).

The comparator output is resampled by the BIST clock.  The model supports
an integer clock divider relative to the simulation rate and random
sampling jitter expressed in simulation samples.
"""

from __future__ import annotations

import numpy as np

from repro.bitstream import (
    PackedBitstream,
    PackedRecordBatch,
    packed_words_required,
)
from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike, make_rng
from repro.signals.waveform import Waveform


class SampledLatch:
    """Resamples a comparator decision stream on a divided clock.

    Parameters
    ----------
    divider:
        The latch clock is ``simulation_rate / divider`` (integer >= 1).
    jitter_rms_samples:
        RMS timing jitter in units of simulation samples; each sampling
        instant is perturbed by a rounded Gaussian offset (clipped to the
        record).
    """

    def __init__(self, divider: int = 1, jitter_rms_samples: float = 0.0):
        if not isinstance(divider, (int, np.integer)) or divider < 1:
            raise ConfigurationError(
                f"divider must be an integer >= 1, got {divider!r}"
            )
        if jitter_rms_samples < 0:
            raise ConfigurationError(
                f"jitter must be >= 0, got {jitter_rms_samples}"
            )
        self.divider = int(divider)
        self.jitter_rms_samples = float(jitter_rms_samples)

    def sample(self, decisions: Waveform, rng: GeneratorLike = None) -> Waveform:
        """Latch the decision stream on the divided clock."""
        n = decisions.n_samples
        if n == 0:
            return Waveform(np.zeros(0), decisions.sample_rate / self.divider)
        indices = np.arange(0, n, self.divider)
        if self.jitter_rms_samples > 0:
            gen = make_rng(rng)
            jitter = np.rint(
                gen.normal(0.0, self.jitter_rms_samples, size=indices.size)
            ).astype(int)
            indices = np.clip(indices + jitter, 0, n - 1)
        samples = decisions.samples[indices]
        return Waveform(samples, decisions.sample_rate / self.divider)

    def sample_batch(self, decisions: np.ndarray, rngs=None) -> np.ndarray:
        """Latch a stack of decision records (batch form of :meth:`sample`).

        Row ``i`` is bit-exact equal to the scalar path with ``rngs[i]``
        (jitter, when enabled, draws from each record's generator).  The
        pass-through configuration (divider 1, no jitter) returns the
        input unchanged.
        """
        arr = np.asarray(decisions, dtype=float)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"decisions must be a 2-D array, got shape {arr.shape}"
            )
        n = arr.shape[-1]
        if n == 0:
            return arr
        if self.divider == 1 and self.jitter_rms_samples == 0:
            return arr
        indices = np.arange(0, n, self.divider)
        if self.jitter_rms_samples == 0:
            return arr[:, indices]
        if rngs is None:
            rngs = [None] * arr.shape[0]
        else:
            rngs = list(rngs)
            if len(rngs) != arr.shape[0]:
                raise ConfigurationError(
                    f"got {arr.shape[0]} records but {len(rngs)} generators"
                )
        out = np.empty((arr.shape[0], indices.size))
        for i, rng in enumerate(rngs):
            gen = make_rng(rng)
            jitter = np.rint(
                gen.normal(0.0, self.jitter_rms_samples, size=indices.size)
            ).astype(int)
            out[i] = arr[i, np.clip(indices + jitter, 0, n - 1)]
        return out

    # ------------------------------------------------------------------
    # Packed paths
    # ------------------------------------------------------------------
    def sample_packed(
        self, decisions: PackedBitstream, rng: GeneratorLike = None
    ) -> PackedBitstream:
        """Latch a packed decision stream (packed form of :meth:`sample`).

        Selecting latched bits happens on a transient 1-byte-per-sample
        bit view; the result is repacked, so unpacking it matches the
        float :meth:`sample` output bit-for-bit.  The pass-through
        configuration returns the input unchanged (zero copy).
        """
        n = decisions.n_samples
        out_rate = decisions.sample_rate / self.divider
        if n == 0:
            return PackedBitstream(
                np.zeros(0, dtype=np.uint8), 0, out_rate,
                provenance=decisions.provenance,
            )
        if self.divider == 1 and self.jitter_rms_samples == 0:
            return decisions
        indices = np.arange(0, n, self.divider)
        if self.jitter_rms_samples > 0:
            gen = make_rng(rng)
            jitter = np.rint(
                gen.normal(0.0, self.jitter_rms_samples, size=indices.size)
            ).astype(int)
            indices = np.clip(indices + jitter, 0, n - 1)
        latched = decisions.unpack_bits()[indices]
        return PackedBitstream.from_bits(
            latched, out_rate, provenance=decisions.provenance
        )

    def sample_batch_packed(
        self, decisions: PackedRecordBatch, rngs=None
    ) -> PackedRecordBatch:
        """Latch a packed decision batch (packed :meth:`sample_batch`).

        Row ``i`` is bit-exact equal to :meth:`sample_packed` of record
        ``i`` with ``rngs[i]``.
        """
        n = decisions.n_samples
        out_rate = decisions.sample_rate / self.divider
        if n == 0 or (self.divider == 1 and self.jitter_rms_samples == 0):
            if self.divider == 1:
                return decisions
            return PackedRecordBatch(
                decisions.words[:, :0], 0, out_rate,
                provenance=decisions.provenance, validate=False,
            )
        indices = np.arange(0, n, self.divider)
        if self.jitter_rms_samples == 0:
            # Per record, so the unpacked scratch stays one record wide
            # (a whole-batch unpack would cost 1 byte/sample across the
            # full stack — exactly what packing is meant to avoid).
            words = np.empty(
                (decisions.n_records, packed_words_required(indices.size)),
                dtype=np.uint8,
            )
            for i in range(decisions.n_records):
                words[i] = np.packbits(decisions[i].unpack_bits()[indices])
            return PackedRecordBatch(
                words,
                indices.size,
                out_rate,
                provenance=decisions.provenance,
                validate=False,
                copy=False,
            )
        if rngs is None:
            rngs = [None] * decisions.n_records
        else:
            rngs = list(rngs)
            if len(rngs) != decisions.n_records:
                raise ConfigurationError(
                    f"got {decisions.n_records} records but {len(rngs)} "
                    "generators"
                )
        words = np.empty(
            (decisions.n_records, packed_words_required(indices.size)),
            dtype=np.uint8,
        )
        for i, rng in enumerate(rngs):
            gen = make_rng(rng)
            jitter = np.rint(
                gen.normal(0.0, self.jitter_rms_samples, size=indices.size)
            ).astype(int)
            row_bits = decisions[i].unpack_bits()
            words[i] = np.packbits(
                row_bits[np.clip(indices + jitter, 0, n - 1)]
            )
        return PackedRecordBatch(
            words, indices.size, out_rate,
            provenance=decisions.provenance, validate=False, copy=False,
        )
