"""Sampling flip-flop (the D latch in figure 6).

The comparator output is resampled by the BIST clock.  The model supports
an integer clock divider relative to the simulation rate and random
sampling jitter expressed in simulation samples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike, make_rng
from repro.signals.waveform import Waveform


class SampledLatch:
    """Resamples a comparator decision stream on a divided clock.

    Parameters
    ----------
    divider:
        The latch clock is ``simulation_rate / divider`` (integer >= 1).
    jitter_rms_samples:
        RMS timing jitter in units of simulation samples; each sampling
        instant is perturbed by a rounded Gaussian offset (clipped to the
        record).
    """

    def __init__(self, divider: int = 1, jitter_rms_samples: float = 0.0):
        if not isinstance(divider, (int, np.integer)) or divider < 1:
            raise ConfigurationError(
                f"divider must be an integer >= 1, got {divider!r}"
            )
        if jitter_rms_samples < 0:
            raise ConfigurationError(
                f"jitter must be >= 0, got {jitter_rms_samples}"
            )
        self.divider = int(divider)
        self.jitter_rms_samples = float(jitter_rms_samples)

    def sample(self, decisions: Waveform, rng: GeneratorLike = None) -> Waveform:
        """Latch the decision stream on the divided clock."""
        n = decisions.n_samples
        if n == 0:
            return Waveform(np.zeros(0), decisions.sample_rate / self.divider)
        indices = np.arange(0, n, self.divider)
        if self.jitter_rms_samples > 0:
            gen = make_rng(rng)
            jitter = np.rint(
                gen.normal(0.0, self.jitter_rms_samples, size=indices.size)
            ).astype(int)
            indices = np.clip(indices + jitter, 0, n - 1)
        samples = decisions.samples[indices]
        return Waveform(samples, decisions.sample_rate / self.divider)

    def sample_batch(self, decisions: np.ndarray, rngs=None) -> np.ndarray:
        """Latch a stack of decision records (batch form of :meth:`sample`).

        Row ``i`` is bit-exact equal to the scalar path with ``rngs[i]``
        (jitter, when enabled, draws from each record's generator).  The
        pass-through configuration (divider 1, no jitter) returns the
        input unchanged.
        """
        arr = np.asarray(decisions, dtype=float)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"decisions must be a 2-D array, got shape {arr.shape}"
            )
        n = arr.shape[-1]
        if n == 0:
            return arr
        if self.divider == 1 and self.jitter_rms_samples == 0:
            return arr
        indices = np.arange(0, n, self.divider)
        if self.jitter_rms_samples == 0:
            return arr[:, indices]
        if rngs is None:
            rngs = [None] * arr.shape[0]
        else:
            rngs = list(rngs)
            if len(rngs) != arr.shape[0]:
                raise ConfigurationError(
                    f"got {arr.shape[0]} records but {len(rngs)} generators"
                )
        out = np.empty((arr.shape[0], indices.size))
        for i, rng in enumerate(rngs):
            gen = make_rng(rng)
            jitter = np.rint(
                gen.normal(0.0, self.jitter_rms_samples, size=indices.size)
            ).astype(int)
            out[i] = arr[i, np.clip(indices + jitter, 0, n - 1)]
        return out
