"""Voltage comparator model.

The ideal comparator outputs ``sign(signal - reference)``; the model adds
the non-idealities that matter for a BIST cell on silicon: input-referred
offset, input noise and hysteresis.  Hysteresis makes the decision
state-dependent, so that path is evaluated sequentially; the common
zero-hysteresis case is fully vectorized.

Decisions can be emitted either as float ``+/-1`` arrays (the legacy
representation) or bit-packed (``packed=True``) — one bit per decision,
exactly what the hardware flip-flop chain stores.  The packed output is
produced from the same thresholded comparison, so unpacking it yields
the float path's values bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.bitstream import (
    PackedBitstream,
    PackedRecordBatch,
    packed_words_required,
)
from repro.buffers import default_pool
from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike, make_rng
from repro.signals.waveform import Waveform


class Comparator:
    """A voltage comparator with offset, input noise and hysteresis.

    Parameters
    ----------
    offset_v:
        Input-referred offset voltage added to the comparison.
    input_noise_rms:
        RMS of the comparator's own input-referred noise (adds to the
        dither already present in the signal path).
    hysteresis_v:
        Full hysteresis width; the switching thresholds sit at
        ``+/- hysteresis_v / 2`` around the nominal crossing.
    """

    def __init__(
        self,
        offset_v: float = 0.0,
        input_noise_rms: float = 0.0,
        hysteresis_v: float = 0.0,
    ):
        if input_noise_rms < 0:
            raise ConfigurationError(
                f"input noise RMS must be >= 0, got {input_noise_rms}"
            )
        if hysteresis_v < 0:
            raise ConfigurationError(
                f"hysteresis must be >= 0, got {hysteresis_v}"
            )
        self.offset_v = float(offset_v)
        self.input_noise_rms = float(input_noise_rms)
        self.hysteresis_v = float(hysteresis_v)

    def compare(
        self,
        signal: Waveform,
        reference: Waveform,
        rng: GeneratorLike = None,
        packed: bool = False,
    ) -> Union[Waveform, PackedBitstream]:
        """Return the +/-1 comparator decision stream.

        ``signal`` and ``reference`` must share sample rate and length.
        Exact zero differences resolve to +1 (deterministic tie-break).
        With ``packed`` the decisions come back bit-packed
        (:class:`~repro.bitstream.PackedBitstream`, 1 bit/decision)
        instead of as a float waveform; unpacking reproduces the float
        output exactly.
        """
        if signal.sample_rate != reference.sample_rate:
            raise ConfigurationError(
                "signal/reference sample-rate mismatch: "
                f"{signal.sample_rate} vs {reference.sample_rate} Hz"
            )
        if signal.n_samples != reference.n_samples:
            raise ConfigurationError(
                "signal/reference length mismatch: "
                f"{signal.n_samples} vs {reference.n_samples} samples"
            )
        diff = signal.samples - reference.samples + self.offset_v
        if self.input_noise_rms > 0:
            gen = make_rng(rng)
            diff = diff + gen.normal(0.0, self.input_noise_rms, size=diff.size)

        if self.hysteresis_v == 0.0:
            if packed:
                return PackedBitstream.from_bits(
                    diff >= 0.0, signal.sample_rate
                )
            bits = np.where(diff >= 0.0, 1.0, -1.0)
        else:
            decisions = self._compare_with_hysteresis(diff)
            if packed:
                return PackedBitstream.from_bits(
                    decisions > 0, signal.sample_rate
                )
            bits = decisions
        return Waveform(bits, signal.sample_rate)

    def compare_batch(
        self,
        signals: np.ndarray,
        reference: np.ndarray,
        rngs=None,
        overwrite_input: bool = False,
        packed: bool = False,
        sample_rate: Optional[float] = None,
    ) -> Union[np.ndarray, PackedRecordBatch]:
        """Batch decision: stacked signals against a reference.

        ``signals`` is ``(n_records, n_samples)``; ``reference`` is a
        1-D array broadcast across records, or a ``(n_records,
        n_samples)`` stack supplying one reference row per record (the
        multi-device case, where each DUT's bench sizes its own
        reference amplitude).  Row ``i`` is bit-exact equal to the
        scalar :meth:`compare` of record ``i`` with ``rngs[i]`` (the
        comparator's own input noise, when enabled, draws from each
        record's generator).

        Records are processed row by row through one pooled scratch
        row — at paper scale a whole-batch broadcast would churn
        hundreds of megabytes of fresh pages.  With ``overwrite_input``
        the float decisions are written back into ``signals`` (valid
        when the caller owns the array and is done with the analog
        samples).  With ``packed`` the decisions come back as a
        :class:`~repro.bitstream.PackedRecordBatch` (1 bit/decision,
        carrying ``sample_rate``) and the input is never modified.
        """
        sig = np.asarray(signals, dtype=float)
        ref = np.asarray(reference, dtype=float)
        if sig.ndim != 2 or ref.ndim not in (1, 2):
            raise ConfigurationError(
                f"need (n_records, n) signals and 1-D or 2-D reference, got "
                f"{sig.shape} and {ref.shape}"
            )
        if ref.ndim == 2 and ref.shape[0] != sig.shape[0]:
            raise ConfigurationError(
                f"got {sig.shape[0]} records but {ref.shape[0]} reference "
                "rows"
            )
        if sig.shape[-1] != ref.shape[-1]:
            raise ConfigurationError(
                "signal/reference length mismatch: "
                f"{sig.shape[-1]} vs {ref.shape[-1]} samples"
            )
        if rngs is None:
            rngs = [None] * sig.shape[0]
        else:
            rngs = list(rngs)
            if len(rngs) != sig.shape[0]:
                raise ConfigurationError(
                    f"got {sig.shape[0]} records but {len(rngs)} generators"
                )
        n = sig.shape[-1]
        if packed:
            if sample_rate is None or sample_rate <= 0:
                raise ConfigurationError(
                    "packed decisions need the sample_rate the batch "
                    f"carries, got {sample_rate!r}"
                )
            words = np.empty(
                (sig.shape[0], packed_words_required(n)), dtype=np.uint8
            )
            bits = None
        else:
            bits = (
                sig if (overwrite_input and sig is signals)
                else np.empty_like(sig)
            )
        diff = default_pool.take("comparator.diff", n)
        for i, rng in enumerate(rngs):
            row_ref = ref if ref.ndim == 1 else ref[i]
            np.subtract(sig[i], row_ref, out=diff)
            if self.offset_v != 0.0:
                diff += self.offset_v
            if self.input_noise_rms > 0:
                gen = make_rng(rng)
                diff += gen.normal(0.0, self.input_noise_rms, size=n)
            if self.hysteresis_v == 0.0:
                if packed:
                    words[i] = np.packbits(diff >= 0.0)
                else:
                    bits[i] = np.where(diff >= 0.0, 1.0, -1.0)
            else:
                decisions = self._compare_with_hysteresis(diff)
                if packed:
                    words[i] = np.packbits(decisions > 0)
                else:
                    bits[i] = decisions
        if packed:
            return PackedRecordBatch(
                words, n, sample_rate, validate=False, copy=False
            )
        return bits

    def _compare_with_hysteresis(self, diff: np.ndarray) -> np.ndarray:
        """Sequential Schmitt-trigger evaluation."""
        half = self.hysteresis_v / 2.0
        bits = np.empty(diff.size)
        state = 1.0 if diff.size and diff[0] >= 0.0 else -1.0
        for i, value in enumerate(diff):
            if state > 0:
                if value < -half:
                    state = -1.0
            else:
                if value > half:
                    state = 1.0
            bits[i] = state
        return bits
