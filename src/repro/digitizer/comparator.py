"""Voltage comparator model.

The ideal comparator outputs ``sign(signal - reference)``; the model adds
the non-idealities that matter for a BIST cell on silicon: input-referred
offset, input noise and hysteresis.  Hysteresis makes the decision
state-dependent, so that path is evaluated sequentially; the common
zero-hysteresis case is fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike, make_rng
from repro.signals.waveform import Waveform


class Comparator:
    """A voltage comparator with offset, input noise and hysteresis.

    Parameters
    ----------
    offset_v:
        Input-referred offset voltage added to the comparison.
    input_noise_rms:
        RMS of the comparator's own input-referred noise (adds to the
        dither already present in the signal path).
    hysteresis_v:
        Full hysteresis width; the switching thresholds sit at
        ``+/- hysteresis_v / 2`` around the nominal crossing.
    """

    def __init__(
        self,
        offset_v: float = 0.0,
        input_noise_rms: float = 0.0,
        hysteresis_v: float = 0.0,
    ):
        if input_noise_rms < 0:
            raise ConfigurationError(
                f"input noise RMS must be >= 0, got {input_noise_rms}"
            )
        if hysteresis_v < 0:
            raise ConfigurationError(
                f"hysteresis must be >= 0, got {hysteresis_v}"
            )
        self.offset_v = float(offset_v)
        self.input_noise_rms = float(input_noise_rms)
        self.hysteresis_v = float(hysteresis_v)

    def compare(
        self,
        signal: Waveform,
        reference: Waveform,
        rng: GeneratorLike = None,
    ) -> Waveform:
        """Return the +/-1 comparator decision waveform.

        ``signal`` and ``reference`` must share sample rate and length.
        Exact zero differences resolve to +1 (deterministic tie-break).
        """
        if signal.sample_rate != reference.sample_rate:
            raise ConfigurationError(
                "signal/reference sample-rate mismatch: "
                f"{signal.sample_rate} vs {reference.sample_rate} Hz"
            )
        if signal.n_samples != reference.n_samples:
            raise ConfigurationError(
                "signal/reference length mismatch: "
                f"{signal.n_samples} vs {reference.n_samples} samples"
            )
        diff = signal.samples - reference.samples + self.offset_v
        if self.input_noise_rms > 0:
            gen = make_rng(rng)
            diff = diff + gen.normal(0.0, self.input_noise_rms, size=diff.size)

        if self.hysteresis_v == 0.0:
            bits = np.where(diff >= 0.0, 1.0, -1.0)
        else:
            bits = self._compare_with_hysteresis(diff)
        return Waveform(bits, signal.sample_rate)

    def compare_batch(
        self,
        signals: np.ndarray,
        reference: np.ndarray,
        rngs=None,
        overwrite_input: bool = False,
    ) -> np.ndarray:
        """Batch decision: stacked signals against one shared reference.

        ``signals`` is ``(n_records, n_samples)`` and ``reference`` a
        1-D array broadcast across records.  Row ``i`` is bit-exact
        equal to the scalar :meth:`compare` of record ``i`` with
        ``rngs[i]`` (the comparator's own input noise, when enabled,
        draws from each record's generator).

        Records are processed row by row through one recycled scratch
        buffer — at paper scale a whole-batch broadcast would churn
        hundreds of megabytes of fresh pages.  With ``overwrite_input``
        the decisions are written back into ``signals`` (valid when the
        caller owns the array and is done with the analog samples).
        """
        sig = np.asarray(signals, dtype=float)
        ref = np.asarray(reference, dtype=float)
        if sig.ndim != 2 or ref.ndim != 1:
            raise ConfigurationError(
                f"need (n_records, n) signals and 1-D reference, got "
                f"{sig.shape} and {ref.shape}"
            )
        if sig.shape[-1] != ref.size:
            raise ConfigurationError(
                "signal/reference length mismatch: "
                f"{sig.shape[-1]} vs {ref.size} samples"
            )
        if rngs is None:
            rngs = [None] * sig.shape[0]
        else:
            rngs = list(rngs)
            if len(rngs) != sig.shape[0]:
                raise ConfigurationError(
                    f"got {sig.shape[0]} records but {len(rngs)} generators"
                )
        bits = sig if (overwrite_input and sig is signals) else np.empty_like(sig)
        diff = np.empty(ref.size)
        for i, rng in enumerate(rngs):
            np.subtract(sig[i], ref, out=diff)
            if self.offset_v != 0.0:
                diff += self.offset_v
            if self.input_noise_rms > 0:
                gen = make_rng(rng)
                diff += gen.normal(0.0, self.input_noise_rms, size=ref.size)
            if self.hysteresis_v == 0.0:
                bits[i] = np.where(diff >= 0.0, 1.0, -1.0)
            else:
                bits[i] = self._compare_with_hysteresis(diff)
        return bits

    def _compare_with_hysteresis(self, diff: np.ndarray) -> np.ndarray:
        """Sequential Schmitt-trigger evaluation."""
        half = self.hysteresis_v / 2.0
        bits = np.empty(diff.size)
        state = 1.0 if diff.size and diff[0] >= 0.0 else -1.0
        for i, value in enumerate(diff):
            if state > 0:
                if value < -half:
                    state = -1.0
            else:
                if value > half:
                    state = 1.0
            bits[i] = state
        return bits
