"""The paper's 1-bit digitizer (figures 5-6).

A voltage comparator compares the analog test-point signal against a
reference waveform; a flip-flop samples the comparator output.  Because of
the arcsine law the statistics of the analog input survive the 1-bit
quantization up to a known nonlinearity, which is the theoretical basis of
the whole method (paper section 5.1, eq 12).
"""

from repro.digitizer.arcsine import (
    arcsine_law,
    corrected_psd,
    line_coherent_gain,
    van_vleck_inverse,
)
from repro.digitizer.comparator import Comparator
from repro.digitizer.digitizer import OneBitDigitizer
from repro.digitizer.sampler import SampledLatch

__all__ = [
    "Comparator",
    "SampledLatch",
    "OneBitDigitizer",
    "arcsine_law",
    "van_vleck_inverse",
    "line_coherent_gain",
    "corrected_psd",
]
