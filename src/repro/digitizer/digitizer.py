"""The assembled 1-bit digitizer (comparator + sampling latch, figure 6)."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.bitstream import (
    PackedBitstream,
    PackedRecordBatch,
    RecordProvenance,
)
from repro.digitizer.comparator import Comparator
from repro.digitizer.sampler import SampledLatch
from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.signals.waveform import Waveform


class OneBitDigitizer:
    """Low-cost 1-bit digitizer: ``bit[n] = sign(signal[n] - reference[n])``.

    Parameters
    ----------
    comparator:
        Comparator model (ideal by default).
    sampler:
        Sampling latch (pass-through by default).

    Notes
    -----
    The paper requires the noise amplitude at the test point to be greater
    than or equal to the reference amplitude and both to share the same DC
    level (section 5.1); :meth:`level_ratio` lets callers check the
    recommended 10-40 % window of figure 10.
    """

    def __init__(
        self,
        comparator: Optional[Comparator] = None,
        sampler: Optional[SampledLatch] = None,
    ):
        self.comparator = comparator if comparator is not None else Comparator()
        self.sampler = sampler if sampler is not None else SampledLatch()
        if not isinstance(self.comparator, Comparator):
            raise ConfigurationError(
                f"comparator must be a Comparator, got "
                f"{type(self.comparator).__name__}"
            )
        if not isinstance(self.sampler, SampledLatch):
            raise ConfigurationError(
                f"sampler must be a SampledLatch, got {type(self.sampler).__name__}"
            )

    def digitize(
        self,
        signal: Waveform,
        reference: Waveform,
        rng: GeneratorLike = None,
        packed: bool = False,
    ) -> Union[Waveform, PackedBitstream]:
        """Digitize ``signal`` against ``reference`` into a +/-1 bitstream.

        With ``packed`` the bitstream comes back as a
        :class:`~repro.bitstream.PackedBitstream` (1 bit/sample, with
        spawn-seeded provenance) whose unpacked samples equal the float
        output bit-for-bit.
        """
        gen = make_rng(rng)
        comp_rng, latch_rng = spawn_rngs(gen, 2)
        if packed:
            decisions = self.comparator.compare(
                signal, reference, comp_rng, packed=True
            )
            latched = self.sampler.sample_packed(decisions, latch_rng)
            return PackedBitstream(
                latched.words,
                latched.n_samples,
                latched.sample_rate,
                provenance=RecordProvenance.from_rng(gen),
                validate=False,
            )
        decisions = self.comparator.compare(signal, reference, comp_rng)
        return self.sampler.sample(decisions, latch_rng)

    def digitize_batch(
        self,
        signals: np.ndarray,
        reference: np.ndarray,
        sample_rate: float,
        rngs=None,
        overwrite_input: bool = False,
        packed: bool = False,
        provenance: Optional[Sequence[Optional[RecordProvenance]]] = None,
        rng_mode: str = "compat",
    ) -> Union[np.ndarray, PackedRecordBatch]:
        """Digitize stacked records against a reference.

        ``signals`` is ``(n_records, n_samples)``; ``reference`` is a
        shared 1-D reference or a ``(n_records, n_samples)`` stack with
        one reference row per record (multi-device batches, where every
        DUT sizes its own reference amplitude).  ``rngs`` supplies one
        generator per record.  Row ``i`` is bit-exact equal to
        :meth:`digitize` of record ``i`` with ``rngs[i]`` — the per-record
        child generators for comparator noise and latch jitter are
        spawned exactly as in the scalar path.  The output sample rate is
        ``sample_rate / divider`` (see :attr:`output_sample_rate_factor`).
        With ``overwrite_input`` the comparator reuses the signal array
        for its float decisions (pass True only when the analog samples
        are dead after this call).  With ``packed`` the batch comes back
        as a :class:`~repro.bitstream.PackedRecordBatch` (1 bit/sample)
        and the input is never modified.  ``rng_mode`` is recorded in
        the default per-record provenance — callers whose *analog*
        records were synthesized on counter streams pass ``"philox"``
        so the stored seed identity names the stream that actually
        drew the record.
        """
        sig = np.asarray(signals, dtype=float)
        if sig.ndim != 2:
            raise ConfigurationError(
                f"signals must be a 2-D array, got shape {sig.shape}"
            )
        if sample_rate <= 0:
            raise ConfigurationError(
                f"sample rate must be > 0, got {sample_rate}"
            )
        if rngs is None:
            rngs = [None] * sig.shape[0]
        rngs = list(rngs)
        if len(rngs) != sig.shape[0]:
            raise ConfigurationError(
                f"got {sig.shape[0]} records but {len(rngs)} generators"
            )
        gens = [make_rng(rng) for rng in rngs]
        comp_rngs = []
        latch_rngs = []
        for gen in gens:
            comp_rng, latch_rng = spawn_rngs(gen, 2)
            comp_rngs.append(comp_rng)
            latch_rngs.append(latch_rng)
        if packed:
            decisions = self.comparator.compare_batch(
                sig,
                reference,
                comp_rngs,
                packed=True,
                sample_rate=float(sample_rate),
            )
            latched = self.sampler.sample_batch_packed(decisions, latch_rngs)
            if provenance is None:
                # From the generators that actually drove this record's
                # comparator/latch spawns, so the seed identity is real.
                provenance = [
                    RecordProvenance.from_rng(gen, rng_mode=rng_mode)
                    for gen in gens
                ]
            return PackedRecordBatch(
                latched.words,
                latched.n_samples,
                latched.sample_rate,
                provenance=provenance,
                validate=False,
            )
        decisions = self.comparator.compare_batch(
            sig, reference, comp_rngs, overwrite_input=overwrite_input
        )
        return self.sampler.sample_batch(decisions, latch_rngs)

    @staticmethod
    def level_ratio(signal: Waveform, reference: Waveform) -> float:
        """Reference-to-noise amplitude ratio ``Vref_peak / Vnoise_rms``.

        Figure 10 of the paper recommends keeping this between roughly
        0.1 and 0.4 for accurate power-ratio estimates.
        """
        noise_rms = signal.std()
        if noise_rms == 0:
            raise ConfigurationError("signal has zero AC power")
        return reference.peak() / noise_rms

    @property
    def output_sample_rate_factor(self) -> float:
        """Output rate relative to the simulation rate (1/divider)."""
        return 1.0 / self.sampler.divider
