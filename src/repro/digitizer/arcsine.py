"""Arcsine-law statistics of hard-limited Gaussian processes (paper eq 12).

For a zero-mean stationary Gaussian input with normalized autocorrelation
``rho_x``, the hard limiter output has autocorrelation

``R_y(tau) = (2/pi) * arcsin(rho_x(tau))``

(Van Vleck & Middleton).  The inverse mapping recovers the analog
statistics from the bitstream — an optional correction step the paper
skips because the small-argument regime is approximately linear.

A small deterministic line of amplitude ``A`` in Gaussian noise of std
``sigma`` survives limiting with coherent amplitude gain
``sqrt(2/pi)/sigma`` (the derivative of ``E[sign(n+a)] = 2*Phi(a/sigma)-1``
at ``a=0``), which is the scale the reference-waveform normalization
cancels out.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.autocorr import autocorrelation
from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


def arcsine_law(rho):
    """Hard-limiter output autocorrelation ``(2/pi)*arcsin(rho)``.

    ``rho`` must lie in ``[-1, 1]``; values within 1e-9 outside are
    clipped (estimation round-off), anything further raises.
    """
    arr = np.asarray(rho, dtype=float)
    if np.any(np.abs(arr) > 1.0 + 1e-9):
        raise ConfigurationError(
            "normalized autocorrelation must lie in [-1, 1], got values up "
            f"to {np.max(np.abs(arr))}"
        )
    clipped = np.clip(arr, -1.0, 1.0)
    out = (2.0 / np.pi) * np.arcsin(clipped)
    return float(out) if arr.ndim == 0 else out


def van_vleck_inverse(r_onebit):
    """Invert the arcsine law: ``rho_x = sin(pi/2 * R_y)``.

    ``R_y`` is the +/-1 bitstream autocorrelation (``R_y(0) == 1``).
    """
    arr = np.asarray(r_onebit, dtype=float)
    if np.any(np.abs(arr) > 1.0 + 1e-9):
        raise ConfigurationError(
            "one-bit autocorrelation must lie in [-1, 1], got values up to "
            f"{np.max(np.abs(arr))}"
        )
    clipped = np.clip(arr, -1.0, 1.0)
    out = np.sin(np.pi / 2.0 * clipped)
    return float(out) if arr.ndim == 0 else out


def line_coherent_gain(noise_rms: float) -> float:
    """Amplitude gain of a small line through the limiter: ``sqrt(2/pi)/sigma``."""
    if noise_rms <= 0:
        raise ConfigurationError(f"noise RMS must be > 0, got {noise_rms}")
    return float(np.sqrt(2.0 / np.pi) / noise_rms)


def corrected_psd(
    bitstream: Waveform,
    max_lag: int,
    window: str = "hann",
) -> Spectrum:
    """Van Vleck-corrected PSD of a 1-bit stream (Blackman-Tukey).

    The bitstream autocorrelation is inverted through the arcsine law and
    transformed with a lag window, producing the *normalized* analog PSD
    shape (total power 1).  This is the optional correction the paper
    omits; the ablation bench quantifies when the linear approximation is
    adequate.
    """
    if max_lag < 2:
        raise ConfigurationError(f"max_lag must be >= 2, got {max_lag}")
    if max_lag >= bitstream.n_samples:
        raise ConfigurationError(
            f"max_lag {max_lag} must be below the record length "
            f"{bitstream.n_samples}"
        )
    r_bits = autocorrelation(bitstream, max_lag, remove_mean=False)
    r0 = r_bits[0]
    if r0 <= 0:
        raise ConfigurationError("bitstream has zero power")
    rho_analog = van_vleck_inverse(r_bits / r0)

    # Blackman-Tukey: window the lag sequence, transform.
    from repro.dsp.windows import get_window

    full = get_window(window, 2 * max_lag + 1)
    lag_window = full[max_lag:]
    windowed = rho_analog * lag_window

    # Build the symmetric lag sequence and transform to a one-sided PSD.
    sym = np.concatenate([windowed, windowed[1:-1][::-1]])
    psd_two_sided = np.real(np.fft.rfft(sym)) / bitstream.sample_rate
    psd = np.maximum(psd_two_sided, 0.0)
    psd[1:-1] *= 2.0
    freqs = np.fft.rfftfreq(sym.size, d=1.0 / bitstream.sample_rate)
    df = freqs[1] - freqs[0]
    return Spectrum(freqs, psd, enbw_hz=df)
