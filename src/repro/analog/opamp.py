"""Opamp input-referred noise models and the Table 3 device library.

Each opamp is described by its white input voltage-noise density ``en``
(V/sqrt(Hz)) with a 1/f corner, its input current-noise density ``in``
(A/sqrt(Hz)) with its own corner, and the gain-bandwidth product that sets
the closed-loop pole.  The spot densities follow the standard datasheet
model ``en^2(f) = en^2 * (1 + fce/f)``.

Two construction paths exist, mirroring DESIGN.md section 2:

* :data:`OPAMP_LIBRARY` — typical datasheet values for the four devices of
  the paper's Table 3 (OP27, OP07, TL081, CA3140);
* :meth:`OpAmpNoiseModel.from_expected_nf` — synthesize a device whose
  *analytical* noise figure in a given circuit equals a target value, used
  to reproduce the paper's "expected" column whose exact circuit-analysis
  inputs are not published.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

import numpy as np

from repro.constants import FOUR_K_T0, db_to_linear
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OpAmpNoiseModel:
    """Input-referred opamp noise model.

    Parameters
    ----------
    name:
        Device label.
    en_v_per_rthz:
        White input voltage noise density in V/sqrt(Hz).
    in_a_per_rthz:
        White input current noise density in A/sqrt(Hz) (both inputs).
    en_corner_hz:
        1/f corner of the voltage noise (0 disables the 1/f term).
    in_corner_hz:
        1/f corner of the current noise.
    gbw_hz:
        Gain-bandwidth product in Hz.
    """

    name: str
    en_v_per_rthz: float
    in_a_per_rthz: float
    en_corner_hz: float = 0.0
    in_corner_hz: float = 0.0
    gbw_hz: float = 1e6

    def __post_init__(self):
        if self.en_v_per_rthz < 0:
            raise ConfigurationError(f"en must be >= 0, got {self.en_v_per_rthz}")
        if self.in_a_per_rthz < 0:
            raise ConfigurationError(f"in must be >= 0, got {self.in_a_per_rthz}")
        if self.en_corner_hz < 0 or self.in_corner_hz < 0:
            raise ConfigurationError("1/f corners must be >= 0")
        if self.gbw_hz <= 0:
            raise ConfigurationError(f"GBW must be > 0, got {self.gbw_hz}")

    # ------------------------------------------------------------------
    def en_density(self, freqs_hz) -> np.ndarray:
        """Voltage-noise PSD ``en^2 * (1 + fce/f)`` in V^2/Hz."""
        f = np.maximum(np.asarray(freqs_hz, dtype=float), 1e-3)
        return self.en_v_per_rthz**2 * (1.0 + self.en_corner_hz / f)

    def in_density(self, freqs_hz) -> np.ndarray:
        """Current-noise PSD ``in^2 * (1 + fci/f)`` in A^2/Hz."""
        f = np.maximum(np.asarray(freqs_hz, dtype=float), 1e-3)
        return self.in_a_per_rthz**2 * (1.0 + self.in_corner_hz / f)

    def with_name(self, name: str) -> "OpAmpNoiseModel":
        """Return a renamed copy."""
        return replace(self, name=name)

    # ------------------------------------------------------------------
    @classmethod
    def from_expected_nf(
        cls,
        nf_db: float,
        source_resistance_ohm: float,
        feedback_parallel_ohm: float = 0.0,
        in_a_per_rthz: float = 0.0,
        gbw_hz: float = 4e6,
        name: str = "",
    ) -> "OpAmpNoiseModel":
        """Synthesize an opamp whose mid-band NF equals ``nf_db``.

        Solves ``F = 1 + (en^2 + in^2*(Rs^2+Rp^2) + 4kT0*Rp) / (4kT0*Rs)``
        for the white ``en``, ignoring 1/f corners (the synthesized model
        is white).  Raises if the target is unreachable because the fixed
        current-noise and feedback-network terms already exceed it.
        """
        if source_resistance_ohm <= 0:
            raise ConfigurationError(
                f"source resistance must be > 0, got {source_resistance_ohm}"
            )
        if feedback_parallel_ohm < 0:
            raise ConfigurationError(
                f"feedback parallel resistance must be >= 0, got "
                f"{feedback_parallel_ohm}"
            )
        factor = db_to_linear(nf_db)
        if factor < 1.0:
            raise ConfigurationError(f"target NF must be >= 0 dB, got {nf_db}")
        source_density = FOUR_K_T0 * source_resistance_ohm
        fixed = (
            in_a_per_rthz**2
            * (source_resistance_ohm**2 + feedback_parallel_ohm**2)
            + FOUR_K_T0 * feedback_parallel_ohm
        )
        en_squared = (factor - 1.0) * source_density - fixed
        if en_squared < 0:
            raise ConfigurationError(
                f"target NF {nf_db} dB unreachable: fixed noise terms alone "
                f"exceed the budget by {-en_squared:.3e} V^2/Hz"
            )
        label = name or f"synthetic_nf{nf_db:g}dB"
        return cls(
            name=label,
            en_v_per_rthz=float(np.sqrt(en_squared)),
            in_a_per_rthz=float(in_a_per_rthz),
            gbw_hz=gbw_hz,
        )


#: Typical datasheet noise parameters for the paper's Table 3 devices.
OPAMP_LIBRARY: Dict[str, OpAmpNoiseModel] = {
    "OP27": OpAmpNoiseModel(
        name="OP27",
        en_v_per_rthz=3.0e-9,
        in_a_per_rthz=0.4e-12,
        en_corner_hz=2.7,
        in_corner_hz=140.0,
        gbw_hz=8e6,
    ),
    "OP07": OpAmpNoiseModel(
        name="OP07",
        en_v_per_rthz=9.6e-9,
        in_a_per_rthz=0.12e-12,
        en_corner_hz=10.0,
        in_corner_hz=100.0,
        gbw_hz=0.6e6,
    ),
    "TL081": OpAmpNoiseModel(
        name="TL081",
        en_v_per_rthz=18.0e-9,
        in_a_per_rthz=0.01e-12,
        en_corner_hz=300.0,
        in_corner_hz=0.0,
        gbw_hz=3e6,
    ),
    "CA3140": OpAmpNoiseModel(
        name="CA3140",
        en_v_per_rthz=35.0e-9,
        in_a_per_rthz=0.002e-12,
        en_corner_hz=200.0,
        in_corner_hz=0.0,
        gbw_hz=4.5e6,
    ),
}
