"""Calibrated hot/cold noise source for the Y-factor method (figure 4).

Physically this models the chain *noise generator -> programmable
attenuator -> source resistor*: with the generator off the source delivers
plain Johnson noise at the cold temperature (290 K in the prototype); with
the generator on, the total source noise corresponds to a known hot
equivalent temperature (2900 K in Table 3, 10000 K in Table 2).

The optional ``hot_level_error`` models the calibration uncertainty
analyzed in the paper's reference [6] (a 5 % hot-temperature error keeps
NF within about +/-0.3 dB for 3-10 dB devices) — see
:mod:`repro.core.uncertainty`.
"""

from __future__ import annotations

import numpy as np

from repro.constants import BOLTZMANN, T0_KELVIN
from repro.errors import ConfigurationError
from repro.signals.batch_rng import white_noise_matrix
from repro.signals.random import GeneratorLike
from repro.signals.sources import GaussianNoiseSource
from repro.signals.thermal import temperature_from_enr_db
from repro.signals.waveform import Waveform

_VALID_STATES = ("hot", "cold")


class CalibratedNoiseSource:
    """Two-state (hot/cold) Gaussian noise source with known temperatures.

    Parameters
    ----------
    source_resistance_ohm:
        The source resistance whose Johnson noise carries the calibrated
        temperature.
    t_hot_k / t_cold_k:
        Equivalent noise temperatures of the two states.
    hot_level_error:
        Relative error of the *actual* hot temperature versus the
        calibrated value (e.g. ``0.05`` renders hot noise 5 % hotter than
        the temperature reported to the estimator).
    """

    def __init__(
        self,
        source_resistance_ohm: float,
        t_hot_k: float,
        t_cold_k: float = T0_KELVIN,
        hot_level_error: float = 0.0,
        name: str = "noise_source",
    ):
        if source_resistance_ohm <= 0:
            raise ConfigurationError(
                f"source resistance must be > 0, got {source_resistance_ohm}"
            )
        if t_cold_k < 0:
            raise ConfigurationError(f"cold temperature must be >= 0 K, got {t_cold_k}")
        if t_hot_k <= t_cold_k:
            raise ConfigurationError(
                f"hot temperature ({t_hot_k} K) must exceed cold ({t_cold_k} K)"
            )
        if hot_level_error <= -1.0:
            raise ConfigurationError(
                f"hot_level_error must be > -1, got {hot_level_error}"
            )
        self.source_resistance_ohm = float(source_resistance_ohm)
        self.t_hot_k = float(t_hot_k)
        self.t_cold_k = float(t_cold_k)
        self.hot_level_error = float(hot_level_error)
        self.name = name

    # ------------------------------------------------------------------
    @classmethod
    def from_enr_db(
        cls,
        source_resistance_ohm: float,
        enr_db: float,
        t_cold_k: float = T0_KELVIN,
        hot_level_error: float = 0.0,
    ) -> "CalibratedNoiseSource":
        """Build from an excess-noise-ratio calibration figure."""
        return cls(
            source_resistance_ohm,
            temperature_from_enr_db(enr_db),
            t_cold_k,
            hot_level_error,
        )

    # ------------------------------------------------------------------
    def calibrated_temperature(self, state: str) -> float:
        """The temperature the estimator is *told* (calibration value)."""
        self._check_state(state)
        return self.t_hot_k if state == "hot" else self.t_cold_k

    def actual_temperature(self, state: str) -> float:
        """The temperature actually rendered (includes hot-level error)."""
        self._check_state(state)
        if state == "hot":
            return self.t_hot_k * (1.0 + self.hot_level_error)
        return self.t_cold_k

    def density(self, state: str) -> float:
        """Actual one-sided source noise density ``4kT*Rs`` in V^2/Hz."""
        return (
            4.0
            * BOLTZMANN
            * self.actual_temperature(state)
            * self.source_resistance_ohm
        )

    def render(
        self,
        state: str,
        n_samples: int,
        sample_rate: float,
        rng: GeneratorLike = None,
    ) -> Waveform:
        """Render the source noise waveform for one state."""
        source = GaussianNoiseSource.from_density(self.density(state), sample_rate)
        return source.render(n_samples, sample_rate, rng)

    def render_batch(
        self,
        states,
        n_samples: int,
        sample_rate: float,
        rngs,
        rng_mode: str = "compat",
    ) -> np.ndarray:
        """Render one record per ``(state, rng)`` pair as a stacked array.

        ``states`` and ``rngs`` are equal-length sequences; in compat
        mode row ``i`` is bit-exact equal to ``render(states[i], ...,
        rngs[i])`` so a hot/cold pair (or a whole repeat batch) can be
        generated in one call without losing per-record
        reproducibility.  ``rng_mode="philox"`` fills the stack from
        per-record counter streams instead (deterministic, not
        bit-identical; see :mod:`repro.signals.batch_rng`) — the
        per-state densities ride along as a per-row scale vector.
        """
        states = list(states)
        rngs = list(rngs)
        if len(states) != len(rngs):
            raise ConfigurationError(
                f"got {len(states)} states but {len(rngs)} generators"
            )
        sources = {
            state: GaussianNoiseSource.from_density(
                self.density(state), sample_rate
            )
            for state in set(states)
        }
        rms_rows = np.array([sources[state].rms for state in states])
        return white_noise_matrix(
            rngs, n_samples, scale=rms_rows, rng_mode=rng_mode
        )

    @property
    def y_factor_true(self) -> float:
        """Source-only power ratio ``Th/Tc`` (before any DUT noise)."""
        return self.t_hot_k / self.t_cold_k

    @staticmethod
    def _check_state(state: str) -> None:
        if state not in _VALID_STATES:
            raise ConfigurationError(
                f"state must be one of {_VALID_STATES}, got {state!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CalibratedNoiseSource(Rs={self.source_resistance_ohm:g} ohm, "
            f"Th={self.t_hot_k:g} K, Tc={self.t_cold_k:g} K)"
        )
