"""Datasheet-style noise analysis (Burr-Brown AB-103 approach, ref [13]).

Produces the "expected" noise-figure column of the paper's Table 3: each
input-referred contributor is integrated over the measurement band through
the closed-loop response, yielding a per-contributor budget and the total
noise factor

``F = 1 + (integral of amplifier noise) / (integral of source noise)``.

Because both integrals pass through the same closed-loop |H|, a flat
response cancels exactly; 1/f-colored contributors make the band limits
matter, which is why the band is an explicit argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.constants import BOLTZMANN, T0_KELVIN, linear_to_db
from repro.analog.amplifier import NonInvertingAmplifier
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NoiseBudget:
    """Integrated noise budget over a measurement band.

    All contributions are input-referred mean-square voltages in V^2
    integrated over the band (through the closed-loop response).
    """

    f_low_hz: float
    f_high_hz: float
    contributions: Dict[str, float]
    source_v2: float
    amplifier_v2: float
    noise_factor: float
    noise_figure_db: float

    def dominant_contributor(self) -> str:
        """Name of the largest amplifier-noise contributor."""
        return max(self.contributions, key=self.contributions.get)


def _band_grid(f_low: float, f_high: float, n_points: int) -> np.ndarray:
    if f_low <= 0 or f_high <= f_low:
        raise ConfigurationError(
            f"need 0 < f_low < f_high, got [{f_low}, {f_high}]"
        )
    if n_points < 16:
        raise ConfigurationError(f"n_points must be >= 16, got {n_points}")
    return np.linspace(f_low, f_high, n_points)


def noise_budget(
    amplifier: NonInvertingAmplifier,
    f_low_hz: float,
    f_high_hz: float,
    source_temperature_k: float = T0_KELVIN,
    n_points: int = 2001,
) -> NoiseBudget:
    """Integrate every noise contributor over ``[f_low, f_high]``.

    The source resistor is evaluated at ``source_temperature_k`` (the
    noise-figure definition wants 290 K).
    """
    freqs = _band_grid(f_low_hz, f_high_hz, n_points)
    h2 = amplifier.closed_loop_magnitude(freqs) ** 2

    rs = amplifier.source_resistance_ohm
    rp = amplifier.feedback_parallel_ohm
    en2 = amplifier.opamp.en_density(freqs)
    in2 = amplifier.opamp.in_density(freqs)
    johnson_rp = 4.0 * BOLTZMANN * amplifier.temperature_k * rp
    src_density = 4.0 * BOLTZMANN * source_temperature_k * rs

    def integrate(density) -> float:
        return float(np.trapezoid(np.asarray(density) * h2, freqs))

    contributions = {
        "opamp_voltage_noise": integrate(en2),
        "opamp_current_noise_rs": integrate(in2 * rs**2),
        "opamp_current_noise_rp": integrate(in2 * rp**2),
        "feedback_network_johnson": integrate(np.full_like(freqs, johnson_rp)),
    }
    amplifier_v2 = float(sum(contributions.values()))
    source_v2 = integrate(np.full_like(freqs, src_density))
    if source_v2 <= 0:
        raise ConfigurationError(
            "source noise integral is zero; check temperature and band"
        )
    factor = 1.0 + amplifier_v2 / source_v2
    return NoiseBudget(
        f_low_hz=f_low_hz,
        f_high_hz=f_high_hz,
        contributions=contributions,
        source_v2=source_v2,
        amplifier_v2=amplifier_v2,
        noise_factor=factor,
        noise_figure_db=linear_to_db(factor),
    )


def expected_noise_figure_db(
    amplifier: NonInvertingAmplifier,
    f_low_hz: float,
    f_high_hz: float,
    n_points: int = 2001,
) -> float:
    """The "expected" NF column of Table 3 (analytical, source at 290 K)."""
    return noise_budget(
        amplifier, f_low_hz, f_high_hz, T0_KELVIN, n_points
    ).noise_figure_db


def cascade_noise_factor(
    dut: NonInvertingAmplifier,
    post_amplifier: NonInvertingAmplifier,
    f_low_hz: float,
    f_high_hz: float,
) -> float:
    """Friis noise factor of DUT followed by a post-amplifier.

    The post-amplifier's own noise factor is referred to the DUT's output
    impedance context; its excess noise is divided by the DUT's available
    power gain (``Av^2`` in this voltage-mode model).  Section 6 of the
    paper uses this to argue the conditioning amplifier adds little.
    """
    f_dut = noise_budget(dut, f_low_hz, f_high_hz).noise_factor
    f_post = noise_budget(post_amplifier, f_low_hz, f_high_hz).noise_factor
    return f_dut + (f_post - 1.0) / (dut.gain**2)
