"""Inverting amplifier model.

The paper's DUT is non-inverting, but a BIST user will meet inverting
stages too — and their noise behaviour differs in an instructive way:
the *signal* gain is ``-Rf/Rin`` while the opamp's voltage noise sees the
*noise gain* ``1 + Rf/Rin``.  At low gains the noise figure of an
inverting stage is therefore markedly worse than a non-inverting stage
built from the same opamp.

Input-referred densities (referred to the driving source, in series with
``Rin``):

* source resistor: ``4kT*Rs`` (the NF reference; the source drives
  ``Rin`` directly, so ``Rs`` is usually absorbed into ``Rin`` — here we
  keep them separate and treat ``Rs + Rin`` as the total input leg);
* input + feedback resistors: ``4kT*(Rin + Rf/G^2)`` with ``G = Rf/(Rs+Rin)``;
* opamp voltage noise scaled by noise-gain over signal-gain:
  ``en^2 * ((1+G)/G)^2``;
* opamp current noise at the inverting node: ``in^2 * (Rf/G)^2``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analog.opamp import OpAmpNoiseModel
from repro.constants import BOLTZMANN, T0_KELVIN
from repro.errors import ConfigurationError
from repro.signals.filters import single_pole_lowpass
from repro.signals.random import GeneratorLike, make_rng
from repro.signals.sources import GaussianNoiseSource, ShapedNoiseSource
from repro.signals.waveform import Waveform


class InvertingAmplifier:
    """Inverting opamp amplifier with input-referred noise model.

    Parameters
    ----------
    opamp:
        Opamp noise model.
    r_feedback_ohm / r_input_ohm:
        Feedback network; signal gain magnitude is ``Rf / (Rs + Rin)``.
    source_resistance_ohm:
        Source resistance in series with the input resistor.
    temperature_k:
        Resistor temperature.
    """

    def __init__(
        self,
        opamp: OpAmpNoiseModel,
        r_feedback_ohm: float,
        r_input_ohm: float,
        source_resistance_ohm: float,
        temperature_k: float = T0_KELVIN,
        name: Optional[str] = None,
    ):
        if not isinstance(opamp, OpAmpNoiseModel):
            raise ConfigurationError(
                f"opamp must be an OpAmpNoiseModel, got {type(opamp).__name__}"
            )
        if r_feedback_ohm <= 0 or r_input_ohm <= 0:
            raise ConfigurationError(
                f"need Rf > 0 and Rin > 0, got Rf={r_feedback_ohm}, "
                f"Rin={r_input_ohm}"
            )
        if source_resistance_ohm <= 0:
            raise ConfigurationError(
                f"source resistance must be > 0, got {source_resistance_ohm}"
            )
        if temperature_k < 0:
            raise ConfigurationError(
                f"temperature must be >= 0 K, got {temperature_k}"
            )
        self.opamp = opamp
        self.r_feedback_ohm = float(r_feedback_ohm)
        self.r_input_ohm = float(r_input_ohm)
        self.source_resistance_ohm = float(source_resistance_ohm)
        self.temperature_k = float(temperature_k)
        self.name = name or f"inv[{opamp.name}]x{self.gain_magnitude:g}"

    # ------------------------------------------------------------------
    @property
    def total_input_leg_ohm(self) -> float:
        """``Rs + Rin`` — the resistance the signal current flows through."""
        return self.source_resistance_ohm + self.r_input_ohm

    @property
    def gain_magnitude(self) -> float:
        """|signal gain| = ``Rf / (Rs + Rin)``."""
        return self.r_feedback_ohm / self.total_input_leg_ohm

    @property
    def noise_gain(self) -> float:
        """Noise gain ``1 + Rf/(Rs+Rin)`` seen by the opamp's en."""
        return 1.0 + self.gain_magnitude

    @property
    def bandwidth_hz(self) -> float:
        """Closed-loop bandwidth ``GBW / noise_gain``."""
        return self.opamp.gbw_hz / self.noise_gain

    # ------------------------------------------------------------------
    def source_noise_density(self, temperature_k: Optional[float] = None) -> float:
        """Johnson density of the source resistor, ``4kT*Rs``."""
        temp = self.temperature_k if temperature_k is None else temperature_k
        if temp < 0:
            raise ConfigurationError(f"temperature must be >= 0 K, got {temp}")
        return 4.0 * BOLTZMANN * temp * self.source_resistance_ohm

    def amplifier_noise_density(self, freqs_hz) -> np.ndarray:
        """Amplifier-only noise, input-referred to the source (V^2/Hz)."""
        f = np.asarray(freqs_hz, dtype=float)
        g = self.gain_magnitude
        kt4 = 4.0 * BOLTZMANN * self.temperature_k
        # Input resistor adds directly; feedback resistor referred by 1/G^2.
        resistors = kt4 * (self.r_input_ohm + self.r_feedback_ohm / g**2)
        # Opamp voltage noise is amplified by the noise gain but referred
        # through the signal gain.
        en2 = self.opamp.en_density(f) * (self.noise_gain / g) ** 2
        # Inverting-node current noise flows through Rf; referred by 1/G.
        in2 = self.opamp.in_density(f) * (self.r_feedback_ohm / g) ** 2
        return resistors + en2 + in2

    def spot_noise_factor(self, freq_hz: float) -> float:
        """Spot noise factor at one frequency (source at T0)."""
        amp = float(self.amplifier_noise_density(freq_hz))
        return 1.0 + amp / self.source_noise_density(T0_KELVIN)

    # ------------------------------------------------------------------
    def render_input_noise(
        self, n_samples: int, sample_rate: float, rng: GeneratorLike = None
    ) -> Waveform:
        """Time-domain synthesis of the input-referred amplifier noise."""
        gen = make_rng(rng)
        g = self.gain_magnitude
        kt4 = 4.0 * BOLTZMANN * self.temperature_k
        resistor_density = kt4 * (
            self.r_input_ohm + self.r_feedback_ohm / g**2
        )
        total = GaussianNoiseSource.from_density(
            resistor_density, sample_rate
        ).render(n_samples, sample_rate, gen)
        en_scale2 = (self.noise_gain / g) ** 2
        en_source = ShapedNoiseSource.one_over_f(
            self.opamp.en_v_per_rthz**2 * en_scale2, self.opamp.en_corner_hz
        )
        total = total + en_source.render(n_samples, sample_rate, gen)
        if self.opamp.in_a_per_rthz > 0:
            in_eq = self.opamp.in_a_per_rthz * self.r_feedback_ohm / g
            in_source = ShapedNoiseSource.one_over_f(
                in_eq**2, self.opamp.in_corner_hz
            )
            total = total + in_source.render(n_samples, sample_rate, gen)
        return total

    def process(
        self,
        input_wave: Waveform,
        rng: GeneratorLike = None,
        include_noise: bool = True,
    ) -> Waveform:
        """Amplify (and invert) a waveform with noise and band limiting."""
        if not isinstance(input_wave, Waveform):
            raise ConfigurationError(
                f"input must be a Waveform, got {type(input_wave).__name__}"
            )
        total = input_wave
        if include_noise:
            total = total + self.render_input_noise(
                input_wave.n_samples, input_wave.sample_rate, rng
            )
        if self.bandwidth_hz < input_wave.nyquist:
            total = single_pole_lowpass(total, self.bandwidth_hz)
        return total.scaled(-self.gain_magnitude)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"InvertingAmplifier({self.name}, G=-{self.gain_magnitude:g}, "
            f"BW={self.bandwidth_hz:g} Hz)"
        )
