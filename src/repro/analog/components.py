"""Passive components: resistors (Johnson noise) and attenuators.

These are the building blocks of the noise-source chain of figures 4-5
(noise generator -> programmable attenuator -> DUT).
"""

from __future__ import annotations

import numpy as np

from repro.constants import BOLTZMANN, T0_KELVIN, db_to_linear
from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike
from repro.signals.sources import GaussianNoiseSource
from repro.signals.waveform import Waveform


class Resistor:
    """A resistor with Johnson noise at a programmable temperature."""

    def __init__(self, resistance_ohm: float, temperature_k: float = T0_KELVIN):
        if resistance_ohm < 0:
            raise ConfigurationError(
                f"resistance must be >= 0 ohm, got {resistance_ohm}"
            )
        if temperature_k < 0:
            raise ConfigurationError(
                f"temperature must be >= 0 K, got {temperature_k}"
            )
        self.resistance_ohm = float(resistance_ohm)
        self.temperature_k = float(temperature_k)

    @property
    def noise_density_v2_per_hz(self) -> float:
        """Open-circuit voltage noise density ``4kTR`` in V^2/Hz."""
        return 4.0 * BOLTZMANN * self.temperature_k * self.resistance_ohm

    def render_noise(
        self, n_samples: int, sample_rate: float, rng: GeneratorLike = None
    ) -> Waveform:
        """Render the open-circuit Johnson noise as a waveform."""
        source = GaussianNoiseSource.from_density(
            self.noise_density_v2_per_hz, sample_rate
        )
        return source.render(n_samples, sample_rate, rng)

    def parallel(self, other: "Resistor") -> "Resistor":
        """Parallel combination (temperatures must match)."""
        if not isinstance(other, Resistor):
            raise ConfigurationError(
                f"can only parallel with Resistor, got {type(other).__name__}"
            )
        if other.temperature_k != self.temperature_k:
            raise ConfigurationError(
                "parallel combination requires equal temperatures, got "
                f"{self.temperature_k} K and {other.temperature_k} K"
            )
        if self.resistance_ohm == 0 or other.resistance_ohm == 0:
            return Resistor(0.0, self.temperature_k)
        value = (
            self.resistance_ohm
            * other.resistance_ohm
            / (self.resistance_ohm + other.resistance_ohm)
        )
        return Resistor(value, self.temperature_k)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Resistor({self.resistance_ohm:g} ohm @ {self.temperature_k:g} K)"


class Attenuator:
    """A programmable voltage attenuator (figures 4-5).

    ``loss_db`` is a power loss; the voltage scaling is
    ``10**(-loss_db/20)``.  The model is ideal (noiseless) because in the
    Y-factor chain the attenuator's contribution is folded into the
    calibrated equivalent temperatures of
    :class:`~repro.analog.noise_source.CalibratedNoiseSource`.
    """

    def __init__(self, loss_db: float = 0.0):
        self.set_loss(loss_db)

    def set_loss(self, loss_db: float) -> None:
        """Program a new attenuation value (>= 0 dB)."""
        if loss_db < 0:
            raise ConfigurationError(f"loss must be >= 0 dB, got {loss_db}")
        self.loss_db = float(loss_db)

    @property
    def voltage_factor(self) -> float:
        """Linear voltage transmission factor (<= 1)."""
        return 10.0 ** (-self.loss_db / 20.0)

    @property
    def power_factor(self) -> float:
        """Linear power transmission factor (<= 1)."""
        return db_to_linear(-self.loss_db)

    def process(self, wave: Waveform) -> Waveform:
        """Attenuate a waveform."""
        return wave.scaled(self.voltage_factor)

    def attenuate_temperature(self, t_excess_k: float) -> float:
        """Excess noise temperature after attenuation.

        An excess temperature (above ambient) is reduced by the power
        factor; the ambient part is unchanged for a matched attenuator at
        ambient temperature.
        """
        if t_excess_k < 0:
            raise ConfigurationError(
                f"excess temperature must be >= 0 K, got {t_excess_k}"
            )
        return t_excess_k * self.power_factor
