"""Non-inverting amplifier model (the paper's DUT, figure 11).

The amplifier is characterized by:

* closed-loop voltage gain ``Av = 1 + Rf/Rg`` (101 in the paper's DUT,
  1156 in its post-amplifier);
* a single-pole closed-loop response with pole ``GBW / Av``;
* input-referred noise contributors, all expressed as one-sided densities
  in series with the non-inverting input:

  - opamp voltage noise ``en^2(f)`` (with 1/f corner),
  - opamp current noise into the source impedance ``in^2(f) * Rs^2``,
  - opamp current noise into the feedback network ``in^2(f) * Rp^2``
    (``Rp = Rf || Rg``),
  - Johnson noise of the feedback network ``4kT * Rp``.

The *source* resistor noise ``4kT*Rs`` is deliberately not part of the
amplifier's own noise — it is the denominator of the noise-factor
definition (paper eq 2/4).

Both an analytical path (densities, used by
:mod:`repro.analog.noise_analysis` for the "expected" NF) and a
time-domain path (:meth:`NonInvertingAmplifier.process`, used by the BIST
simulation) are provided; reproducing Table 3 compares the two.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import BOLTZMANN, T0_KELVIN
from repro.analog.opamp import OpAmpNoiseModel
from repro.errors import ConfigurationError
from repro.signals.filters import (
    single_pole_lowpass,
    single_pole_lowpass_array,
    single_pole_magnitude,
)
from repro.signals.random import GeneratorLike, make_rng
from repro.signals.sources import GaussianNoiseSource, ShapedNoiseSource
from repro.signals.waveform import Waveform


class NonInvertingAmplifier:
    """Non-inverting opamp amplifier with full noise model.

    Parameters
    ----------
    opamp:
        The opamp noise model.
    r_feedback_ohm / r_ground_ohm:
        Feedback network; closed-loop gain is ``1 + Rf/Rg``.
    source_resistance_ohm:
        Source resistance seen by the non-inverting input; sets the
        noise-figure reference.
    temperature_k:
        Physical temperature of the resistors.
    gain_drift:
        Multiplicative deviation of the *actual* gain from the nominal
        design value — models the process variation discussed in the
        paper's section 4.1 (eq 10).  The drift affects simulated
        waveforms but not the nominal :attr:`gain` reported to test code.
    """

    def __init__(
        self,
        opamp: OpAmpNoiseModel,
        r_feedback_ohm: float,
        r_ground_ohm: float,
        source_resistance_ohm: float,
        temperature_k: float = T0_KELVIN,
        gain_drift: float = 1.0,
        name: Optional[str] = None,
    ):
        if not isinstance(opamp, OpAmpNoiseModel):
            raise ConfigurationError(
                f"opamp must be an OpAmpNoiseModel, got {type(opamp).__name__}"
            )
        if r_feedback_ohm < 0 or r_ground_ohm <= 0:
            raise ConfigurationError(
                f"need Rf >= 0 and Rg > 0, got Rf={r_feedback_ohm}, "
                f"Rg={r_ground_ohm}"
            )
        if source_resistance_ohm <= 0:
            raise ConfigurationError(
                f"source resistance must be > 0, got {source_resistance_ohm}"
            )
        if temperature_k < 0:
            raise ConfigurationError(
                f"temperature must be >= 0 K, got {temperature_k}"
            )
        if gain_drift <= 0:
            raise ConfigurationError(f"gain drift must be > 0, got {gain_drift}")
        self.opamp = opamp
        self.r_feedback_ohm = float(r_feedback_ohm)
        self.r_ground_ohm = float(r_ground_ohm)
        self.source_resistance_ohm = float(source_resistance_ohm)
        self.temperature_k = float(temperature_k)
        self.gain_drift = float(gain_drift)
        self.name = name or f"noninv[{opamp.name}]x{self.gain:g}"

    # ------------------------------------------------------------------
    # Topology-derived quantities
    # ------------------------------------------------------------------
    @property
    def gain(self) -> float:
        """Nominal closed-loop voltage gain ``1 + Rf/Rg``."""
        return 1.0 + self.r_feedback_ohm / self.r_ground_ohm

    @property
    def actual_gain(self) -> float:
        """Gain including process drift (used by the waveform path)."""
        return self.gain * self.gain_drift

    @property
    def bandwidth_hz(self) -> float:
        """Closed-loop -3 dB bandwidth ``GBW / Av``."""
        return self.opamp.gbw_hz / self.gain

    @property
    def feedback_parallel_ohm(self) -> float:
        """``Rf || Rg`` seen by the inverting input."""
        if self.r_feedback_ohm == 0.0:
            return 0.0
        return (
            self.r_feedback_ohm
            * self.r_ground_ohm
            / (self.r_feedback_ohm + self.r_ground_ohm)
        )

    def with_gain_drift(self, gain_drift: float) -> "NonInvertingAmplifier":
        """Return a copy with a different process gain drift."""
        return NonInvertingAmplifier(
            self.opamp,
            self.r_feedback_ohm,
            self.r_ground_ohm,
            self.source_resistance_ohm,
            self.temperature_k,
            gain_drift,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Analytical noise densities (input-referred, V^2/Hz)
    # ------------------------------------------------------------------
    def source_noise_density(self, temperature_k: Optional[float] = None) -> float:
        """Johnson noise density of the source resistance, ``4kT*Rs``."""
        temp = self.temperature_k if temperature_k is None else temperature_k
        if temp < 0:
            raise ConfigurationError(f"temperature must be >= 0 K, got {temp}")
        return 4.0 * BOLTZMANN * temp * self.source_resistance_ohm

    def amplifier_noise_density(self, freqs_hz) -> np.ndarray:
        """Input-referred amplifier-only noise density (V^2/Hz)."""
        f = np.asarray(freqs_hz, dtype=float)
        rp = self.feedback_parallel_ohm
        rs = self.source_resistance_ohm
        en2 = self.opamp.en_density(f)
        in2 = self.opamp.in_density(f)
        johnson_rp = 4.0 * BOLTZMANN * self.temperature_k * rp
        return en2 + in2 * (rs**2 + rp**2) + johnson_rp

    def total_input_noise_density(
        self, freqs_hz, source_temperature_k: Optional[float] = None
    ) -> np.ndarray:
        """Amplifier noise plus source Johnson noise (V^2/Hz)."""
        return self.amplifier_noise_density(freqs_hz) + self.source_noise_density(
            source_temperature_k
        )

    def closed_loop_magnitude(self, freqs_hz) -> np.ndarray:
        """|H(f)| of the normalized closed-loop single-pole response."""
        return single_pole_magnitude(freqs_hz, self.bandwidth_hz)

    def spot_noise_factor(self, freq_hz: float) -> float:
        """Spot noise factor at one frequency (source at T0)."""
        amp = float(self.amplifier_noise_density(freq_hz))
        src = self.source_noise_density(T0_KELVIN)
        return 1.0 + amp / src

    # ------------------------------------------------------------------
    # Time-domain path
    # ------------------------------------------------------------------
    def render_input_noise(
        self, n_samples: int, sample_rate: float, rng: GeneratorLike = None
    ) -> Waveform:
        """Render the amplifier's input-referred noise as a waveform.

        The voltage- and current-noise contributors are generated as
        independent Gaussian processes with the model's spot densities
        (including 1/f corners); the feedback-network Johnson noise is
        white.
        """
        gen = make_rng(rng)
        rs = self.source_resistance_ohm
        rp = self.feedback_parallel_ohm
        r_eq = float(np.hypot(rs, rp))

        en_source = ShapedNoiseSource.one_over_f(
            self.opamp.en_v_per_rthz**2, self.opamp.en_corner_hz
        )
        total = en_source.render(n_samples, sample_rate, gen)

        if self.opamp.in_a_per_rthz > 0 and r_eq > 0:
            in_source = ShapedNoiseSource.one_over_f(
                (self.opamp.in_a_per_rthz * r_eq) ** 2, self.opamp.in_corner_hz
            )
            total = total + in_source.render(n_samples, sample_rate, gen)

        johnson_density = 4.0 * BOLTZMANN * self.temperature_k * rp
        if johnson_density > 0:
            johnson = GaussianNoiseSource.from_density(johnson_density, sample_rate)
            total = total + johnson.render(n_samples, sample_rate, gen)
        return total

    def render_input_noise_batch(
        self, n_samples: int, sample_rate: float, rngs, rng_mode: str = "compat"
    ) -> np.ndarray:
        """Stacked input-referred noise records, one per generator.

        In compat mode row ``i`` is bit-exact equal to
        ``render_input_noise(..., rngs[i]).samples``: each record's
        contributors draw from its own generator in the serial order
        (en, then in, then Johnson) while the 1/f spectral shaping runs
        as batched FFTs across records.  ``rng_mode="philox"`` draws
        every contributor's white stage from per-record counter streams
        instead (see :mod:`repro.signals.batch_rng`).
        """
        gens = [make_rng(rng) for rng in rngs]
        rs = self.source_resistance_ohm
        rp = self.feedback_parallel_ohm
        r_eq = float(np.hypot(rs, rp))

        en_source = ShapedNoiseSource.one_over_f(
            self.opamp.en_v_per_rthz**2, self.opamp.en_corner_hz
        )
        total = en_source.render_batch(
            n_samples, sample_rate, gens, rng_mode=rng_mode
        )

        if self.opamp.in_a_per_rthz > 0 and r_eq > 0:
            in_source = ShapedNoiseSource.one_over_f(
                (self.opamp.in_a_per_rthz * r_eq) ** 2, self.opamp.in_corner_hz
            )
            total = total + in_source.render_batch(
                n_samples, sample_rate, gens, rng_mode=rng_mode
            )

        johnson_density = 4.0 * BOLTZMANN * self.temperature_k * rp
        if johnson_density > 0:
            johnson = GaussianNoiseSource.from_density(johnson_density, sample_rate)
            total = total + johnson.render_batch(
                n_samples, sample_rate, gens, rng_mode=rng_mode
            )
        return total

    def process(
        self,
        input_wave: Waveform,
        rng: GeneratorLike = None,
        include_noise: bool = True,
    ) -> Waveform:
        """Amplify a waveform: add input noise, band-limit, apply gain.

        The closed-loop single-pole filter is applied to the summed input
        (signal + amplifier noise), then the actual (drifted) gain scales
        the result — matching how the physical closed loop shapes both
        signal and noise identically.
        """
        if not isinstance(input_wave, Waveform):
            raise ConfigurationError(
                f"input must be a Waveform, got {type(input_wave).__name__}"
            )
        total = input_wave
        if include_noise:
            noise = self.render_input_noise(
                input_wave.n_samples, input_wave.sample_rate, rng
            )
            total = total + noise
        if self.bandwidth_hz < input_wave.nyquist:
            total = single_pole_lowpass(total, self.bandwidth_hz)
        return total.scaled(self.actual_gain)

    def process_batch(
        self,
        records: np.ndarray,
        sample_rate: float,
        rngs=None,
        include_noise: bool = True,
        rng_mode: str = "compat",
    ) -> np.ndarray:
        """Amplify a stack of records (batch form of :meth:`process`).

        ``records`` is ``(n_records, n_samples)``; ``rngs`` supplies one
        generator per record for the amplifier's own noise.  In compat
        mode row ``i`` is bit-exact equal to
        ``process(Waveform(records[i], sample_rate), rngs[i]).samples``;
        ``rng_mode="philox"`` draws the amplifier noise from per-record
        counter streams (fast mode, not bit-identical).
        """
        arr = np.asarray(records, dtype=float)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"records must be a 2-D array, got shape {arr.shape}"
            )
        if sample_rate <= 0:
            raise ConfigurationError(
                f"sample rate must be > 0, got {sample_rate}"
            )
        total = arr
        if include_noise:
            if rngs is None:
                rngs = [None] * arr.shape[0]
            rngs = list(rngs)
            if len(rngs) != arr.shape[0]:
                raise ConfigurationError(
                    f"got {arr.shape[0]} records but {len(rngs)} generators"
                )
            noise = self.render_input_noise_batch(
                arr.shape[-1], sample_rate, rngs, rng_mode=rng_mode
            )
            total = arr + noise
        if self.bandwidth_hz < sample_rate / 2.0:
            total = single_pole_lowpass_array(
                total, sample_rate, self.bandwidth_hz
            )
        return total * self.actual_gain

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"NonInvertingAmplifier({self.name}, Av={self.gain:g}, "
            f"BW={self.bandwidth_hz:g} Hz, Rs={self.source_resistance_ohm:g})"
        )
