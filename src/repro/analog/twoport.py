"""Two-port gain/noise abstraction and the Friis cascade formula.

The paper's section 6 notes that the noise figure of a cascade is
dominated by its first stage; this module provides the standard Friis
machinery used to reason about the DUT + post-amplifier chain and to
verify that claim quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constants import T0_KELVIN, db_to_linear, linear_to_db
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TwoPort:
    """A noisy two-port characterized by power gain and noise factor.

    Parameters
    ----------
    gain_linear:
        Available power gain (linear, > 0).
    noise_factor:
        Noise factor F (linear, >= 1).
    name:
        Optional label used in reports.
    """

    gain_linear: float
    noise_factor: float
    name: str = ""

    def __post_init__(self):
        if self.gain_linear <= 0:
            raise ConfigurationError(
                f"gain must be > 0, got {self.gain_linear} ({self.name!r})"
            )
        if self.noise_factor < 1.0:
            raise ConfigurationError(
                f"noise factor must be >= 1, got {self.noise_factor} "
                f"({self.name!r})"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_db(
        cls, gain_db: float, noise_figure_db: float, name: str = ""
    ) -> "TwoPort":
        """Build from gain and noise figure in dB."""
        return cls(
            gain_linear=db_to_linear(gain_db),
            noise_factor=db_to_linear(noise_figure_db),
            name=name,
        )

    @classmethod
    def from_noise_temperature(
        cls, gain_linear: float, te_kelvin: float, name: str = ""
    ) -> "TwoPort":
        """Build from an equivalent input noise temperature."""
        if te_kelvin < 0:
            raise ConfigurationError(
                f"noise temperature must be >= 0 K, got {te_kelvin}"
            )
        return cls(gain_linear, 1.0 + te_kelvin / T0_KELVIN, name)

    # ------------------------------------------------------------------
    @property
    def gain_db(self) -> float:
        """Power gain in dB."""
        return linear_to_db(self.gain_linear)

    @property
    def noise_figure_db(self) -> float:
        """Noise figure NF = 10*log10(F) (paper eq 3)."""
        return linear_to_db(self.noise_factor)

    @property
    def noise_temperature_k(self) -> float:
        """Equivalent input noise temperature ``(F-1)*T0`` in kelvin."""
        return (self.noise_factor - 1.0) * T0_KELVIN


def cascade(stages: Sequence[TwoPort], name: str = "cascade") -> TwoPort:
    """Friis cascade of two-ports.

    ``F = F1 + (F2-1)/G1 + (F3-1)/(G1*G2) + ...`` and gains multiply.
    """
    stages = list(stages)
    if not stages:
        raise ConfigurationError("cascade needs at least one stage")
    total_f = stages[0].noise_factor
    running_gain = stages[0].gain_linear
    for stage in stages[1:]:
        total_f += (stage.noise_factor - 1.0) / running_gain
        running_gain *= stage.gain_linear
    return TwoPort(running_gain, total_f, name=name)


def attenuator_twoport(loss_db: float, temperature_k: float = T0_KELVIN) -> TwoPort:
    """A matched passive attenuator at physical temperature T.

    Loss L (linear >= 1) at temperature T has ``Te = (L-1)*T`` and thus
    ``F = 1 + (L-1)*T/T0`` — equal to L when T = T0.
    """
    if loss_db < 0:
        raise ConfigurationError(f"loss must be >= 0 dB, got {loss_db}")
    loss = db_to_linear(loss_db)
    te = (loss - 1.0) * temperature_k
    return TwoPort.from_noise_temperature(1.0 / loss, te, name=f"att{loss_db:g}dB")
