"""Behavioural analog substrate.

Models everything between the noise source and the comparator in the
paper's figures 3-5 and 11: two-port gain/noise abstractions with Friis
cascading, passive components (resistors, attenuators), opamp noise models
(including the four devices of Table 3), the non-inverting amplifier under
test, datasheet-style noise analysis (the "expected" column of Table 3) and
the calibrated hot/cold noise source required by the Y-factor method.
"""

from repro.analog.amplifier import NonInvertingAmplifier
from repro.analog.components import Attenuator, Resistor
from repro.analog.inverting import InvertingAmplifier
from repro.analog.noise_analysis import (
    NoiseBudget,
    expected_noise_figure_db,
    noise_budget,
)
from repro.analog.noise_source import CalibratedNoiseSource
from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.analog.twoport import TwoPort, cascade

__all__ = [
    "TwoPort",
    "cascade",
    "Resistor",
    "Attenuator",
    "OpAmpNoiseModel",
    "OPAMP_LIBRARY",
    "NonInvertingAmplifier",
    "InvertingAmplifier",
    "NoiseBudget",
    "noise_budget",
    "expected_noise_figure_db",
    "CalibratedNoiseSource",
]
