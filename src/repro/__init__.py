"""nfbist — noise figure evaluation using a low-cost 1-bit BIST digitizer.

Reproduction of M. Negreiros, L. Carro, A. A. Susin, "Noise Figure
Evaluation Using Low Cost BIST", DATE 2005.

The package is organized as:

``repro.signals``
    Waveform container and signal/noise sources (the stimulus substrate).
``repro.dsp``
    From-scratch spectral estimation (Welch PSD, windows, band power).
``repro.analog``
    Behavioural analog models: two-ports, opamps, amplifiers, noise sources.
``repro.digitizer``
    The paper's 1-bit digitizer (comparator + sampling latch) and the
    arcsine-law statistics of hard-limited Gaussian processes.
``repro.core``
    The paper's contribution: noise-figure definitions, direct and
    Y-factor methods, reference-line spectrum normalization and the
    end-to-end ``OneBitNoiseFigureBIST`` pipeline.
``repro.soc``
    SoC resource reuse model (sample memory, DSP cycle costs, controller).
``repro.engine``
    Batched measurement engine: stacked-record acquisition, batched
    Welch estimation and sweep fan-out (serial or multiprocess).
``repro.store``
    Persistent measurement result store: provenance-keyed caching,
    resumable sweeps and retest-aware production replans.
``repro.instruments``
    Simulated bench instruments and the Figure-11 prototype testbench.
``repro.experiments``
    One module per paper table/figure, used by benchmarks and examples.
``repro.reporting``
    ASCII rendering of tables and series.
"""

from repro.bitstream import (
    PackedBitstream,
    PackedRecordBatch,
    RecordProvenance,
)
from repro.buffers import ArrayPool, default_pool
from repro.constants import BOLTZMANN, T0_KELVIN, db_to_linear, linear_to_db
from repro.core.bist import BISTMeasurementConfig, OneBitNoiseFigureBIST
from repro.core.definitions import (
    YFactorResult,
    enr_db,
    f_to_nf,
    nf_to_f,
    noise_factor_from_y,
    noise_factor_from_y_powers,
    noise_figure_from_y,
)
from repro.core.normalization import NormalizationResult, ReferenceNormalizer
from repro.digitizer.digitizer import OneBitDigitizer
from repro.engine import MeasurementEngine
from repro.signals.waveform import Waveform
from repro.store import ResultStore

__version__ = "1.0.0"

__all__ = [
    "BOLTZMANN",
    "T0_KELVIN",
    "db_to_linear",
    "linear_to_db",
    "Waveform",
    "PackedBitstream",
    "PackedRecordBatch",
    "RecordProvenance",
    "ArrayPool",
    "default_pool",
    "OneBitDigitizer",
    "MeasurementEngine",
    "ResultStore",
    "ReferenceNormalizer",
    "NormalizationResult",
    "OneBitNoiseFigureBIST",
    "BISTMeasurementConfig",
    "YFactorResult",
    "f_to_nf",
    "nf_to_f",
    "enr_db",
    "noise_factor_from_y",
    "noise_factor_from_y_powers",
    "noise_figure_from_y",
    "__version__",
]
