"""Streaming Welch accumulation for memory-constrained SoCs.

Storing a full 1e6-sample capture (125 kB packed) is cheap but not free.
Because Welch averaging is associative, the SoC can instead process the
bitstream *as it arrives*: keep one segment buffer plus the running PSD
accumulator and discard samples immediately after each FFT.  Memory
drops from O(n_samples) to O(nperseg), at identical numerical results
for overlap = 0 (and a one-segment-buffer variant for 50 % overlap).

The host implementation mirrors that discipline: incoming samples land
in a fixed preallocated staging buffer (no per-push ``np.concatenate``
reallocation, whose cost grows with the buffered history), complete
segments are transformed with the same chunk-batched FFT kernel as
:func:`repro.dsp.psd.welch`, and the tail is scrolled back to the front
of the buffer.  A chunk that arrives while the buffer is empty and
already spans full segments is framed zero-copy straight from the input.

With ``packed=True`` the staging history is held as an actual
bit-packed word buffer — 1 bit per buffered sample, the same
:mod:`repro.bitstream` format the digitizer emits — and chunks may be
:class:`~repro.bitstream.PackedBitstream` objects, ``+/-1`` arrays or
waveforms.  Only one FFT block is ever unpacked to floats (a pooled
scratch), so :meth:`StreamingWelch.memory_bytes` reports a buffer the
accumulator genuinely allocates instead of an estimate.

This module provides the streaming accumulator and a helper that
digitizes an analog stream chunk-by-chunk, so an entire measurement can
run with only a few kilobytes of buffer.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.bitstream import PackedBitstream, packed_words_required
from repro.dsp.psd import (
    DEFAULT_BLOCK_SEGMENTS,
    accumulate_packed_spectral_power,
    accumulate_spectral_power,
    frame_segments,
)
from repro.dsp.spectrum import Spectrum
from repro.dsp.windows import get_window, window_gains
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.waveform import Waveform

#: Bytes per accumulator/window word in the SoC working-set report —
#: the fixed-point stores of :mod:`repro.soc.fixedpoint`, not the
#: host's float64 shadow copies.
SOC_WORD_BYTES = 4


class StreamingWelch:
    """Accumulate a Welch PSD from streamed sample chunks.

    Parameters
    ----------
    nperseg:
        Segment (FFT) length.
    sample_rate_hz:
        Stream sample rate.
    window / overlap:
        Analysis window name and fractional overlap (0 or 0.5; the
        streaming buffer keeps ``nperseg`` history for the 50 % case).
    detrend:
        Remove each segment's mean before transforming.
    block_segments:
        Segments per batched FFT call when a chunk completes several
        segments at once (see :mod:`repro.dsp.psd`).
    packed:
        Keep the staging history bit-packed (1 bit/sample) — requires
        ``+/-1`` bitstream chunks (or packed chunks) and makes
        :meth:`memory_bytes` report the real packed buffer.
    """

    def __init__(
        self,
        nperseg: int,
        sample_rate_hz: float,
        window: str = "hann",
        overlap: float = 0.5,
        detrend: bool = True,
        block_segments: int = DEFAULT_BLOCK_SEGMENTS,
        packed: bool = False,
    ):
        if nperseg < 8:
            raise ConfigurationError(f"nperseg must be >= 8, got {nperseg}")
        if sample_rate_hz <= 0:
            raise ConfigurationError(
                f"sample rate must be > 0, got {sample_rate_hz}"
            )
        if overlap not in (0.0, 0.5):
            raise ConfigurationError(
                f"streaming mode supports overlap 0 or 0.5, got {overlap}"
            )
        if block_segments < 1:
            raise ConfigurationError(
                f"block_segments must be >= 1, got {block_segments}"
            )
        self.nperseg = int(nperseg)
        self.sample_rate_hz = float(sample_rate_hz)
        self.overlap = float(overlap)
        self.detrend = bool(detrend)
        self.block_segments = int(block_segments)
        self.packed = bool(packed)
        self._window = get_window(window, self.nperseg)
        self._window_name = window
        self._step = self.nperseg if overlap == 0.0 else self.nperseg // 2
        # Fixed staging buffer: one block of segments plus the carried
        # history fits, so pushes never reallocate.
        self._capacity = self.nperseg + self.block_segments * self._step
        if self.packed:
            self._staging = None
            self._staging_words = np.zeros(
                packed_words_required(self._capacity), dtype=np.uint8
            )
        else:
            self._staging = np.zeros(self._capacity)
            self._staging_words = None
        self._staged = 0
        self._acc = np.zeros(self.nperseg // 2 + 1)
        self._n_segments = 0
        self._n_samples_seen = 0

    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        """Segments accumulated so far."""
        return self._n_segments

    @property
    def n_samples_seen(self) -> int:
        """Total samples pushed."""
        return self._n_samples_seen

    @property
    def buffer_samples(self) -> int:
        """Current history buffer length (the memory working set)."""
        return int(self._staged)

    def push(self, chunk) -> int:
        """Feed a chunk of samples; returns segments completed by it.

        Chunks may be :class:`~repro.signals.waveform.Waveform`, raw
        1-D arrays, or :class:`~repro.bitstream.PackedBitstream`
        records.  In packed mode every chunk must be a ``+/-1``
        bitstream (the digitizer output); float mode accepts arbitrary
        signals and unpacks packed chunks on arrival.
        """
        if isinstance(chunk, PackedBitstream):
            if chunk.sample_rate != self.sample_rate_hz:
                raise ConfigurationError(
                    f"chunk rate {chunk.sample_rate} Hz does not match "
                    f"stream rate {self.sample_rate_hz} Hz"
                )
            self._n_samples_seen += chunk.n_samples
            if self.packed:
                if self._staged == 0 and chunk.n_samples >= self.nperseg:
                    # Fast path: feed the packed chunk straight to the
                    # shared blocked kernel — no unpack/repack round
                    # trip; only the sub-segment tail is re-staged.
                    n_new = accumulate_packed_spectral_power(
                        chunk,
                        self.nperseg,
                        self._step,
                        self._window,
                        self._acc,
                        self.detrend,
                        self.block_segments,
                    )
                    self._n_segments += n_new
                    tail = chunk.unpack_range(
                        n_new * self._step, chunk.n_samples
                    )
                    self._store_bits((tail > 0).astype(np.uint8))
                    return n_new
                return self._push_bits(chunk.unpack_bits())
            return self._push_float(chunk.unpack())
        if isinstance(chunk, Waveform):
            if chunk.sample_rate != self.sample_rate_hz:
                raise ConfigurationError(
                    f"chunk rate {chunk.sample_rate} Hz does not match "
                    f"stream rate {self.sample_rate_hz} Hz"
                )
            data = chunk.samples
        else:
            data = np.asarray(chunk, dtype=float)
            if data.ndim != 1:
                raise ConfigurationError(
                    f"chunk must be 1-D, got shape {data.shape}"
                )
        self._n_samples_seen += data.size
        if self.packed:
            if not np.all(np.abs(data) == 1.0):
                raise ConfigurationError(
                    "packed streaming accepts only +/-1 bitstream chunks"
                )
            return self._push_bits((data > 0).astype(np.uint8))
        return self._push_float(data)

    # ------------------------------------------------------------------
    # Float staging path
    # ------------------------------------------------------------------
    def _push_float(self, data: np.ndarray) -> int:
        completed = 0
        position = 0
        if self._staged == 0 and data.size >= self.nperseg:
            # Zero-copy fast path: frame complete segments directly from
            # the chunk; only the incomplete tail enters the buffer.
            completed += self._consume(data)
            position = data.size
        while position < data.size:
            take = min(data.size - position, self._staging.size - self._staged)
            self._staging[self._staged : self._staged + take] = data[
                position : position + take
            ]
            self._staged += take
            position += take
            if self._staged >= self.nperseg:
                completed += self._consume(self._staging[: self._staged])
        return completed

    def _consume(self, samples: np.ndarray) -> int:
        """Accumulate all complete segments of ``samples``; keep the tail."""
        segments = frame_segments(samples, self.nperseg, self._step)
        n_new = segments.shape[0]
        accumulate_spectral_power(
            segments, self._window, self._acc, self.detrend, self.block_segments
        )
        self._n_segments += n_new
        tail = samples[n_new * self._step :]
        # Scroll the unconsumed history to the buffer front (tail may
        # alias the staging buffer, so go through a copy).
        self._staging[: tail.size] = np.array(tail, copy=True)
        self._staged = tail.size
        return n_new

    # ------------------------------------------------------------------
    # Packed staging path
    # ------------------------------------------------------------------
    def _push_bits(self, bits: np.ndarray) -> int:
        """Packed-mode push: ``bits`` is a transient 0/1 ``uint8`` view
        of the incoming chunk (1 byte/sample, chunk-sized); the
        persistent history stays bit-packed."""
        completed = 0
        position = 0
        if self._staged == 0 and bits.size >= self.nperseg:
            completed += self._consume_bits(bits)
            position = bits.size
        while position < bits.size:
            take = min(bits.size - position, self._capacity - self._staged)
            self._append_bits(bits[position : position + take])
            position += take
            if self._staged >= self.nperseg:
                completed += self._consume_bits(self._staged_bits())
        return completed

    def _staged_bits(self) -> np.ndarray:
        """The staged history as a transient 0/1 bit array."""
        if self._staged == 0:
            return np.empty(0, dtype=np.uint8)
        return np.unpackbits(self._staging_words, count=self._staged)

    def _append_bits(self, bits: np.ndarray) -> None:
        """Append bits at the staged cursor — O(chunk), not O(history).

        Whole bytes before the cursor are already packed and never
        touched; only the cursor's partial byte is merged with the new
        bits and repacked.
        """
        byte, rem = divmod(self._staged, 8)
        if rem:
            head = np.unpackbits(
                self._staging_words[byte : byte + 1], count=rem
            )
            packed = np.packbits(np.concatenate([head, bits]))
        else:
            packed = np.packbits(bits)
        self._staging_words[byte : byte + packed.size] = packed
        self._staged += bits.size

    def _store_bits(self, bits: np.ndarray) -> None:
        """Repack ``bits`` as the new staged history (cursor reset)."""
        packed = np.packbits(bits)
        self._staging_words[: packed.size] = packed
        self._staged = bits.size

    def _consume_bits(self, bits: np.ndarray) -> int:
        """Accumulate all complete segments of a 0/1 bit array.

        Repacks the chunk and runs the shared blocked packed kernel
        (:func:`repro.dsp.psd.accumulate_packed_spectral_power`), so
        the block boundaries, bit-to-sign conversion and summation
        order are the same code the batch estimators use — the
        bit-identical-PSD invariant lives in one place.
        """
        packed = PackedBitstream.from_bits(bits, self.sample_rate_hz)
        n_segments = accumulate_packed_spectral_power(
            packed,
            self.nperseg,
            self._step,
            self._window,
            self._acc,
            self.detrend,
            self.block_segments,
        )
        self._n_segments += n_segments
        self._store_bits(bits[n_segments * self._step :])
        return n_segments

    # ------------------------------------------------------------------
    def result(self) -> Spectrum:
        """The accumulated PSD (raises before the first full segment)."""
        if self._n_segments == 0:
            raise MeasurementError(
                "no complete segment accumulated yet "
                f"(buffered {self._staged}/{self.nperseg} samples)"
            )
        psd = self._acc / (
            self.sample_rate_hz * np.sum(self._window**2) * self._n_segments
        )
        if self.nperseg % 2 == 0:
            psd[1:-1] *= 2.0
        else:
            psd[1:] *= 2.0
        freqs = np.fft.rfftfreq(self.nperseg, d=1.0 / self.sample_rate_hz)
        coherent, noise = window_gains(self._window)
        enbw_hz = self.sample_rate_hz * noise / (coherent**2) / self.nperseg
        return Spectrum(freqs, psd, enbw_hz=enbw_hz)

    def reset(self) -> None:
        """Discard all accumulated state."""
        self._staged = 0
        if self.packed:
            self._staging_words[:] = 0
        self._acc = np.zeros(self.nperseg // 2 + 1)
        self._n_segments = 0
        self._n_samples_seen = 0

    # ------------------------------------------------------------------
    def memory_bytes(self, packed_bits: Optional[bool] = None) -> int:
        """SoC working set: history buffer + accumulator + window.

        The history term is the buffer this accumulator *actually
        allocates*: the bit-packed staging words in packed mode
        (1 bit/sample — construct with ``packed=True``), the float64
        staging buffer otherwise.  Requesting ``packed_bits=True`` on a
        float-mode accumulator raises — the packed footprint used to be
        reported as an estimate the buffer didn't have.  The
        accumulator and window are charged at :data:`SOC_WORD_BYTES`
        per bin (the fixed-point SoC stores, cf.
        :mod:`repro.soc.fixedpoint`); pass ``packed_bits=False`` on a
        packed accumulator to see the float-staging equivalent.
        """
        mode = self.packed if packed_bits is None else bool(packed_bits)
        if mode and not self.packed:
            raise ConfigurationError(
                "packed_bits=True requires a packed accumulator "
                "(StreamingWelch(..., packed=True)); the float staging "
                "buffer has no packed footprint to report"
            )
        if mode:
            history = self._staging_words.nbytes
        elif self.packed:
            history = 8 * self._capacity
        else:
            history = self._staging.nbytes
        accumulator = SOC_WORD_BYTES * (self.nperseg // 2 + 1)
        window = SOC_WORD_BYTES * self.nperseg
        return history + accumulator + window


def accumulate_stream(
    chunks: Iterable[Waveform],
    nperseg: int,
    sample_rate_hz: Optional[float] = None,
    window: str = "hann",
    overlap: float = 0.5,
    packed: bool = False,
) -> Spectrum:
    """Convenience: accumulate an iterable of waveform/packed chunks."""
    streamer = None
    for chunk in chunks:
        if streamer is None:
            if isinstance(chunk, (Waveform, PackedBitstream)):
                rate = chunk.sample_rate
            else:
                rate = sample_rate_hz
            if rate is None:
                raise ConfigurationError(
                    "sample_rate_hz required for raw-array chunks"
                )
            streamer = StreamingWelch(
                nperseg, rate, window, overlap, packed=packed
            )
        streamer.push(chunk)
    if streamer is None:
        raise ConfigurationError("no chunks provided")
    return streamer.result()
