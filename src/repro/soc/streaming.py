"""Streaming Welch accumulation for memory-constrained SoCs.

Storing a full 1e6-sample capture (125 kB packed) is cheap but not free.
Because Welch averaging is associative, the SoC can instead process the
bitstream *as it arrives*: keep one segment buffer plus the running PSD
accumulator and discard samples immediately after each FFT.  Memory
drops from O(n_samples) to O(nperseg), at identical numerical results
for overlap = 0 (and a one-segment-buffer variant for 50 % overlap).

The host implementation mirrors that discipline: incoming samples land
in a fixed preallocated staging buffer (no per-push ``np.concatenate``
reallocation, whose cost grows with the buffered history), complete
segments are transformed with the same chunk-batched FFT kernel as
:func:`repro.dsp.psd.welch`, and the tail is scrolled back to the front
of the buffer.  A chunk that arrives while the buffer is empty and
already spans full segments is framed zero-copy straight from the input.

This module provides the streaming accumulator and a helper that
digitizes an analog stream chunk-by-chunk, so an entire measurement can
run with only a few kilobytes of buffer.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.dsp.psd import (
    DEFAULT_BLOCK_SEGMENTS,
    accumulate_spectral_power,
    frame_segments,
)
from repro.dsp.spectrum import Spectrum
from repro.dsp.windows import get_window, window_gains
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.waveform import Waveform


class StreamingWelch:
    """Accumulate a Welch PSD from streamed sample chunks.

    Parameters
    ----------
    nperseg:
        Segment (FFT) length.
    sample_rate_hz:
        Stream sample rate.
    window / overlap:
        Analysis window name and fractional overlap (0 or 0.5; the
        streaming buffer keeps ``nperseg`` history for the 50 % case).
    detrend:
        Remove each segment's mean before transforming.
    block_segments:
        Segments per batched FFT call when a chunk completes several
        segments at once (see :mod:`repro.dsp.psd`).
    """

    def __init__(
        self,
        nperseg: int,
        sample_rate_hz: float,
        window: str = "hann",
        overlap: float = 0.5,
        detrend: bool = True,
        block_segments: int = DEFAULT_BLOCK_SEGMENTS,
    ):
        if nperseg < 8:
            raise ConfigurationError(f"nperseg must be >= 8, got {nperseg}")
        if sample_rate_hz <= 0:
            raise ConfigurationError(
                f"sample rate must be > 0, got {sample_rate_hz}"
            )
        if overlap not in (0.0, 0.5):
            raise ConfigurationError(
                f"streaming mode supports overlap 0 or 0.5, got {overlap}"
            )
        if block_segments < 1:
            raise ConfigurationError(
                f"block_segments must be >= 1, got {block_segments}"
            )
        self.nperseg = int(nperseg)
        self.sample_rate_hz = float(sample_rate_hz)
        self.overlap = float(overlap)
        self.detrend = bool(detrend)
        self.block_segments = int(block_segments)
        self._window = get_window(window, self.nperseg)
        self._window_name = window
        self._step = self.nperseg if overlap == 0.0 else self.nperseg // 2
        # Fixed staging buffer: one block of segments plus the carried
        # history fits, so pushes never reallocate.
        self._staging = np.zeros(
            self.nperseg + self.block_segments * self._step
        )
        self._staged = 0
        self._acc = np.zeros(self.nperseg // 2 + 1)
        self._n_segments = 0
        self._n_samples_seen = 0

    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        """Segments accumulated so far."""
        return self._n_segments

    @property
    def n_samples_seen(self) -> int:
        """Total samples pushed."""
        return self._n_samples_seen

    @property
    def buffer_samples(self) -> int:
        """Current history buffer length (the memory working set)."""
        return int(self._staged)

    def push(self, chunk) -> int:
        """Feed a chunk of samples; returns segments completed by it."""
        if isinstance(chunk, Waveform):
            if chunk.sample_rate != self.sample_rate_hz:
                raise ConfigurationError(
                    f"chunk rate {chunk.sample_rate} Hz does not match "
                    f"stream rate {self.sample_rate_hz} Hz"
                )
            data = chunk.samples
        else:
            data = np.asarray(chunk, dtype=float)
            if data.ndim != 1:
                raise ConfigurationError(
                    f"chunk must be 1-D, got shape {data.shape}"
                )
        self._n_samples_seen += data.size
        completed = 0
        position = 0
        if self._staged == 0 and data.size >= self.nperseg:
            # Zero-copy fast path: frame complete segments directly from
            # the chunk; only the incomplete tail enters the buffer.
            completed += self._consume(data)
            position = data.size
        while position < data.size:
            take = min(data.size - position, self._staging.size - self._staged)
            self._staging[self._staged : self._staged + take] = data[
                position : position + take
            ]
            self._staged += take
            position += take
            if self._staged >= self.nperseg:
                completed += self._consume(self._staging[: self._staged])
        return completed

    def _consume(self, samples: np.ndarray) -> int:
        """Accumulate all complete segments of ``samples``; keep the tail."""
        segments = frame_segments(samples, self.nperseg, self._step)
        n_new = segments.shape[0]
        accumulate_spectral_power(
            segments, self._window, self._acc, self.detrend, self.block_segments
        )
        self._n_segments += n_new
        tail = samples[n_new * self._step :]
        # Scroll the unconsumed history to the buffer front (tail may
        # alias the staging buffer, so go through a copy).
        self._staging[: tail.size] = np.array(tail, copy=True)
        self._staged = tail.size
        return n_new

    def result(self) -> Spectrum:
        """The accumulated PSD (raises before the first full segment)."""
        if self._n_segments == 0:
            raise MeasurementError(
                "no complete segment accumulated yet "
                f"(buffered {self._staged}/{self.nperseg} samples)"
            )
        psd = self._acc / (
            self.sample_rate_hz * np.sum(self._window**2) * self._n_segments
        )
        if self.nperseg % 2 == 0:
            psd[1:-1] *= 2.0
        else:
            psd[1:] *= 2.0
        freqs = np.fft.rfftfreq(self.nperseg, d=1.0 / self.sample_rate_hz)
        coherent, noise = window_gains(self._window)
        enbw_hz = self.sample_rate_hz * noise / (coherent**2) / self.nperseg
        return Spectrum(freqs, psd, enbw_hz=enbw_hz)

    def reset(self) -> None:
        """Discard all accumulated state."""
        self._staged = 0
        self._acc = np.zeros(self.nperseg // 2 + 1)
        self._n_segments = 0
        self._n_samples_seen = 0

    # ------------------------------------------------------------------
    def memory_bytes(self, packed_bits: bool = True) -> int:
        """Working-set estimate: history buffer + accumulator + window.

        With ``packed_bits`` the segment history is counted at 1 bit per
        sample (the digitizer output); the accumulator and window are
        4-byte words.
        """
        history = (
            (self.nperseg + 7) // 8 if packed_bits else 8 * self.nperseg
        )
        accumulator = 4 * (self.nperseg // 2 + 1)
        window = 4 * self.nperseg
        return history + accumulator + window


def accumulate_stream(
    chunks: Iterable[Waveform],
    nperseg: int,
    sample_rate_hz: Optional[float] = None,
    window: str = "hann",
    overlap: float = 0.5,
) -> Spectrum:
    """Convenience: accumulate an iterable of waveform chunks."""
    streamer = None
    for chunk in chunks:
        if streamer is None:
            rate = (
                chunk.sample_rate
                if isinstance(chunk, Waveform)
                else sample_rate_hz
            )
            if rate is None:
                raise ConfigurationError(
                    "sample_rate_hz required for raw-array chunks"
                )
            streamer = StreamingWelch(nperseg, rate, window, overlap)
        streamer.push(chunk)
    if streamer is None:
        raise ConfigurationError("no chunks provided")
    return streamer.result()
