"""Fixed-point Welch PSD model for SoC DSP reuse.

The paper's argument is that the SoC's existing processor runs the DSP.
Embedded DSPs are commonly fixed-point, so this module models the two
quantization effects that matter for the 1-bit pipeline:

* window coefficients stored at ``window_bits`` (e.g. Q15 for 16-bit);
* per-bin PSD accumulation on an ``accumulator_bits``-wide register,
  modeled as rounding each accumulated value to the register's resolution
  relative to its full-scale.

The input itself is a +/-1 bitstream, so input quantization is free —
one of the quiet advantages of the method.  The ablation bench shows the
NF estimate is insensitive to realistic word lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.spectrum import Spectrum
from repro.dsp.windows import get_window, window_gains
from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class FixedPointSpec:
    """Word lengths of the SoC DSP datapath.

    Parameters
    ----------
    window_bits:
        Signed word length of the stored window coefficients (Q(b-1)
        fractional format); 16 models a typical DSP coefficient ROM.
    accumulator_bits:
        Signed word length of the PSD accumulation registers; the
        accumulated bin values are rounded to ``full_scale / 2**(b-1)``.
    """

    window_bits: int = 16
    accumulator_bits: int = 32

    def __post_init__(self):
        if not 2 <= self.window_bits <= 64:
            raise ConfigurationError(
                f"window_bits must be in [2, 64], got {self.window_bits}"
            )
        if not 8 <= self.accumulator_bits <= 64:
            raise ConfigurationError(
                f"accumulator_bits must be in [8, 64], got {self.accumulator_bits}"
            )


def quantize_window(window: np.ndarray, bits: int) -> np.ndarray:
    """Round window coefficients to a signed Q(bits-1) representation."""
    if bits < 2:
        raise ConfigurationError(f"bits must be >= 2, got {bits}")
    scale = 2.0 ** (bits - 1)
    return np.clip(np.round(window * scale), -scale, scale - 1) / scale


def fixed_point_welch(
    bitstream: Waveform,
    nperseg: int,
    spec: FixedPointSpec = FixedPointSpec(),
    window: str = "hann",
    overlap: float = 0.5,
) -> Spectrum:
    """Welch PSD of a bitstream with fixed-point window and accumulation.

    Mirrors :func:`repro.dsp.psd.welch` (Hann, 50 % overlap, mean
    detrend) but with the quantization effects of
    :class:`FixedPointSpec` applied.
    """
    samples = bitstream.samples
    fs = bitstream.sample_rate
    if nperseg < 8:
        raise ConfigurationError(f"nperseg must be >= 8, got {nperseg}")
    if samples.size < nperseg:
        raise ConfigurationError(
            f"record has {samples.size} samples but nperseg={nperseg}"
        )
    if not 0.0 <= overlap < 1.0:
        raise ConfigurationError(f"overlap must be in [0, 1), got {overlap}")

    win = quantize_window(get_window(window, nperseg), spec.window_bits)
    win_power = float(np.sum(win**2))
    if win_power <= 0:
        raise ConfigurationError("quantized window is identically zero")

    step = max(1, int(round(nperseg * (1.0 - overlap))))
    n_segments = 1 + (samples.size - nperseg) // step
    acc = np.zeros(nperseg // 2 + 1)
    for k in range(n_segments):
        seg = samples[k * step : k * step + nperseg]
        seg = seg - np.mean(seg)
        spectrum = np.fft.rfft(seg * win)
        psd = (np.abs(spectrum) ** 2) / (fs * win_power)
        if nperseg % 2 == 0:
            psd[1:-1] *= 2.0
        else:
            psd[1:] *= 2.0
        acc += psd
        # Round the running accumulation to the register resolution.
        full_scale = max(float(np.max(acc)), 1e-30)
        lsb = full_scale / 2.0 ** (spec.accumulator_bits - 1)
        acc = np.round(acc / lsb) * lsb
    psd = acc / n_segments

    freqs = np.fft.rfftfreq(nperseg, d=1.0 / fs)
    coherent, noise = window_gains(win)
    enbw_hz = fs * noise / (coherent**2) / nperseg
    return Spectrum(freqs, np.maximum(psd, 0.0), enbw_hz=enbw_hz)
