"""BIST controller: orchestrates a measurement on SoC resources.

Runs the two-state acquisition through :class:`SampleMemory` (captures are
bit-packed into the shared SRAM) and charges the full DSP pipeline to a
:class:`DSPProcessor`, producing both the noise-figure result and a
:class:`ResourceReport` that substantiates the paper's "low cost" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.bist import BISTResult, OneBitNoiseFigureBIST
from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.signals.waveform import Waveform
from repro.soc.memory import SampleMemory
from repro.soc.processor import DSPProcessor


@dataclass(frozen=True)
class ResourceReport:
    """Resources a measurement consumed on the SoC."""

    memory_bytes_peak: int
    memory_bytes_capacity: int
    dsp_cycles: int
    dsp_time_s: float
    acquisition_time_s: float
    cycles_breakdown: Dict[str, int]

    @property
    def total_test_time_s(self) -> float:
        """Acquisition (both states) plus processing time."""
        return self.acquisition_time_s + self.dsp_time_s


@dataclass(frozen=True)
class ControllerOutcome:
    """Result + resource accounting of one controller run."""

    result: BISTResult
    resources: ResourceReport


class BISTController:
    """Coordinates acquisition, storage and DSP for one NF measurement.

    Parameters
    ----------
    estimator:
        The configured 1-bit estimator.
    memory:
        Shared SoC sample memory used to hold both captures.
    processor:
        Cycle-accounting DSP model.
    """

    def __init__(
        self,
        estimator: OneBitNoiseFigureBIST,
        memory: SampleMemory,
        processor: DSPProcessor,
    ):
        if not isinstance(estimator, OneBitNoiseFigureBIST):
            raise ConfigurationError(
                f"estimator must be OneBitNoiseFigureBIST, got "
                f"{type(estimator).__name__}"
            )
        if not isinstance(memory, SampleMemory):
            raise ConfigurationError(
                f"memory must be SampleMemory, got {type(memory).__name__}"
            )
        if not isinstance(processor, DSPProcessor):
            raise ConfigurationError(
                f"processor must be DSPProcessor, got {type(processor).__name__}"
            )
        self.estimator = estimator
        self.memory = memory
        self.processor = processor

    def run(
        self,
        acquire: Callable[[str, GeneratorLike], Waveform],
        rng: GeneratorLike = None,
    ) -> ControllerOutcome:
        """Execute a full two-state measurement with resource accounting.

        ``acquire(state, rng)`` returns the captured bitstream for the
        given noise-source state.
        """
        gen = make_rng(rng)
        rng_hot, rng_cold = spawn_rngs(gen, 2)
        config = self.estimator.config
        self.processor.reset()

        bits_hot = acquire("hot", rng_hot)
        self.memory.store_bitstream("capture_hot", bits_hot)
        bits_cold = acquire("cold", rng_cold)
        self.memory.store_bitstream("capture_cold", bits_cold)
        memory_peak = self.memory.bytes_used

        # Charge the DSP pipeline: two Welch PSDs, line search and two
        # band-power integrations.
        for label in ("hot", "cold"):
            self.processor.cost_welch(
                config.n_samples, config.nperseg, config.overlap, label=f"psd_{label}"
            )
        n_bins = config.nperseg // 2 + 1
        self.processor.cost_band_power(n_bins, label="line-search")
        band_bins = max(
            1,
            int(
                (config.noise_band_hz[1] - config.noise_band_hz[0])
                / config.bin_spacing_hz
            ),
        )
        self.processor.cost_band_power(band_bins, label="band-power-hot")
        self.processor.cost_band_power(band_bins, label="band-power-cold")

        # Analyze straight from the packed SRAM records: the Welch
        # kernel unpacks one FFT block at a time, so the DSP never
        # materializes a float copy of a full capture.
        result = self.estimator.estimate_from_bitstreams(
            self.memory.load_packed("capture_hot"),
            self.memory.load_packed("capture_cold"),
        )

        report = ResourceReport(
            memory_bytes_peak=memory_peak,
            memory_bytes_capacity=self.memory.capacity_bytes,
            dsp_cycles=self.processor.total_cycles,
            dsp_time_s=self.processor.execution_time_s,
            acquisition_time_s=2.0 * config.duration_s,
            cycles_breakdown=self.processor.breakdown(),
        )
        self.memory.free("capture_hot")
        self.memory.free("capture_cold")
        return ControllerOutcome(result=result, resources=report)

    # ------------------------------------------------------------------
    def adc_alternative_memory_bytes(self, bits_per_sample: int = 12) -> int:
        """Memory a full-ADC capture of the same records would need.

        Used by the resource ablation bench to quantify the 1-bit
        advantage (the paper's motivation for replacing the ADC path).
        """
        n = self.estimator.config.n_samples
        return 2 * SampleMemory.words_required(n, bits_per_sample)
