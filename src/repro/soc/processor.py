"""Cycle-cost model of the SoC DSP routines the measurement reuses.

The costs are deliberately simple, architecture-neutral estimates (a
single-MAC DSP): the point is *relative* accounting — how much compute the
1-bit method asks from an SoC, and how a full-ADC alternative compares —
not cycle-exact simulation of any particular core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProcessorOp:
    """One accounted DSP operation."""

    label: str
    cycles: int


class DSPProcessor:
    """Cycle accounting for the measurement's DSP pipeline.

    Parameters
    ----------
    clock_hz:
        DSP clock, used to convert cycles to execution time.
    cycles_per_mac:
        Cost of one multiply-accumulate.
    cycles_per_butterfly:
        Cost of one radix-2 FFT butterfly (complex MAC + twiddle fetch).
    """

    def __init__(
        self,
        clock_hz: float = 100e6,
        cycles_per_mac: int = 1,
        cycles_per_butterfly: int = 6,
    ):
        if clock_hz <= 0:
            raise ConfigurationError(f"clock must be > 0 Hz, got {clock_hz}")
        if cycles_per_mac < 1 or cycles_per_butterfly < 1:
            raise ConfigurationError("per-op cycle costs must be >= 1")
        self.clock_hz = float(clock_hz)
        self.cycles_per_mac = int(cycles_per_mac)
        self.cycles_per_butterfly = int(cycles_per_butterfly)
        self._ops: List[ProcessorOp] = []

    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        """Cycles consumed so far."""
        return sum(op.cycles for op in self._ops)

    @property
    def execution_time_s(self) -> float:
        """Wall time at the configured clock."""
        return self.total_cycles / self.clock_hz

    def operations(self) -> List[ProcessorOp]:
        """The recorded operation log."""
        return list(self._ops)

    def breakdown(self) -> Dict[str, int]:
        """Cycles aggregated per operation label."""
        out: Dict[str, int] = {}
        for op in self._ops:
            out[op.label] = out.get(op.label, 0) + op.cycles
        return out

    def reset(self) -> None:
        """Clear the accounting log."""
        self._ops.clear()

    def _record(self, label: str, cycles: float) -> int:
        cycles_int = int(np.ceil(cycles))
        self._ops.append(ProcessorOp(label=label, cycles=cycles_int))
        return cycles_int

    # ------------------------------------------------------------------
    # Pipeline-step cost models
    # ------------------------------------------------------------------
    def cost_window(self, n: int, label: str = "window") -> int:
        """Apply an N-point window: one MAC per sample."""
        self._check_n(n)
        return self._record(label, n * self.cycles_per_mac)

    def cost_fft(self, n: int, label: str = "fft") -> int:
        """Radix-2 real FFT: ``(n/2) * log2(n)`` butterflies."""
        self._check_n(n)
        stages = np.log2(n)
        if stages != int(stages):
            # Non power-of-two: charge the next power of two (zero-padded).
            stages = int(np.ceil(stages))
            n_eff = 2**stages
        else:
            stages = int(stages)
            n_eff = n
        butterflies = (n_eff // 2) * stages
        return self._record(label, butterflies * self.cycles_per_butterfly)

    def cost_magnitude_accumulate(self, n_bins: int, label: str = "mag+acc") -> int:
        """|X|^2 and accumulate per bin: two MACs each."""
        self._check_n(n_bins)
        return self._record(label, 2 * n_bins * self.cycles_per_mac)

    def cost_band_power(self, n_bins: int, label: str = "band-power") -> int:
        """Sum a band of bins: one MAC each."""
        self._check_n(n_bins)
        return self._record(label, n_bins * self.cycles_per_mac)

    def cost_welch(
        self,
        n_samples: int,
        nperseg: int,
        overlap: float = 0.5,
        label: str = "welch",
    ) -> int:
        """Full Welch PSD: window + FFT + magnitude per segment."""
        if not 0 <= overlap < 1:
            raise ConfigurationError(f"overlap must be in [0,1), got {overlap}")
        if n_samples < nperseg:
            raise ConfigurationError(
                f"n_samples ({n_samples}) must be >= nperseg ({nperseg})"
            )
        step = max(1, int(round(nperseg * (1 - overlap))))
        n_segments = 1 + (n_samples - nperseg) // step
        total = 0
        for _ in range(n_segments):
            total += self.cost_window(nperseg, label=f"{label}:window")
            total += self.cost_fft(nperseg, label=f"{label}:fft")
            total += self.cost_magnitude_accumulate(
                nperseg // 2 + 1, label=f"{label}:mag"
            )
        return total

    @staticmethod
    def _check_n(n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"size must be >= 1, got {n}")
