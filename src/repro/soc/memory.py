"""Capacity-limited sample memory with 1-bit packing.

A 1e6-sample 1-bit capture needs 125 kB — small enough to reuse a SoC's
existing SRAM, which is the "low cost" storage argument of the paper.  The
same record at 12-bit ADC resolution needs 1.5 MB (stored as packed 12-bit
words); :meth:`SampleMemory.words_required` exposes that comparison for
the resource bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.bitstream import PackedBitstream, packed_words_required
from repro.errors import ConfigurationError, ResourceError
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class StoredRecord:
    """Metadata of a record held in sample memory."""

    key: str
    n_samples: int
    bytes_used: int
    sample_rate_hz: float
    bits_per_sample: float


class SampleMemory:
    """Byte-addressable capture memory shared with the SoC.

    Parameters
    ----------
    capacity_bytes:
        Total memory the BIST is allowed to claim.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity must be > 0 bytes, got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self._records: Dict[str, Tuple[StoredRecord, PackedBitstream]] = {}

    # ------------------------------------------------------------------
    @property
    def bytes_used(self) -> int:
        """Bytes currently allocated."""
        return sum(rec.bytes_used for rec, _ in self._records.values())

    @property
    def bytes_free(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self.bytes_used

    def records(self) -> List[StoredRecord]:
        """Metadata of all stored records."""
        return [rec for rec, _ in self._records.values()]

    # ------------------------------------------------------------------
    @staticmethod
    def bytes_required_bits(n_samples: int) -> int:
        """Bytes to store ``n_samples`` 1-bit values (packed)."""
        return packed_words_required(n_samples)

    @staticmethod
    def words_required(n_samples: int, bits_per_sample: int) -> int:
        """Bytes to store ``n_samples`` packed multi-bit ADC words."""
        if bits_per_sample <= 0:
            raise ConfigurationError(
                f"bits_per_sample must be > 0, got {bits_per_sample}"
            )
        total_bits = n_samples * bits_per_sample
        return (total_bits + 7) // 8

    # ------------------------------------------------------------------
    def store_bitstream(
        self, key: str, bitstream: Union[Waveform, PackedBitstream]
    ) -> StoredRecord:
        """Store a +/-1 bitstream packed into memory under ``key``.

        Accepts an already-packed record
        (:class:`~repro.bitstream.PackedBitstream` — stored as-is, zero
        repack; this is what the packed digitizer path delivers) or a
        float waveform (packed on entry).  Raises
        :class:`ResourceError` when the packed record does not fit.
        """
        if key in self._records:
            raise ConfigurationError(f"record {key!r} already stored")
        if isinstance(bitstream, PackedBitstream):
            packed = bitstream
        else:
            packed = PackedBitstream.pack(bitstream)
        need = packed.nbytes
        if need > self.bytes_free:
            raise ResourceError(
                f"bitstream {key!r} needs {need} B but only "
                f"{self.bytes_free} B are free (capacity "
                f"{self.capacity_bytes} B)"
            )
        record = StoredRecord(
            key=key,
            n_samples=packed.n_samples,
            bytes_used=need,
            sample_rate_hz=packed.sample_rate,
            bits_per_sample=1.0,
        )
        self._records[key] = (record, packed)
        return record

    def load_packed(self, key: str) -> PackedBitstream:
        """The stored record in its native packed form (zero copy)."""
        if key not in self._records:
            raise ConfigurationError(f"no record stored under {key!r}")
        return self._records[key][1]

    def load_bitstream(self, key: str) -> Waveform:
        """Unpack a stored bitstream back into a +/-1 waveform."""
        return self.load_packed(key).to_waveform()

    def free(self, key: str) -> None:
        """Release a stored record."""
        if key not in self._records:
            raise ConfigurationError(f"no record stored under {key!r}")
        del self._records[key]

    def clear(self) -> None:
        """Release every record."""
        self._records.clear()
