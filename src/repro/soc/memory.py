"""Capacity-limited sample memory with 1-bit packing.

A 1e6-sample 1-bit capture needs 125 kB — small enough to reuse a SoC's
existing SRAM, which is the "low cost" storage argument of the paper.  The
same record at 12-bit ADC resolution needs 1.5 MB (stored as packed 12-bit
words); :meth:`SampleMemory.words_required` exposes that comparison for
the resource bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ResourceError
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class StoredRecord:
    """Metadata of a record held in sample memory."""

    key: str
    n_samples: int
    bytes_used: int
    sample_rate_hz: float
    bits_per_sample: float


class SampleMemory:
    """Byte-addressable capture memory shared with the SoC.

    Parameters
    ----------
    capacity_bytes:
        Total memory the BIST is allowed to claim.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity must be > 0 bytes, got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self._records: Dict[str, Tuple[StoredRecord, np.ndarray]] = {}

    # ------------------------------------------------------------------
    @property
    def bytes_used(self) -> int:
        """Bytes currently allocated."""
        return sum(rec.bytes_used for rec, _ in self._records.values())

    @property
    def bytes_free(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self.bytes_used

    def records(self) -> List[StoredRecord]:
        """Metadata of all stored records."""
        return [rec for rec, _ in self._records.values()]

    # ------------------------------------------------------------------
    @staticmethod
    def bytes_required_bits(n_samples: int) -> int:
        """Bytes to store ``n_samples`` 1-bit values (packed)."""
        if n_samples < 0:
            raise ConfigurationError(f"n_samples must be >= 0, got {n_samples}")
        return (n_samples + 7) // 8

    @staticmethod
    def words_required(n_samples: int, bits_per_sample: int) -> int:
        """Bytes to store ``n_samples`` packed multi-bit ADC words."""
        if bits_per_sample <= 0:
            raise ConfigurationError(
                f"bits_per_sample must be > 0, got {bits_per_sample}"
            )
        total_bits = n_samples * bits_per_sample
        return (total_bits + 7) // 8

    # ------------------------------------------------------------------
    def store_bitstream(self, key: str, bitstream: Waveform) -> StoredRecord:
        """Pack a +/-1 bitstream into memory under ``key``.

        Raises :class:`ResourceError` when the packed record does not fit.
        """
        if key in self._records:
            raise ConfigurationError(f"record {key!r} already stored")
        values = np.unique(bitstream.samples)
        if not np.all(np.isin(values, (-1.0, 1.0))):
            raise ConfigurationError(
                f"bitstream must contain only +/-1 values, found {values[:5]}"
            )
        need = self.bytes_required_bits(bitstream.n_samples)
        if need > self.bytes_free:
            raise ResourceError(
                f"bitstream {key!r} needs {need} B but only "
                f"{self.bytes_free} B are free (capacity "
                f"{self.capacity_bytes} B)"
            )
        packed = np.packbits(bitstream.samples > 0)
        record = StoredRecord(
            key=key,
            n_samples=bitstream.n_samples,
            bytes_used=need,
            sample_rate_hz=bitstream.sample_rate,
            bits_per_sample=1.0,
        )
        self._records[key] = (record, packed)
        return record

    def load_bitstream(self, key: str) -> Waveform:
        """Unpack a stored bitstream back into a +/-1 waveform."""
        if key not in self._records:
            raise ConfigurationError(f"no record stored under {key!r}")
        record, packed = self._records[key]
        bits = np.unpackbits(packed)[: record.n_samples]
        samples = np.where(bits > 0, 1.0, -1.0)
        return Waveform(samples, record.sample_rate_hz)

    def free(self, key: str) -> None:
        """Release a stored record."""
        if key not in self._records:
            raise ConfigurationError(f"no record stored under {key!r}")
        del self._records[key]

    def clear(self) -> None:
        """Release every record."""
        self._records.clear()
