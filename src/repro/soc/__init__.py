"""SoC environment model: reused memory and processing resources.

The paper's motivation (sections 1 and 4) is that a SoC already contains
the memory and DSP horsepower the method needs, so the *added* analog cost
is one comparator per test point.  This package quantifies that claim:

* :mod:`repro.soc.memory` — a capacity-limited sample memory that stores
  bit-packed 1-bit captures (or multi-bit ADC words, for comparison);
* :mod:`repro.soc.processor` — a cycle-cost model of the DSP routines the
  measurement runs (windowing, FFT, accumulation, band power);
* :mod:`repro.soc.bist_controller` — orchestration of a two-state
  measurement with full resource accounting.
"""

from repro.soc.bist_controller import BISTController, ResourceReport
from repro.soc.fixedpoint import FixedPointSpec, fixed_point_welch
from repro.soc.memory import SampleMemory
from repro.soc.processor import DSPProcessor
from repro.soc.streaming import StreamingWelch, accumulate_stream

__all__ = [
    "SampleMemory",
    "DSPProcessor",
    "BISTController",
    "ResourceReport",
    "FixedPointSpec",
    "fixed_point_welch",
    "StreamingWelch",
    "accumulate_stream",
]
