"""Reusable scratch-array pools.

The comparator's batch path recycled one scratch row to avoid churning
hundreds of megabytes of fresh pages per paper-scale batch; this module
generalizes that discipline.  An :class:`ArrayPool` hands out named
scratch arrays that persist across calls, so the hot loops (comparator
diff rows, packed-Welch unpack blocks, batched noise rendering) touch
warm pages instead of faulting new ones on every batch.

Ownership discipline: an array returned by :meth:`ArrayPool.take` is
valid until the next ``take`` of the same name — callers must never
return pooled scratch to their own callers.  A plain :class:`ArrayPool`
is not thread-safe; the process-wide :data:`default_pool` is
**thread-local** (each thread sees its own pool), so the public APIs
that draw scratch from it — ``compare_batch``, the packed Welch
kernels — stay safe to call from concurrent threads.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

ShapeLike = Union[int, Tuple[int, ...]]


class ArrayPool:
    """Named, shape-checked scratch arrays reused across calls."""

    def __init__(self):
        self._arrays: Dict[str, np.ndarray] = {}

    def take(
        self, name: str, shape: ShapeLike, dtype=np.float64
    ) -> np.ndarray:
        """Return the scratch array for ``name``, (re)allocating on a
        shape or dtype change.

        Contents are uninitialized — callers must fully overwrite the
        region they use.
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ConfigurationError(f"invalid scratch shape {shape}")
        dtype = np.dtype(dtype)
        arr = self._arrays.get(name)
        if arr is None or arr.shape != shape or arr.dtype != dtype:
            arr = np.empty(shape, dtype=dtype)
            self._arrays[name] = arr
        return arr

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(arr.nbytes for arr in self._arrays.values())

    def __len__(self) -> int:
        return len(self._arrays)

    def clear(self) -> None:
        """Release every pooled array."""
        self._arrays.clear()


class ThreadLocalArrayPool:
    """An :class:`ArrayPool` per thread behind one interface.

    Scratch handed out on one thread is invisible to every other, so
    concurrent callers of the pooled hot paths cannot corrupt each
    other's in-flight blocks.
    """

    def __init__(self):
        self._local = threading.local()

    def _pool(self) -> ArrayPool:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = ArrayPool()
            self._local.pool = pool
        return pool

    def take(
        self, name: str, shape: ShapeLike, dtype=np.float64
    ) -> np.ndarray:
        """This thread's scratch array for ``name`` (see
        :meth:`ArrayPool.take`)."""
        return self._pool().take(name, shape, dtype)

    @property
    def nbytes(self) -> int:
        """Bytes held by the calling thread's pool."""
        return self._pool().nbytes

    def __len__(self) -> int:
        return len(self._pool())

    def clear(self) -> None:
        """Release the calling thread's pooled arrays."""
        self._pool().clear()


#: Process-wide default pool used by the hot paths (thread-local).
default_pool = ThreadLocalArrayPool()
