"""Exposition formats for metrics snapshots.

:func:`render_prometheus` turns a
:meth:`repro.obs.registry.MetricsRegistry.snapshot` dict into
Prometheus text exposition format (version 0.0.4): counters become
``repro_<name>_total``, gauges ``repro_<name>``, and histograms the
usual ``_bucket{le=...}`` / ``_sum`` / ``_count`` triple with
cumulative bucket counts.  Metric names are sanitised (dots and dashes
to underscores) and label values escaped per the format spec; the
snapshot itself is already JSON-ready, so the JSON side of the daemon's
``metrics`` op is just the snapshot passed through.
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["render_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, suffix: str = "") -> str:
    base = _NAME_RE.sub("_", name)
    if not base.startswith("repro_"):
        base = "repro_" + base
    return base + suffix


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(tags: dict, extra: str = "") -> str:
    parts = [
        f'{_LABEL_RE.sub("_", str(k))}="{_escape_label_value(str(v))}"'
        for k, v in sorted(tags.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """Render one metrics snapshot as Prometheus text exposition."""
    lines: List[str] = []
    typed = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for c in snapshot.get("counters", ()):
        name = _metric_name(c["name"], "_total")
        _type_line(name, "counter")
        lines.append(
            f"{name}{_labels(c.get('tags', {}))} "
            f"{_format_value(c['value'])}"
        )
    for g in snapshot.get("gauges", ()):
        name = _metric_name(g["name"])
        _type_line(name, "gauge")
        lines.append(
            f"{name}{_labels(g.get('tags', {}))} "
            f"{_format_value(g['value'])}"
        )
    bounds = snapshot.get("bucket_bounds", ())
    for h in snapshot.get("histograms", ()):
        name = _metric_name(h["name"])
        _type_line(name, "histogram")
        tags = h.get("tags", {})
        cumulative = 0
        for bound, cell in zip(bounds, h["buckets"]):
            cumulative += cell
            le = 'le="%s"' % bound
            lines.append(
                f"{name}_bucket{_labels(tags, le)} {cumulative}"
            )
        cumulative += h["buckets"][len(bounds)]
        inf = 'le="+Inf"'
        lines.append(
            f"{name}_bucket{_labels(tags, inf)} {cumulative}"
        )
        lines.append(
            f"{name}_sum{_labels(tags)} {_format_value(h['sum'])}"
        )
        lines.append(f"{name}_count{_labels(tags)} {h['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
