"""Structured logging glue: one formatter, one setup call.

The daemon and CLI already speak :mod:`logging`; this module decides
what those records *look like*.  :func:`setup_logging` installs a
single stderr handler on the root logger — human-readable by default,
one JSON object per line with ``--log-json`` — so daemon diagnostics
can be grepped or shipped to a log pipeline without a wrapper script.

``JsonLogFormatter`` enriches every record with the observability
context available at emit time: the innermost active trace span id
(:func:`repro.obs.current_span_id`) plus any ``job``/``key``/``op``
attributes the caller attached via ``extra={...}`` — so a journal
failure line can be joined against the job span timeline that
produced it.
"""

from __future__ import annotations

import json
import logging
import sys

from repro import obs

__all__ = ["JsonLogFormatter", "setup_logging"]

#: ``extra={...}`` attributes the JSON formatter promotes to fields.
_EXTRA_FIELDS = ("job", "key", "op", "kind", "status")


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record, carrying span and job context."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "t": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = obs.current_span_id()
        if span is not None:
            payload["span"] = span
        for name in _EXTRA_FIELDS:
            value = record.__dict__.get(name)
            if value is not None:
                payload[name] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def setup_logging(
    level: str = "warning",
    as_json: bool = False,
    stream=None,
) -> logging.Handler:
    """Install one stderr handler on the root logger and return it.

    Idempotent in effect: the root logger's handlers are replaced, not
    appended, so repeated calls (tests, re-entrant mains) never stack
    duplicate lines.
    """
    resolved = getattr(logging, str(level).upper(), None)
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    if as_json:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)s %(name)s: %(message)s"
            )
        )
    root = logging.getLogger()
    root.handlers[:] = [handler]
    root.setLevel(resolved)
    return handler
