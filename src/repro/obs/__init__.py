"""Process-global observability: metrics registry + span tracing.

``repro.obs`` is the one telemetry surface for the whole stack —
engine, scheduler, workers, store, faults, and the measurement service
all talk to the module-level hooks here (:func:`inc`, :func:`gauge`,
:func:`observe`, :func:`timed`, :func:`trace_span`,
:func:`trace_event`).  The design contract is the same as
:mod:`repro.faults`: **disabled is the default and costs one global
``None``-check per hook** — no allocation, no lock, no branch beyond
``if _STATE is None: return`` — so the measurement path stays
bit-identical and within noise of an un-instrumented build (asserted
by ``benchmarks/bench_obs.py``).  Enabled, every hook is a dict update
under a short-held lock (:class:`~repro.obs.registry.MetricsRegistry`)
or a bounded ring append (:class:`~repro.obs.trace.TraceBuffer`).

Enable explicitly with :func:`enable` (the service daemon does), or
ambiently with ``REPRO_OBS=1`` in the environment — worker processes
inherit the environment, and :func:`repro.engine.scheduler` also
threads an explicit flag through its worker initializer so pools
spawned before ``enable()`` still pick it up.  Worker-side telemetry
is accumulated in the worker's own process-global registry, snapshot
via :func:`snapshot_and_reset` at task-return time, and merged into
the parent registry with each ``MapOutcome`` — observability composes
with the process backend without any shared-memory coordination.

Exposition lives in :mod:`repro.obs.export` (Prometheus text) and the
JSON-ready :func:`snapshot`; the daemon's ``metrics`` op returns both.
"""

from __future__ import annotations

import os
import threading
import time
from typing import List, Optional

from repro.obs.export import render_prometheus
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.trace import DEFAULT_CAPACITY, TraceBuffer

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "MetricsRegistry",
    "TraceBuffer",
    "current_span_id",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "inc",
    "merge",
    "merge_snapshots",
    "observe",
    "registry",
    "render_prometheus",
    "reset",
    "snapshot",
    "snapshot_and_reset",
    "timed",
    "trace_buffer",
    "trace_event",
    "trace_events",
    "trace_span",
]


class _ObsState:
    """Everything that exists only while observability is on."""

    __slots__ = ("registry", "trace")

    def __init__(self, trace_capacity: int = DEFAULT_CAPACITY):
        self.registry = MetricsRegistry()
        self.trace = TraceBuffer(capacity=trace_capacity)


#: ``None`` while disabled — every hook below checks exactly this.
_STATE: Optional[_ObsState] = None

#: Per-thread stack of active span ids (log records pick up the top).
_SPANS = threading.local()


def _env_truthy(value: Optional[str]) -> bool:
    return (value or "").strip().lower() in ("1", "true", "yes", "on")


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def enable(trace_capacity: Optional[int] = None) -> None:
    """Turn observability on (idempotent; keeps accumulated state)."""
    global _STATE
    if _STATE is None:
        capacity = trace_capacity
        if capacity is None:
            try:
                capacity = int(
                    os.environ.get("REPRO_OBS_TRACE_CAPACITY", "")
                )
            except ValueError:
                capacity = None
        _STATE = _ObsState(trace_capacity=capacity or DEFAULT_CAPACITY)


def disable() -> None:
    """Turn observability off and drop all accumulated state."""
    global _STATE
    _STATE = None


def enabled() -> bool:
    return _STATE is not None


# ----------------------------------------------------------------------
# Metric hooks (single None-check when disabled)
# ----------------------------------------------------------------------
def inc(name: str, value: float = 1.0, tags: Optional[dict] = None) -> None:
    state = _STATE
    if state is None:
        return
    state.registry.inc(name, value, tags)


def gauge(name: str, value: float, tags: Optional[dict] = None) -> None:
    state = _STATE
    if state is None:
        return
    state.registry.gauge(name, value, tags)


def observe(name: str, value: float,
            tags: Optional[dict] = None) -> None:
    state = _STATE
    if state is None:
        return
    state.registry.observe(name, value, tags)


class _NullContext:
    """Shared no-op context manager for every disabled-path ``with``."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullContext()


class _Timer:
    __slots__ = ("state", "name", "tags", "t0")

    def __init__(self, state: _ObsState, name: str,
                 tags: Optional[dict]):
        self.state = state
        self.name = name
        self.tags = tags

    def __enter__(self):
        self.t0 = time.monotonic()
        return self

    def __exit__(self, *exc):
        self.state.registry.observe(
            self.name, time.monotonic() - self.t0, self.tags
        )
        return False


def timed(name: str, tags: Optional[dict] = None):
    """``with timed("store.put_seconds"):`` — histogram observation."""
    state = _STATE
    if state is None:
        return _NULL
    return _Timer(state, name, tags)


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class _Span:
    __slots__ = ("state", "name", "tags", "span_id")

    def __init__(self, state: _ObsState, name: str, tags: dict):
        self.state = state
        self.name = name
        self.tags = tags

    def __enter__(self):
        self.span_id = self.state.trace.next_span_id()
        stack = getattr(_SPANS, "stack", None)
        if stack is None:
            stack = _SPANS.stack = []
        stack.append(self.span_id)
        self.state.trace.record(
            self.name, "begin", self.span_id, tags=self.tags
        )
        return self.span_id

    def __exit__(self, exc_type, exc, tb):
        tags = {"error": exc_type.__name__} if exc_type else None
        self.state.trace.record(self.name, "end", self.span_id, tags=tags)
        stack = getattr(_SPANS, "stack", None)
        if stack and stack[-1] == self.span_id:
            stack.pop()
        return False


def trace_span(name: str, **tags):
    """``with trace_span("job.execute", key=...) as span_id:``

    Records paired ``begin``/``end`` events (monotonic clock) into the
    bounded ring; the span id is also pushed on a per-thread stack so
    structured log records can attach it (:func:`current_span_id`).
    """
    state = _STATE
    if state is None:
        return _NULL
    return _Span(state, name, tags)


def trace_event(name: str, **tags) -> None:
    """One instantaneous event (fault injections, retries, respawns)."""
    state = _STATE
    if state is None:
        return
    stack = getattr(_SPANS, "stack", None)
    state.trace.record(
        name, "event",
        stack[-1] if stack else None,
        tags=tags or None,
    )


def current_span_id() -> Optional[str]:
    """The innermost active span id on this thread, or ``None``."""
    stack = getattr(_SPANS, "stack", None)
    return stack[-1] if stack else None


# ----------------------------------------------------------------------
# Access / accumulation
# ----------------------------------------------------------------------
def registry() -> Optional[MetricsRegistry]:
    state = _STATE
    return None if state is None else state.registry


def trace_buffer() -> Optional[TraceBuffer]:
    state = _STATE
    return None if state is None else state.trace


def snapshot() -> Optional[dict]:
    """JSON-ready snapshot of the process-global registry (or None)."""
    state = _STATE
    return None if state is None else state.registry.snapshot()


def snapshot_and_reset() -> Optional[dict]:
    """Atomic drain of the registry — the worker-side merge primitive."""
    state = _STATE
    return None if state is None else state.registry.snapshot_and_reset()


def merge(snap: Optional[dict]) -> None:
    """Fold a worker/foreign snapshot into the process registry."""
    state = _STATE
    if state is None or not snap:
        return
    state.registry.merge(snap)


def trace_events() -> List[dict]:
    state = _STATE
    return [] if state is None else state.trace.events()


def reset() -> None:
    """Clear metrics and trace (keeps observability enabled)."""
    state = _STATE
    if state is not None:
        state.registry.reset()
        state.trace.clear()


# Ambient opt-in: worker processes inherit the environment, so a parent
# that exports REPRO_OBS=1 gets telemetry from every process it spawns.
if _env_truthy(os.environ.get("REPRO_OBS")):
    enable()
