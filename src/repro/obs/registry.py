"""Thread-safe metrics registry: counters, gauges, latency histograms.

One lock guards three flat dicts keyed by ``(name, tags)`` where
``tags`` is a sorted tuple of ``(key, value)`` string pairs.  The
operations are deliberately tiny — a dict lookup plus a float add under
a short-held :class:`threading.Lock` — so an enabled registry stays
cheap inside hot loops, and the disabled path (see :mod:`repro.obs`)
never reaches this module at all.

Histograms use fixed cumulative-style buckets (seconds) shared across
every metric so snapshots from different processes merge by plain
element-wise addition.  :meth:`MetricsRegistry.snapshot` returns a
JSON-ready dict and :meth:`MetricsRegistry.merge` folds one snapshot
into another registry — the worker→parent accumulation path used by
:class:`repro.engine.scheduler.WorkerPool`.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "diff_snapshots",
    "merge_snapshots",
]

#: Histogram bucket upper bounds in seconds (an implicit +Inf bucket
#: follows).  Spanning 100us..60s covers everything from a single
#: kernel call to a full lot screen.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, tags: Optional[dict]) -> _Key:
    if not tags:
        return (name, ())
    return (
        name,
        tuple(sorted((str(k), str(v)) for k, v in tags.items())),
    )


class MetricsRegistry:
    """Counters, gauges and fixed-bucket histograms behind one lock."""

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        # name/tags -> [bucket_counts..., +inf_count, sum, count]
        self._hists: Dict[_Key, list] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0,
            tags: Optional[dict] = None) -> None:
        key = _key(name, tags)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float,
              tags: Optional[dict] = None) -> None:
        key = _key(name, tags)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float,
                tags: Optional[dict] = None) -> None:
        """Record one sample (seconds) into ``name``'s histogram."""
        key = _key(name, tags)
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = [0] * (len(self.buckets) + 1) + [0.0, 0]
                self._hists[key] = hist
            idx = len(self.buckets)  # +Inf by default
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            hist[idx] += 1
            hist[-2] += value
            hist[-1] += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready copy of every series (safe to pickle/merge)."""
        with self._lock:
            counters = [
                {"name": n, "tags": dict(t), "value": v}
                for (n, t), v in sorted(self._counters.items())
            ]
            gauges = [
                {"name": n, "tags": dict(t), "value": v}
                for (n, t), v in sorted(self._gauges.items())
            ]
            hists = [
                {
                    "name": n,
                    "tags": dict(t),
                    "buckets": list(h[: len(self.buckets) + 1]),
                    "sum": h[-2],
                    "count": h[-1],
                }
                for (n, t), h in sorted(self._hists.items())
            ]
        return {
            "bucket_bounds": list(self.buckets),
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
        }

    def merge(self, snap: Optional[dict]) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram cells add; gauges take the incoming
        value (last-writer-wins, matching Prometheus semantics for a
        remote gauge).  Snapshots with foreign bucket bounds are
        rejected rather than silently mis-binned.
        """
        if not snap:
            return
        bounds = tuple(snap.get("bucket_bounds", ()))
        if snap.get("histograms") and bounds != self.buckets:
            raise ValueError(
                "cannot merge snapshot with different histogram buckets"
            )
        with self._lock:
            for c in snap.get("counters", ()):
                key = _key(c["name"], c.get("tags"))
                self._counters[key] = (
                    self._counters.get(key, 0.0) + c["value"]
                )
            for g in snap.get("gauges", ()):
                key = _key(g["name"], g.get("tags"))
                self._gauges[key] = float(g["value"])
            for h in snap.get("histograms", ()):
                key = _key(h["name"], h.get("tags"))
                hist = self._hists.get(key)
                if hist is None:
                    hist = [0] * (len(self.buckets) + 1) + [0.0, 0]
                    self._hists[key] = hist
                for i, cell in enumerate(h["buckets"]):
                    hist[i] += cell
                hist[-2] += h["sum"]
                hist[-1] += h["count"]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()

    def snapshot_and_reset(self) -> dict:
        """Atomic snapshot+clear (the worker-side merge primitive)."""
        with self._lock:
            counters, self._counters = self._counters, {}
            gauges, self._gauges = self._gauges, {}
            hists, self._hists = self._hists, {}
        return {
            "bucket_bounds": list(self.buckets),
            "counters": [
                {"name": n, "tags": dict(t), "value": v}
                for (n, t), v in sorted(counters.items())
            ],
            "gauges": [
                {"name": n, "tags": dict(t), "value": v}
                for (n, t), v in sorted(gauges.items())
            ],
            "histograms": [
                {
                    "name": n,
                    "tags": dict(t),
                    "buckets": list(h[: len(self.buckets) + 1]),
                    "sum": h[-2],
                    "count": h[-1],
                }
                for (n, t), h in sorted(hists.items())
            ],
        }


def merge_snapshots(*snaps: Optional[dict]) -> dict:
    """Merge any number of snapshots into one fresh snapshot."""
    acc = MetricsRegistry()
    for snap in snaps:
        if snap:
            acc.merge(snap)
    return acc.snapshot()


def diff_snapshots(before: Optional[dict], after: dict) -> dict:
    """``after - before``: the telemetry one window of work produced.

    Counters and histogram cells subtract (series absent from
    ``before`` pass through; zero-delta counters are dropped); gauges
    are instantaneous, so the ``after`` values stand.  ``before`` may
    be ``None`` (observability enabled mid-window) — the delta is then
    ``after`` itself.
    """
    if not before:
        return after
    prev_counters = {
        _key(c["name"], c.get("tags")): c["value"]
        for c in before.get("counters", ())
    }
    prev_hists = {
        _key(h["name"], h.get("tags")): h
        for h in before.get("histograms", ())
    }
    counters = []
    for c in after.get("counters", ()):
        delta = c["value"] - prev_counters.get(
            _key(c["name"], c.get("tags")), 0.0
        )
        if delta:
            counters.append({**c, "value": delta})
    hists = []
    for h in after.get("histograms", ()):
        prev = prev_hists.get(_key(h["name"], h.get("tags")))
        if prev is None:
            if h["count"]:
                hists.append(h)
            continue
        count = h["count"] - prev["count"]
        if not count:
            continue
        hists.append(
            {
                **h,
                "buckets": [
                    a - b for a, b in zip(h["buckets"], prev["buckets"])
                ],
                "sum": h["sum"] - prev["sum"],
                "count": count,
            }
        )
    return {
        "bucket_bounds": list(after.get("bucket_bounds", ())),
        "counters": counters,
        "gauges": list(after.get("gauges", ())),
        "histograms": hists,
    }
