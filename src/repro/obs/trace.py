"""Span-based tracing into a bounded in-memory ring buffer.

A trace event is a small dict — monotonic timestamp, span id, name,
phase (``begin``/``end``/``event``), pid, and free-form string tags —
appended to a ``deque(maxlen=capacity)``: the ring silently drops the
oldest events instead of growing, so a long-lived daemon can trace
every job forever in bounded memory.  ``n_recorded`` keeps the true
total so readers can tell how much history the ring has shed.

Timestamps come from ``time.monotonic()`` (durations survive clock
steps); one wall-clock anchor pair is captured at buffer creation so
exporters can reconstruct approximate wall times if they need them.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import List, Optional

__all__ = ["TraceBuffer", "DEFAULT_CAPACITY"]

DEFAULT_CAPACITY = 4096


class TraceBuffer:
    """Bounded ring of trace events plus a process-local span counter."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=self.capacity)
        self._span_ids = itertools.count(1)
        self.n_recorded = 0
        # Wall/monotonic anchor for offline reconstruction.
        self.anchor_wall = time.time()
        self.anchor_mono = time.monotonic()

    def next_span_id(self) -> str:
        return f"{os.getpid()}-{next(self._span_ids)}"

    def record(
        self,
        name: str,
        phase: str,
        span_id: Optional[str] = None,
        t: Optional[float] = None,
        tags: Optional[dict] = None,
    ) -> None:
        event = {
            "t": time.monotonic() if t is None else t,
            "name": name,
            "phase": phase,
            "span": span_id,
            "pid": os.getpid(),
        }
        if tags:
            event["tags"] = {str(k): str(v) for k, v in tags.items()}
        with self._lock:
            self._events.append(event)
            self.n_recorded += 1

    def events(self) -> List[dict]:
        """Oldest-first copy of the ring's current contents."""
        with self._lock:
            return list(self._events)

    def describe(self, limit: Optional[int] = None) -> dict:
        """JSON-ready view: events + ring accounting + clock anchor.

        ``limit`` keeps only the newest ``limit`` events — wire
        responses (the daemon's ``metrics`` op) bound their payload
        with it so a full ring cannot blow the protocol's line limit.
        """
        with self._lock:
            events = list(self._events)
            recorded = self.n_recorded
        if limit is not None and limit >= 0:
            events = events[len(events) - min(limit, len(events)):]
        return {
            "capacity": self.capacity,
            "recorded": recorded,
            "dropped": max(0, recorded - len(events)),
            "anchor_wall": self.anchor_wall,
            "anchor_mono": self.anchor_mono,
            "events": events,
        }

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.n_recorded = 0
