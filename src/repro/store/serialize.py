"""Bit-exact (de)serialization of measurement results and record batches.

The store's contract is that a cache hit equals a recompute *bit for
bit*, so the serialized form must round-trip every value exactly:

* arrays (the normalized hot/cold spectra, packed record words) travel
  as raw ``.npy`` members of an ``.npz`` archive — lossless by
  construction;
* scalars travel in a JSON header embedded in the same archive —
  Python's JSON encoder emits the shortest repr that round-trips a
  double, so finite float scalars are lossless too;
* every payload carries its kind and schema version, and deserializers
  refuse payloads from another schema instead of guessing.

One ``.npz`` per entry keeps the store's atomic-write story trivial
(one ``os.replace`` per entry) and the layout shardable — an entry is
self-describing and can be copied between stores byte for byte.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

import numpy as np

from repro.bitstream import PackedRecordBatch, RecordProvenance
from repro.core.bist import BISTResult
from repro.core.normalization import NormalizationResult
from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError

from repro.store.keys import SCHEMA_VERSION

__all__ = [
    "META_MEMBER",
    "payload_from_records",
    "payload_from_result",
    "records_from_payload",
    "result_from_payload",
]

#: Archive member holding the JSON header (a 0-d unicode array).
META_MEMBER = "__meta__"

#: Payload kinds the store recognizes.
RESULT_KIND = "bist_result"
RECORDS_KIND = "packed_records"


def _check_kind(meta: dict, expected: str) -> None:
    kind = meta.get("kind")
    if kind != expected:
        raise ConfigurationError(
            f"payload is {kind!r}, expected {expected!r}"
        )
    schema = meta.get("schema")
    if schema != SCHEMA_VERSION:
        raise ConfigurationError(
            f"payload schema {schema!r} does not match code schema "
            f"{SCHEMA_VERSION} (stale entry; run gc)"
        )


# ----------------------------------------------------------------------
# BISTResult
# ----------------------------------------------------------------------
def payload_from_result(
    result: BISTResult,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Split a :class:`~repro.core.bist.BISTResult` into JSON scalars
    plus raw arrays (the four normalized-spectrum vectors)."""
    if not isinstance(result, BISTResult):
        raise ConfigurationError(
            f"can only serialize BISTResult, got {type(result).__name__}"
        )
    norm = result.normalization
    meta = {
        "kind": RESULT_KIND,
        "schema": SCHEMA_VERSION,
        "y": result.y,
        "noise_factor": result.noise_factor,
        "noise_figure_db": result.noise_figure_db,
        "noise_temperature_k": result.noise_temperature_k,
        "band_power_hot": result.band_power_hot,
        "band_power_cold": result.band_power_cold,
        "t_hot_k": result.t_hot_k,
        "t_cold_k": result.t_cold_k,
        "normalization": {
            "line_frequency_hot_hz": norm.line_frequency_hot_hz,
            "line_frequency_cold_hz": norm.line_frequency_cold_hz,
            "line_power_hot": norm.line_power_hot,
            "line_power_cold": norm.line_power_cold,
            "scale_hot": norm.scale_hot,
            "scale_cold": norm.scale_cold,
            "enbw_hot_hz": norm.hot.enbw_hz,
            "enbw_cold_hz": norm.cold.enbw_hz,
        },
    }
    arrays = {
        "hot_frequencies": norm.hot.frequencies,
        "hot_psd": norm.hot.psd,
        "cold_frequencies": norm.cold.frequencies,
        "cold_psd": norm.cold.psd,
    }
    return meta, arrays


def result_from_payload(
    meta: dict, arrays: Dict[str, np.ndarray]
) -> BISTResult:
    """Rebuild the exact :class:`BISTResult` a payload was made from."""
    _check_kind(meta, RESULT_KIND)
    norm_meta = meta["normalization"]
    norm = NormalizationResult(
        hot=Spectrum(
            arrays["hot_frequencies"],
            arrays["hot_psd"],
            enbw_hz=norm_meta["enbw_hot_hz"],
        ),
        cold=Spectrum(
            arrays["cold_frequencies"],
            arrays["cold_psd"],
            enbw_hz=norm_meta["enbw_cold_hz"],
        ),
        line_frequency_hot_hz=norm_meta["line_frequency_hot_hz"],
        line_frequency_cold_hz=norm_meta["line_frequency_cold_hz"],
        line_power_hot=norm_meta["line_power_hot"],
        line_power_cold=norm_meta["line_power_cold"],
        scale_hot=norm_meta["scale_hot"],
        scale_cold=norm_meta["scale_cold"],
    )
    return BISTResult(
        y=meta["y"],
        noise_factor=meta["noise_factor"],
        noise_figure_db=meta["noise_figure_db"],
        noise_temperature_k=meta["noise_temperature_k"],
        band_power_hot=meta["band_power_hot"],
        band_power_cold=meta["band_power_cold"],
        normalization=norm,
        t_hot_k=meta["t_hot_k"],
        t_cold_k=meta["t_cold_k"],
    )


# ----------------------------------------------------------------------
# PackedRecordBatch
# ----------------------------------------------------------------------
def payload_from_records(
    batch: PackedRecordBatch,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Split a packed record batch into JSON metadata plus the words."""
    if not isinstance(batch, PackedRecordBatch):
        raise ConfigurationError(
            "can only serialize PackedRecordBatch, got "
            f"{type(batch).__name__}"
        )
    provenance: Optional[list] = None
    if batch.provenance is not None:
        provenance = [
            None if p is None else p.to_dict() for p in batch.provenance
        ]
    meta = {
        "kind": RECORDS_KIND,
        "schema": SCHEMA_VERSION,
        "n_samples": batch.n_samples,
        "sample_rate": batch.sample_rate,
        "provenance": provenance,
    }
    return meta, {"words": batch.words}


def records_from_payload(
    meta: dict, arrays: Dict[str, np.ndarray]
) -> PackedRecordBatch:
    """Rebuild the exact packed batch a payload was made from."""
    _check_kind(meta, RECORDS_KIND)
    provenance = meta.get("provenance")
    if provenance is not None:
        provenance = [
            None if p is None else RecordProvenance.from_dict(p)
            for p in provenance
        ]
    return PackedRecordBatch(
        arrays["words"],
        meta["n_samples"],
        meta["sample_rate"],
        provenance=provenance,
    )


# ----------------------------------------------------------------------
# Archive helpers (shared by the store)
# ----------------------------------------------------------------------
def encode_meta(meta: dict) -> np.ndarray:
    """The JSON header as a 0-d unicode array (an ``.npz`` member)."""
    return np.array(json.dumps(meta, sort_keys=True, allow_nan=False))


def decode_meta(member: np.ndarray) -> dict:
    """Parse the JSON header member back to a dict."""
    return json.loads(str(np.asarray(member)[()]))
