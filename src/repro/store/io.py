"""Worker-direct store I/O.

PR 5's engine funneled every cache write through the parent process:
workers returned results (since PR 7 through shared memory), then the
parent serialized and published each payload alone.  At lot scale that
round-trip is the warm-write bottleneck — serialization is pure CPU
and the 256-way key fan-out already makes writes shard-local and
atomic, so workers can publish straight into the store.

The parent ships only the *store root* through the pool initializer
(:func:`repro.engine.scheduler._worker_init`); each worker lazily opens
its own :class:`~repro.store.ResultStore` handle on first use.  The
write path itself needs no further coordination: content-addressed
payloads publish via ``os.replace`` and identical keys imply identical
bytes, so two workers (or two whole processes) racing on one key both
win.  Worker-side writes run the very same serialization and sealing
code as parent-side writes — bit-identical on disk by construction,
asserted in ``tests/`` and ``benchmarks/bench_store.py``.

The functions here are module-level so the process backend can pickle
them by reference.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bitstream import PackedRecordBatch
from repro.core.bist import BISTResult
from repro.store.store import ResultStore

__all__ = [
    "configure_worker_store",
    "put_records_direct",
    "put_result_direct",
    "worker_store",
]

_WORKER_ROOT: Optional[str] = None
_WORKER_STORE: Optional[ResultStore] = None


def configure_worker_store(root: Optional[str]) -> None:
    """Install (or clear, with ``None``) this process's store root.

    Called by the pool initializer in every worker; the store handle
    itself opens lazily so workers that never write pay nothing.
    """
    global _WORKER_ROOT, _WORKER_STORE
    _WORKER_ROOT = str(root) if root is not None else None
    _WORKER_STORE = None


def worker_store() -> Optional[ResultStore]:
    """This process's store handle, or ``None`` when unconfigured."""
    global _WORKER_STORE
    if _WORKER_STORE is None and _WORKER_ROOT is not None:
        _WORKER_STORE = ResultStore(_WORKER_ROOT)
    return _WORKER_STORE


def put_result_direct(item: Tuple[str, BISTResult]) -> bool:
    """Publish one ``(key, result)`` pair from inside a worker."""
    key, result = item
    store = worker_store()
    if store is None:
        raise RuntimeError(
            "worker store is not configured (the pool initializer did "
            "not receive a store root)"
        )
    return store.put_result(key, result)


def put_records_direct(item: Tuple[str, PackedRecordBatch]) -> bool:
    """Publish one ``(key, packed records)`` pair from inside a worker."""
    key, batch = item
    store = worker_store()
    if store is None:
        raise RuntimeError(
            "worker store is not configured (the pool initializer did "
            "not receive a store root)"
        )
    return store.put_records(key, batch)
