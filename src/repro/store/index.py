"""Persistent append-only store index.

The tree walk :meth:`repro.store.ResultStore.index` performs is ground
truth but O(entries) in ``stat`` calls — on a million-entry store every
``store ls``, resume re-plan and retest plan pays a full 256-way
directory walk.  This module keeps a *persistent index* under
``<store root>/index/``: a sequence of append-only segment files of
fixed 64-byte records, one ``add``/``remove`` per entry mutation, read
back zero-copy through ``numpy.memmap``.  Loading the index costs one
vectorized scan of the segment bytes instead of a tree walk, so
enumeration on a large store is O(changed records), not O(files).

Layout::

    index/
      lock              # flock serializing appends / rotation
      seg-00000000.idx  # 16-byte header + N x 64-byte records
      seg-00000001.idx  # appended after a rotation; ids only grow

Record format (little-endian, 64 bytes)::

    op        u16     1 = add, 2 = remove
    kind      u16     index into KINDS
    check     u32     checksum over the remaining fields
    key       4xu64   raw SHA-256 digest (32 bytes)
    nbytes    u64     sealed payload size
    mtime     f64     publish time (advisory; drives LRU eviction)
    reserved  u64     zero

Crash recovery is *by construction*: records are fixed-size and
checksummed, so a torn append (process killed mid-``write``, or the
``index_torn_write`` fault site) leaves a trailing fragment that fails
the size/checksum filter and is simply skipped on replay — and the next
locked append truncates the file back to a record boundary before
writing, so the index self-heals.  The index is an *advisory cache*
over the tree: a record lost to a torn write means one entry
temporarily missing from the fast path, never a wrong answer about
payload bytes; :meth:`PersistentIndex.rebuild` (CLI ``store reindex``)
restores it from a walk.

Rotation (:meth:`PersistentIndex.rotate`) compacts the log: the live
set is replayed and written as one fresh checkpoint segment — published
atomically via ``os.replace`` — then the older segments are unlinked.
A crash between publish and unlink only leaves duplicate ``add``
records, which replay idempotently.
"""

from __future__ import annotations

import logging
import os
import pathlib
import re
import tempfile
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.injector import index_torn_fault
from repro.store.keys import KINDS
from repro.store.locks import file_lock

__all__ = ["PersistentIndex", "OP_ADD", "OP_REMOVE"]

_LOG = logging.getLogger("repro.store.index")

OP_ADD = 1
OP_REMOVE = 2

_MAGIC = b"REPROIDX"
_VERSION = 1
_HEADER_LEN = 16

#: One index record; fixed 64 bytes so readers can vector-scan and a
#: torn tail is detectable by size alone.
RECORD_DTYPE = np.dtype(
    [
        ("op", "<u2"),
        ("kind", "<u2"),
        ("check", "<u4"),
        ("key", "<u8", (4,)),
        ("nbytes", "<u8"),
        ("mtime", "<f8"),
        ("reserved", "<u8"),
    ]
)
assert RECORD_DTYPE.itemsize == 64

_KIND_IDS: Dict[str, int] = {kind: i for i, kind in enumerate(KINDS)}

# Splits one bulk-hex pass over a segment's keys back into 64-char
# digests at C speed (see PersistentIndex.replay).
_HEX_KEY_RE = re.compile(r".{64}")


def _header() -> bytes:
    return _MAGIC + int(_VERSION).to_bytes(4, "little") + b"\x00" * 4


def _checksums(records: np.ndarray) -> np.ndarray:
    """Vectorized per-record checksum (FNV-style mix over the fields).

    Not cryptographic — the payload seal owns integrity of *data*; this
    only has to reject torn or zero-filled index records, and it must
    be computable with one numpy pass over a million-record memmap.
    """
    prime = np.uint64(0x100000001B3)
    acc = np.full(records.shape, np.uint64(0x9E3779B97F4A7C15))
    key = records["key"]
    for word in (
        key[..., 0],
        key[..., 1],
        key[..., 2],
        key[..., 3],
        records["nbytes"],
        records["mtime"].view(np.uint64),
        records["op"].astype(np.uint64),
        records["kind"].astype(np.uint64),
    ):
        acc = (acc ^ np.asarray(word, dtype=np.uint64)) * prime
    return (acc ^ (acc >> np.uint64(32))).astype(np.uint32)


def _key_to_words(key: str) -> np.ndarray:
    return np.frombuffer(bytes.fromhex(key), dtype="<u8")


def _words_to_key(words: np.ndarray) -> str:
    return words.astype("<u8").tobytes().hex()


def make_record(
    op: int, kind: str, key: str, nbytes: int, mtime: float
) -> np.ndarray:
    """One checksummed record, ready to append."""
    if kind not in _KIND_IDS:
        raise ConfigurationError(
            f"kind must be one of {KINDS}, got {kind!r}"
        )
    record = np.zeros(1, dtype=RECORD_DTYPE)
    record["op"] = op
    record["kind"] = _KIND_IDS[kind]
    record["key"] = _key_to_words(key)
    record["nbytes"] = int(nbytes)
    record["mtime"] = float(mtime)
    record["check"] = _checksums(record)
    return record


class PersistentIndex:
    """Append-only segmented index under one store's ``index/`` dir.

    Instances are cheap handles (no open files are held between
    operations); every mutation takes the index lock, every read goes
    through a fresh memmap of the current segments — so any number of
    processes can append and read concurrently.
    """

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = pathlib.Path(root)

    # ------------------------------------------------------------------
    @property
    def exists(self) -> bool:
        """Whether this store has an initialized persistent index."""
        return self.root.is_dir() and bool(self._segments())

    def initialize(self) -> None:
        """Create the index (an empty checkpoint segment) if absent."""
        if self.exists:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with file_lock(self._lock_path()):
            if not self._segments():
                self._publish_segment(0, np.zeros(0, dtype=RECORD_DTYPE))

    def _lock_path(self) -> pathlib.Path:
        return self.root / "lock"

    def _segments(self) -> List[pathlib.Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("seg-????????.idx"))

    @staticmethod
    def _segment_id(path: pathlib.Path) -> int:
        return int(path.stem.split("-", 1)[1], 10)

    def _publish_segment(self, seg_id: int, records: np.ndarray) -> None:
        path = self.root / f"seg-{seg_id:08d}.idx"
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_header())
                handle.write(records.tobytes())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - already published
                pass
            raise

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append(
        self, op: int, kind: str, key: str, nbytes: int, mtime: float
    ) -> None:
        """Append one mutation record (no-op if the index is absent)."""
        self.append_many([(op, kind, key, nbytes, mtime)])

    def append_many(
        self, mutations: Iterable[Tuple[int, str, str, int, float]]
    ) -> None:
        """Append a batch of ``(op, kind, key, nbytes, mtime)`` records
        under one lock acquisition.

        Appends go to the newest segment; the file is first truncated
        back to a record boundary, repairing any torn tail a crashed
        writer left.  Absent index ⇒ silently skipped (legacy store;
        the tree walk stays authoritative until ``store reindex``).
        """
        records = [make_record(*mutation) for mutation in mutations]
        if not records:
            return
        data = np.concatenate(records).tobytes()
        if index_torn_fault():
            # As a crash mid-append would leave it: a partial record
            # that replay's size/checksum filter skips.
            data = data[: max(1, RECORD_DTYPE.itemsize // 3)]
        with file_lock(self._lock_path()):
            segments = self._segments()
            if not segments:
                return
            with open(segments[-1], "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                aligned = _HEADER_LEN + max(
                    0, (size - _HEADER_LEN)
                ) // RECORD_DTYPE.itemsize * RECORD_DTYPE.itemsize
                if size != aligned:
                    handle.truncate(aligned)
                    handle.seek(aligned)
                handle.write(data)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _segment_records(self, path: pathlib.Path) -> Optional[np.ndarray]:
        """Valid records of one segment (checksum-filtered), or ``None``
        for a segment whose header is unreadable."""
        try:
            size = path.stat().st_size
            if size < _HEADER_LEN:
                return None
            with open(path, "rb") as handle:
                head = handle.read(_HEADER_LEN)
            if head[: len(_MAGIC)] != _MAGIC:
                return None
            n = (size - _HEADER_LEN) // RECORD_DTYPE.itemsize
            if n == 0:
                return np.zeros(0, dtype=RECORD_DTYPE)
            records = np.memmap(
                path,
                dtype=RECORD_DTYPE,
                mode="r",
                offset=_HEADER_LEN,
                shape=(n,),
            )
        except (OSError, ValueError):
            return None
        valid = records["check"] == _checksums(records)
        valid &= (records["op"] == OP_ADD) | (records["op"] == OP_REMOVE)
        valid &= records["kind"] < len(KINDS)
        if bool(valid.all()):
            return np.asarray(records)
        return np.asarray(records[valid])

    def replay(self) -> Dict[Tuple[str, str], Tuple[int, float]]:
        """The live entry set: ``(kind, key) -> (nbytes, mtime)``.

        Segments replay in id order, records in file order; the last
        mutation for a ``(kind, key)`` wins.  Torn or corrupt records
        are skipped (and counted on :meth:`stats` as ``n_skipped``).
        """
        live: Dict[Tuple[str, str], Tuple[int, float]] = {}
        for path in self._segments():
            records = self._segment_records(path)
            if records is None:
                _LOG.warning("skipping unreadable index segment %s", path)
                continue
            ops = records["op"].tolist()
            kinds = records["kind"].tolist()
            # One bulk hex pass instead of a per-record conversion: on a
            # million-record checkpoint this loop is the whole cost of
            # enumeration, so every per-record allocation counts.
            keys_hex = records["key"].astype("<u8").tobytes().hex()
            keys = _HEX_KEY_RE.findall(keys_hex)
            nbytes = records["nbytes"].tolist()
            mtimes = records["mtime"].tolist()
            if OP_REMOVE not in ops:
                # Checkpoint segments and append tails are usually pure
                # adds; last-wins then degenerates to dict insertion
                # order, which zip/update handle without a Python loop.
                live.update(
                    zip(
                        zip(map(KINDS.__getitem__, kinds), keys),
                        zip(nbytes, mtimes),
                    )
                )
                continue
            for i, op in enumerate(ops):
                entry = (KINDS[kinds[i]], keys[i])
                if op == OP_ADD:
                    live[entry] = (nbytes[i], mtimes[i])
                else:
                    live.pop(entry, None)
        return live

    def stats(self) -> dict:
        """Machine-readable index totals (the ``store info`` payload)."""
        n_records = 0
        n_skipped = 0
        index_bytes = 0
        segments = self._segments()
        for path in segments:
            try:
                index_bytes += path.stat().st_size
            except OSError:  # pragma: no cover - raced with rotation
                continue
            records = self._segment_records(path)
            if records is None:
                continue
            n_valid = int(records.shape[0])
            n_total = (
                path.stat().st_size - _HEADER_LEN
            ) // RECORD_DTYPE.itemsize
            n_records += n_valid
            n_skipped += max(0, n_total - n_valid)
        return {
            "n_segments": len(segments),
            "n_records": n_records,
            "n_skipped": n_skipped,
            "n_entries": len(self.replay()),
            "index_bytes": index_bytes,
        }

    def total_bytes(self) -> int:
        """Live payload bytes according to the index (no tree walk)."""
        return sum(nbytes for nbytes, _ in self.replay().values())

    # ------------------------------------------------------------------
    # Rotation / rebuild
    # ------------------------------------------------------------------
    def _checkpoint_records(
        self, live: Dict[Tuple[str, str], Tuple[int, float]]
    ) -> np.ndarray:
        if not live:
            return np.zeros(0, dtype=RECORD_DTYPE)
        return np.concatenate(
            [
                make_record(OP_ADD, kind, key, nbytes, mtime)
                for (kind, key), (nbytes, mtime) in sorted(live.items())
            ]
        )

    def rotate(self) -> dict:
        """Compact the log into one fresh checkpoint segment.

        The checkpoint publishes atomically *before* older segments are
        unlinked, so a reader (or a crash) at any instant sees a set of
        segments that replays to the live set — at worst with
        idempotent duplicate ``add`` records.
        """
        with file_lock(self._lock_path()):
            segments = self._segments()
            if not segments:
                raise ConfigurationError(
                    f"no persistent index under {self.root}; run reindex"
                )
            live = self.replay()
            next_id = self._segment_id(segments[-1]) + 1
            self._publish_segment(next_id, self._checkpoint_records(live))
            for path in segments:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - raced with a peer
                    pass
        return {"n_entries": len(live), "n_segments_merged": len(segments)}

    def rebuild(
        self, entries: Iterable[Tuple[str, str, int, float]]
    ) -> dict:
        """Replace the index with a checkpoint built from a tree walk.

        ``entries`` is ``(kind, key, nbytes, mtime)`` tuples — ground
        truth from :meth:`repro.store.ResultStore.index`.  This is the
        recovery path for legacy stores (no index yet) and for an index
        that lost records to torn writes.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        live = {
            (kind, key): (int(nbytes), float(mtime))
            for kind, key, nbytes, mtime in entries
        }
        with file_lock(self._lock_path()):
            segments = self._segments()
            next_id = (
                self._segment_id(segments[-1]) + 1 if segments else 0
            )
            self._publish_segment(next_id, self._checkpoint_records(live))
            for path in segments:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - raced with a peer
                    pass
        return {"n_entries": len(live), "n_segments_merged": len(segments)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PersistentIndex({str(self.root)!r})"
