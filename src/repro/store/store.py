"""The on-disk measurement result store.

Layout (all paths relative to the store root)::

    store.json                      # {"schema": N} — created with the store
    results/<k2>/<key>.npz          # serialized BISTResults
    records/<k2>/<key>.npz          # serialized PackedRecordBatches
    outcomes/<k2>/<key>.npz         # experiment-level JSON outcomes

where ``<key>`` is the 64-hex-digit content address
(:func:`repro.store.keys.measurement_key` for measurements) and
``<k2>`` its first two hex digits — a flat fan-out that keeps
directories small at production scale and makes the store trivially
shardable by key prefix.

Durability discipline: every write lands in a temporary file in the
destination directory and is published with ``os.replace`` — readers
(including concurrent processes) never observe a torn entry, and a
crash mid-write leaves only a ``*.tmp`` orphan that :meth:`ResultStore.gc`
reclaims.  Entries are content-addressed, so overwriting an existing
key is a no-op by construction (same key ⇒ same bytes) and
:meth:`ResultStore.put_result` skips the disk work entirely.

Integrity discipline: every payload is *sealed* — a SHA-256 digest of
the npz bytes rides as a fixed-size trailer after the archive (zip
readers ignore trailing bytes, so the file stays a valid npz) — and
*verified on read*.  An entry that fails verification (bit rot, a torn
copy, an injected fault) is quarantined: moved aside under
``quarantine/`` — which unblocks the content-addressed rewrite — logged
on :attr:`ResultStore.quarantine_log`, and reported as a miss so the
caller transparently recomputes.  Legacy entries without a trailer
still verify through the zip container's own CRCs.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
import pathlib
import tempfile
import time
import zipfile
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.bitstream import PackedRecordBatch
from repro.core.bist import BISTResult
from repro.errors import ConfigurationError
from repro.faults.injector import store_fault

from repro.store import serialize
from repro.store.keys import SCHEMA_VERSION, digest

__all__ = ["ResultStore", "StoreEntry", "StoreIndex"]

_LOG = logging.getLogger("repro.store")

#: Entry kinds, in layout order.
KINDS = ("results", "records", "outcomes")

_KEY_LEN = 64  # sha256 hex

#: How old a temp file must be before ``gc`` treats it as a crashed
#: write — a concurrent writer finishes its publish within seconds, an
#: orphan sits forever.
TMP_GRACE_SECONDS = 600.0

#: Directory (under the store root) corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"

#: Integrity trailer sealed after every payload's npz bytes.  Zip
#: readers locate the archive by scanning backwards for the end-of-
#: central-directory record, so trailing bytes are ignored and the
#: sealed file stays a valid npz.
_SEAL_PREFIX = b"\nREPRO-SHA256:"
_SEAL_LEN = len(_SEAL_PREFIX) + 64 + 1  # prefix + hex digest + "\n"


def _seal(data: bytes) -> bytes:
    """Payload bytes with the integrity trailer appended."""
    return (
        data
        + _SEAL_PREFIX
        + hashlib.sha256(data).hexdigest().encode("ascii")
        + b"\n"
    )


def _unseal(raw: bytes):
    """``(npz bytes, failure reason)`` for sealed file bytes.

    A verified seal returns the body with ``None``; a present-but-wrong
    seal returns ``(None, reason)``.  Bytes without a trailer (legacy
    entries, truncated files) come back whole with ``None`` — the zip
    container's own structure and CRCs are the fallback check, applied
    by the reader.
    """
    if len(raw) < _SEAL_LEN or not raw.endswith(b"\n"):
        return raw, None
    trailer = raw[-_SEAL_LEN:]
    if not trailer.startswith(_SEAL_PREFIX):
        return raw, None
    body = raw[:-_SEAL_LEN]
    want = trailer[len(_SEAL_PREFIX):-1]
    got = hashlib.sha256(body).hexdigest().encode("ascii")
    if got != want:
        return None, "integrity digest mismatch"
    return body, None


def _check_key(key: str) -> str:
    if (
        not isinstance(key, str)
        or len(key) != _KEY_LEN
        or any(c not in "0123456789abcdef" for c in key)
    ):
        raise ConfigurationError(
            f"store keys are {_KEY_LEN}-char lowercase hex digests, got "
            f"{key!r}"
        )
    return key


@dataclass(frozen=True)
class StoreEntry:
    """One stored artifact, as the index enumerates it."""

    key: str
    kind: str
    path: pathlib.Path
    nbytes: int
    mtime: float

    def load_meta(self) -> dict:
        """The entry's JSON header (no array data is materialized)."""
        with np.load(self.path, allow_pickle=False) as archive:
            return serialize.decode_meta(archive[serialize.META_MEMBER])


class StoreIndex:
    """A point-in-time enumeration of a store's entries.

    Built by :meth:`ResultStore.index` from one directory walk; holds
    only paths and sizes (metadata loads lazily per entry), so indexing
    a large store stays cheap.
    """

    def __init__(self, entries: Sequence[StoreEntry]):
        self.entries: List[StoreEntry] = sorted(
            entries, key=lambda e: (e.kind, e.key)
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[StoreEntry]:
        return iter(self.entries)

    @property
    def total_bytes(self) -> int:
        """Stored bytes across every entry."""
        return sum(e.nbytes for e in self.entries)

    def by_kind(self, kind: str) -> List[StoreEntry]:
        """Entries of one kind, key-sorted."""
        if kind not in KINDS:
            raise ConfigurationError(
                f"kind must be one of {KINDS}, got {kind!r}"
            )
        return [e for e in self.entries if e.kind == kind]

    def find(self, key_or_prefix: str) -> List[StoreEntry]:
        """Entries whose key starts with a (possibly partial) key."""
        return [
            e for e in self.entries if e.key.startswith(key_or_prefix)
        ]

    def summary(self) -> dict:
        """Machine-readable totals (the ``store info`` payload)."""
        return {
            "schema": SCHEMA_VERSION,
            "n_entries": len(self.entries),
            "total_bytes": self.total_bytes,
            "kinds": {
                kind: {
                    "n_entries": len(self.by_kind(kind)),
                    "total_bytes": sum(
                        e.nbytes for e in self.by_kind(kind)
                    ),
                }
                for kind in KINDS
            },
        }


class ResultStore:
    """Persistent, content-addressed measurement store.

    Parameters
    ----------
    root:
        Store directory; created (with its marker file) when missing.
        An existing directory is accepted only if it is empty or a
        store of the current or an older schema (older entries can
        never be hit and are gc-able); a directory holding anything
        else, or a store from a *newer* schema, is refused.
    """

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = pathlib.Path(root)
        marker = self.root / "store.json"
        if marker.exists():
            try:
                info = json.loads(marker.read_text())
                schema = int(info["schema"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                raise ConfigurationError(
                    f"{marker} is not a valid store marker"
                ) from None
            if schema > SCHEMA_VERSION:
                raise ConfigurationError(
                    f"{self.root} was created by a newer schema "
                    f"({schema} > {SCHEMA_VERSION}); refusing to mix "
                    "formats"
                )
            # An older marker is fine: entries carry their own schema
            # and stale ones are gc-able.
            self.schema = schema
        elif self.root.exists() and any(self.root.iterdir()):
            raise ConfigurationError(
                f"{self.root} exists, is not empty and is not a result "
                "store (no store.json marker)"
            )
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            self._write_atomic(
                marker,
                json.dumps({"schema": SCHEMA_VERSION}, sort_keys=True).encode(),
            )
            self.schema = SCHEMA_VERSION
        #: Entries moved aside after failing verification, in order:
        #: ``{"kind", "key", "reason", "moved_to"}`` dicts.
        self.quarantine_log: List[dict] = []
        # Per-(kind, key) write counter — the fault injector keys store
        # damage on it so a post-quarantine rewrite draws independently
        # of the damaged first write.
        self._write_seqs: Dict[tuple, int] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, schema={self.schema})"

    # ------------------------------------------------------------------
    # Paths and atomic IO
    # ------------------------------------------------------------------
    def _path(self, kind: str, key: str) -> pathlib.Path:
        return self.root / kind / key[:2] / f"{key}.npz"

    @staticmethod
    def _write_atomic(path: pathlib.Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - already published
                pass
            raise

    def _put_payload(
        self, kind: str, key: str, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> bool:
        """Publish one sealed payload; returns False when the key exists
        (content-addressed ⇒ identical bytes, nothing to do)."""
        path = self._path(kind, _check_key(key))
        if path.exists():
            return False
        buffer = io.BytesIO()
        np.savez(
            buffer,
            **{serialize.META_MEMBER: serialize.encode_meta(meta)},
            **arrays,
        )
        data = _seal(buffer.getvalue())
        seq = self._write_seqs.get((kind, key), 0)
        self._write_seqs[(kind, key)] = seq + 1
        fault = store_fault(key, seq)
        if fault == "truncate":
            # As a crash that beat the atomic rename would leave it.
            data = data[: max(1, len(data) // 2)]
        elif fault == "corrupt":
            damaged = bytearray(data)
            damaged[len(damaged) // 3] ^= 0xFF
            data = bytes(damaged)
        self._write_atomic(path, data)
        return True

    def _quarantine(self, path: pathlib.Path, kind: str, key: str,
                    reason: str) -> None:
        """Move a failed entry aside (unblocking its rewrite) and log it."""
        dest = self.root / QUARANTINE_DIR / kind / key[:2] / path.name
        dest.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, dest)
        except OSError:  # pragma: no cover - raced with another reader
            dest = None
        record = {
            "kind": kind,
            "key": key,
            "reason": reason,
            "moved_to": str(dest) if dest is not None else None,
        }
        self.quarantine_log.append(record)
        _LOG.warning(
            "quarantined store entry %s/%s: %s", kind, key[:12], reason
        )

    def _get_payload(self, kind: str, key: str):
        path = self._path(kind, _check_key(key))
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        body, reason = _unseal(raw)
        if reason is None:
            try:
                with np.load(io.BytesIO(body), allow_pickle=False) as archive:
                    meta = serialize.decode_meta(
                        archive[serialize.META_MEMBER]
                    )
                    arrays = {
                        name: archive[name]
                        for name in archive.files
                        if name != serialize.META_MEMBER
                    }
                return meta, arrays
            except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                # Trailer-less (legacy or truncated) bytes land here:
                # a cut-short file loses the zip end record, a damaged
                # one fails the member CRCs.
                reason = "unreadable archive"
        self._quarantine(path, kind, key, reason)
        return None

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def put_result(self, key: str, result: BISTResult) -> bool:
        """Persist one measurement result; no-op on an existing key."""
        meta, arrays = serialize.payload_from_result(result)
        return self._put_payload("results", key, meta, arrays)

    def get_result(self, key: str) -> Optional[BISTResult]:
        """The stored result for a key, or ``None`` on a miss."""
        payload = self._get_payload("results", key)
        if payload is None:
            return None
        return serialize.result_from_payload(*payload)

    def has_result(self, key: str) -> bool:
        """Whether a result is stored under a key (no deserialization)."""
        return self._path("results", _check_key(key)).exists()

    # ------------------------------------------------------------------
    # Packed record batches
    # ------------------------------------------------------------------
    def put_records(self, key: str, batch: PackedRecordBatch) -> bool:
        """Persist the pooled packed records behind a measurement."""
        meta, arrays = serialize.payload_from_records(batch)
        return self._put_payload("records", key, meta, arrays)

    def get_records(self, key: str) -> Optional[PackedRecordBatch]:
        """The stored packed batch for a key, or ``None`` on a miss."""
        payload = self._get_payload("records", key)
        if payload is None:
            return None
        return serialize.records_from_payload(*payload)

    def has_records(self, key: str) -> bool:
        """Whether pooled records are stored under a key."""
        return self._path("records", _check_key(key)).exists()

    # ------------------------------------------------------------------
    # Experiment-level outcomes (JSON documents)
    # ------------------------------------------------------------------
    def put_outcome(self, key: str, outcome: dict) -> bool:
        """Persist an experiment-level JSON outcome (e.g. a production
        lot manifest).  Values must be JSON-serializable; floats
        round-trip exactly."""
        meta = {
            "kind": "outcome",
            "schema": SCHEMA_VERSION,
            "outcome": outcome,
        }
        return self._put_payload("outcomes", key, meta, {})

    def get_outcome(self, key: str) -> Optional[dict]:
        """The stored outcome document, or ``None`` on a miss."""
        payload = self._get_payload("outcomes", key)
        if payload is None:
            return None
        meta, _ = payload
        if meta.get("schema") != SCHEMA_VERSION:
            raise ConfigurationError(
                f"outcome schema {meta.get('schema')!r} does not match "
                f"code schema {SCHEMA_VERSION} (stale entry; run gc)"
            )
        return meta["outcome"]

    def has_outcome(self, key: str) -> bool:
        """Whether an outcome document is stored under a key."""
        return self._path("outcomes", _check_key(key)).exists()

    def outcome_key(self, document: dict) -> str:
        """Content address for an outcome identity document."""
        return digest({"schema": SCHEMA_VERSION, "outcome_id": document})

    # ------------------------------------------------------------------
    # Enumeration and GC
    # ------------------------------------------------------------------
    def index(self) -> StoreIndex:
        """Enumerate every entry currently in the store."""
        entries: List[StoreEntry] = []
        for kind in KINDS:
            base = self.root / kind
            if not base.is_dir():
                continue
            for path in sorted(base.glob("??/*.npz")):
                stat = path.stat()
                entries.append(
                    StoreEntry(
                        key=path.stem,
                        kind=kind,
                        path=path,
                        nbytes=stat.st_size,
                        mtime=stat.st_mtime,
                    )
                )
        return StoreIndex(entries)

    def gc(
        self,
        all_entries: bool = False,
        tmp_grace_s: float = TMP_GRACE_SECONDS,
    ) -> dict:
        """Reclaim dead storage; returns ``{"n_removed", "bytes_freed",
        "n_tmp", "n_quarantined"}``.

        Removes abandoned temporary files (crashed writes older than
        ``tmp_grace_s`` — a live writer publishes within seconds, so
        fresh temp files are left for it; pass ``0`` to sweep a store
        known to have no concurrent writers), everything under
        ``quarantine/`` (entries moved aside after failing
        verification — kept for inspection until a gc reclaims them),
        entries whose payload is unreadable or whose schema no longer
        matches the code (their keys embed the old schema version, so
        they can never be hit again), and — with ``all_entries`` —
        every entry.
        """
        if tmp_grace_s < 0:
            raise ConfigurationError(
                f"tmp_grace_s must be >= 0, got {tmp_grace_s}"
            )
        n_removed = 0
        bytes_freed = 0
        n_tmp = 0
        now = time.time()
        for tmp in self.root.rglob("*.tmp"):
            stat = tmp.stat()
            if not all_entries and now - stat.st_mtime < tmp_grace_s:
                continue  # possibly a concurrent writer mid-publish
            bytes_freed += stat.st_size
            tmp.unlink()
            n_removed += 1
            n_tmp += 1
        n_quarantined = 0
        quarantine = self.root / QUARANTINE_DIR
        if quarantine.is_dir():
            for path in quarantine.rglob("*.npz"):
                stat = path.stat()
                bytes_freed += stat.st_size
                path.unlink()
                n_removed += 1
                n_quarantined += 1
        for entry in self.index():
            if not all_entries:
                try:
                    schema = entry.load_meta().get("schema")
                except Exception:
                    schema = None  # unreadable ⇒ dead
                if schema == SCHEMA_VERSION:
                    continue
            bytes_freed += entry.nbytes
            entry.path.unlink()
            n_removed += 1
        return {
            "n_removed": n_removed,
            "bytes_freed": bytes_freed,
            "n_tmp": n_tmp,
            "n_quarantined": n_quarantined,
        }
