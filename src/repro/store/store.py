"""The on-disk measurement result store.

Layout (all paths relative to the store root)::

    store.json                      # {"schema": N} — created with the store
    results/<k2>/<key>.npz          # serialized BISTResults
    records/<k2>/<key>.npz          # serialized PackedRecordBatches
    outcomes/<k2>/<key>.npz         # experiment-level JSON outcomes
    results/<k2>/pack-<hex>.pk      # compacted shard pack (many payloads)
    index/seg-<n>.idx               # persistent append-only index

where ``<key>`` is the 64-hex-digit content address
(:func:`repro.store.keys.measurement_key` for measurements) and
``<k2>`` its first two hex digits — a flat fan-out that keeps
directories small at production scale and makes the store trivially
shardable by key prefix.

Durability discipline: every write lands in a temporary file in the
destination directory and is published with ``os.replace`` — readers
(including concurrent processes) never observe a torn entry, and a
crash mid-write leaves only a ``*.tmp`` orphan that :meth:`ResultStore.gc`
reclaims.  Entries are content-addressed, so overwriting an existing
key is a no-op by construction (same key ⇒ same bytes) and
:meth:`ResultStore.put_result` skips the disk work entirely.  Because
publishes are atomic and idempotent, *any number of processes* may
write the same store concurrently without coordination — workers write
their shard directly (see :mod:`repro.store.io`); only shard-mutating
maintenance (compaction, pack rewrites) takes the per-shard lock.

Integrity discipline: every payload is *sealed* — a SHA-256 digest of
the npz bytes rides as a fixed-size trailer after the archive (zip
readers ignore trailing bytes, so the file stays a valid npz) — and
*verified on read*.  An entry that fails verification (bit rot, a torn
copy, an injected fault) is quarantined: moved aside under
``quarantine/`` — which unblocks the content-addressed rewrite — logged
on :attr:`ResultStore.quarantine_log`, and reported as a miss so the
caller transparently recomputes.  Legacy entries without a trailer
still verify through the zip container's own CRCs.

Scale discipline (see ``docs/STORE.md``): a persistent append-only
index (:mod:`repro.store.index`) makes enumeration O(changed) instead
of a tree walk; :meth:`ResultStore.compact` merges small npz payloads
into per-shard pack files *byte-for-byte unchanged*; and
:meth:`ResultStore.evict` bounds the store to a byte budget, oldest
entries first, with lot manifests (``outcomes``) pinned by default.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import operator
import os
import pathlib
import re
import tempfile
import time
import zipfile
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

import numpy as np

from repro.bitstream import PackedRecordBatch
from repro.core.bist import BISTResult
from repro.errors import ConfigurationError
from repro.faults.injector import store_fault
from repro import obs

from repro.store import serialize
from repro.store.index import OP_ADD, OP_REMOVE, PersistentIndex
from repro.store.keys import KINDS, SCHEMA_VERSION, digest
from repro.store.locks import file_lock

__all__ = ["ResultStore", "StoreEntry", "StoreIndex"]

_LOG = logging.getLogger("repro.store")

_KEY_LEN = 64  # sha256 hex

_KEY_RE = re.compile(r"\A[0-9a-f]{64}\Z")
_SHARD_RE = re.compile(r"\A[0-9a-f]{2}\Z")

#: How old a temp file must be before ``gc`` treats it as a crashed
#: write — a concurrent writer finishes its publish within seconds, an
#: orphan sits forever.
TMP_GRACE_SECONDS = 600.0

#: Directory (under the store root) corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"

#: Integrity trailer sealed after every payload's npz bytes.  Zip
#: readers locate the archive by scanning backwards for the end-of-
#: central-directory record, so trailing bytes are ignored and the
#: sealed file stays a valid npz.
_SEAL_PREFIX = b"\nREPRO-SHA256:"
_SEAL_LEN = len(_SEAL_PREFIX) + 64 + 1  # prefix + hex digest + "\n"

#: Shard pack container: magic + u64 TOC length + JSON TOC + the
#: concatenated *sealed payload bytes*, verbatim.  Compaction never
#: re-encodes a payload, so packing preserves every payload bit and
#: the read path verifies packed members exactly like loose files.
_PACK_MAGIC = b"REPROPK1"
_PACK_HEADER_LEN = len(_PACK_MAGIC) + 8

#: Name of the per-shard lock file (compaction / pack rewrites only;
#: plain content-addressed writes are lock-free).
_SHARD_LOCK = ".lock"


def _seal(data: bytes) -> bytes:
    """Payload bytes with the integrity trailer appended."""
    return (
        data
        + _SEAL_PREFIX
        + hashlib.sha256(data).hexdigest().encode("ascii")
        + b"\n"
    )


def _unseal(raw: bytes):
    """``(npz bytes, failure reason)`` for sealed file bytes.

    A verified seal returns the body with ``None``; a present-but-wrong
    seal returns ``(None, reason)``.  Bytes without a trailer (legacy
    entries, truncated files) come back whole with ``None`` — the zip
    container's own structure and CRCs are the fallback check, applied
    by the reader.
    """
    if len(raw) < _SEAL_LEN or not raw.endswith(b"\n"):
        return raw, None
    trailer = raw[-_SEAL_LEN:]
    if not trailer.startswith(_SEAL_PREFIX):
        return raw, None
    body = raw[:-_SEAL_LEN]
    want = trailer[len(_SEAL_PREFIX):-1]
    got = hashlib.sha256(body).hexdigest().encode("ascii")
    if got != want:
        return None, "integrity digest mismatch"
    return body, None


def _check_key(key: str) -> str:
    if not isinstance(key, str) or _KEY_RE.fullmatch(key) is None:
        raise ConfigurationError(
            f"store keys are {_KEY_LEN}-char lowercase hex digests, got "
            f"{key!r}"
        )
    return key


def _read_pack_toc(path: pathlib.Path) -> Dict[str, tuple]:
    """``key -> (absolute offset, length, mtime)`` for one pack file.

    Raises ``ValueError`` on a non-pack / damaged container (callers
    treat the pack as unreadable and leave it for inspection).
    """
    with open(path, "rb") as handle:
        head = handle.read(_PACK_HEADER_LEN)
        if len(head) < _PACK_HEADER_LEN or not head.startswith(_PACK_MAGIC):
            raise ValueError(f"{path} is not a store pack")
        toc_len = int.from_bytes(head[len(_PACK_MAGIC):], "little")
        try:
            toc = json.loads(handle.read(toc_len).decode("utf-8"))
            entries = toc["entries"]
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError):
            raise ValueError(f"{path} has a damaged pack TOC") from None
    data_start = _PACK_HEADER_LEN + toc_len
    out: Dict[str, tuple] = {}
    for key, (offset, length, mtime) in entries.items():
        out[str(key)] = (data_start + int(offset), int(length), float(mtime))
    return out


def _build_pack(members: Dict[str, tuple]):
    """``(file name, container bytes)`` packing ``key -> (raw, mtime)``.

    Payload bytes are concatenated verbatim in key order; the name is a
    content hash of the full container, so rewriting the same member
    set lands on the same file.
    """
    entries = {}
    blobs = []
    offset = 0
    for key in sorted(members):
        raw, mtime = members[key]
        entries[key] = [offset, len(raw), mtime]
        blobs.append(raw)
        offset += len(raw)
    toc = json.dumps(
        {"version": 1, "entries": entries}, sort_keys=True
    ).encode("utf-8")
    data = (
        _PACK_MAGIC
        + len(toc).to_bytes(8, "little")
        + toc
        + b"".join(blobs)
    )
    name = f"pack-{hashlib.sha256(data).hexdigest()[:16]}.pk"
    return name, data


class StoreEntry:
    """One stored artifact, as the index enumerates it.

    ``path`` is the entry's canonical loose location; for a payload
    living inside a shard pack, ``pack``/``offset`` name the container
    and ``nbytes`` is the member length.  ``path`` may be passed as a
    string — or omitted entirely with ``root`` given instead — and
    materializes lazily: enumerating a million entries from the
    persistent index must not pay a million path constructions up
    front.
    """

    __slots__ = (
        "key", "kind", "nbytes", "mtime", "pack", "offset", "_path", "_root"
    )

    def __init__(
        self,
        key: str,
        kind: str,
        path: Union[str, pathlib.Path, None],
        nbytes: int,
        mtime: float,
        pack: Optional[pathlib.Path] = None,
        offset: int = 0,
        root: Optional[str] = None,
    ):
        self.key = key
        self.kind = kind
        self._path = path
        self._root = root
        self.nbytes = nbytes
        self.mtime = mtime
        self.pack = pack
        self.offset = offset

    @property
    def path(self) -> pathlib.Path:
        """The canonical loose location (materialized on first use)."""
        p = self._path
        if p is None:
            p = pathlib.Path(
                f"{self._root}/{self.kind}/{self.key[:2]}/{self.key}.npz"
            )
            self._path = p
        elif not isinstance(p, pathlib.Path):
            p = pathlib.Path(p)
            self._path = p
        return p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoreEntry(kind={self.kind!r}, key={self.key!r}, "
            f"nbytes={self.nbytes})"
        )

    def read_bytes(self) -> bytes:
        """The raw sealed payload bytes, loose or packed."""
        if self.pack is None:
            return self.path.read_bytes()
        with open(self.pack, "rb") as handle:
            handle.seek(self.offset)
            return handle.read(self.nbytes)

    def load_meta(self) -> dict:
        """The entry's JSON header (no array data is materialized)."""
        if self.pack is None:
            with np.load(self.path, allow_pickle=False) as archive:
                return serialize.decode_meta(archive[serialize.META_MEMBER])
        body, reason = _unseal(self.read_bytes())
        if body is None:
            raise ValueError(
                f"packed entry {self.kind}/{self.key[:12]} failed "
                f"verification: {reason}"
            )
        with np.load(io.BytesIO(body), allow_pickle=False) as archive:
            return serialize.decode_meta(archive[serialize.META_MEMBER])


class StoreIndex:
    """A point-in-time enumeration of a store's entries.

    Built by :meth:`ResultStore.index` from one directory walk (or by
    :meth:`ResultStore.load_index` from the persistent index with no
    walk at all); holds only paths and sizes (metadata loads lazily per
    entry), so indexing a large store stays cheap.
    """

    def __init__(self, entries: Sequence[StoreEntry]):
        self.entries: List[StoreEntry] = sorted(
            entries, key=operator.attrgetter("kind", "key")
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[StoreEntry]:
        return iter(self.entries)

    @property
    def total_bytes(self) -> int:
        """Stored payload bytes across every entry."""
        return sum(e.nbytes for e in self.entries)

    def by_kind(self, kind: str) -> List[StoreEntry]:
        """Entries of one kind, key-sorted."""
        if kind not in KINDS:
            raise ConfigurationError(
                f"kind must be one of {KINDS}, got {kind!r}"
            )
        return [e for e in self.entries if e.kind == kind]

    def find(self, key_or_prefix: str) -> List[StoreEntry]:
        """Entries whose key starts with a (possibly partial) key."""
        return [
            e for e in self.entries if e.key.startswith(key_or_prefix)
        ]

    def summary(self) -> dict:
        """Machine-readable totals (the ``store info`` payload)."""
        return {
            "schema": SCHEMA_VERSION,
            "n_entries": len(self.entries),
            "total_bytes": self.total_bytes,
            "kinds": {
                kind: {
                    "n_entries": len(self.by_kind(kind)),
                    "total_bytes": sum(
                        e.nbytes for e in self.by_kind(kind)
                    ),
                }
                for kind in KINDS
            },
        }


class ResultStore:
    """Persistent, content-addressed measurement store.

    Parameters
    ----------
    root:
        Store directory; created (with its marker file and an empty
        persistent index) when missing.  An existing directory is
        accepted only if it is empty or a store of the current or an
        older schema (older entries can never be hit and are gc-able);
        a directory holding anything else, or a store from a *newer*
        schema, is refused.  Stores created before the persistent index
        keep the tree walk as their only enumeration until
        :meth:`rebuild_index` (CLI ``store reindex``) runs.
    """

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = pathlib.Path(root)
        created = False
        marker = self.root / "store.json"
        if marker.exists():
            try:
                info = json.loads(marker.read_text())
                schema = int(info["schema"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                raise ConfigurationError(
                    f"{marker} is not a valid store marker"
                ) from None
            if schema > SCHEMA_VERSION:
                raise ConfigurationError(
                    f"{self.root} was created by a newer schema "
                    f"({schema} > {SCHEMA_VERSION}); refusing to mix "
                    "formats"
                )
            # An older marker is fine: entries carry their own schema
            # and stale ones are gc-able.
            self.schema = schema
        elif self.root.exists() and any(self.root.iterdir()):
            raise ConfigurationError(
                f"{self.root} exists, is not empty and is not a result "
                "store (no store.json marker)"
            )
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            self._write_atomic(
                marker,
                json.dumps({"schema": SCHEMA_VERSION}, sort_keys=True).encode(),
            )
            self.schema = SCHEMA_VERSION
            created = True
        #: Entries moved aside after failing verification, in order:
        #: ``{"kind", "key", "reason", "moved_to"}`` dicts.
        self.quarantine_log: List[dict] = []
        # Per-(kind, key) write counter — the fault injector keys store
        # damage on it so a post-quarantine rewrite draws independently
        # of the damaged first write.
        self._write_seqs: Dict[tuple, int] = {}
        self._pindex = PersistentIndex(self.root / "index")
        if created:
            self._pindex.initialize()
        # Memoized "does this store maintain a persistent index" —
        # checked on every write, so it must not cost a directory scan.
        self._has_pindex: Optional[bool] = True if created else None
        # Pack TOC cache, invalidated by (size, mtime_ns) signature.
        self._pack_tocs: Dict[pathlib.Path, tuple] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, schema={self.schema})"

    # ------------------------------------------------------------------
    # Paths and atomic IO
    # ------------------------------------------------------------------
    def _path(self, kind: str, key: str) -> pathlib.Path:
        return self.root / kind / key[:2] / f"{key}.npz"

    def _shard_lock(self, kind: str, shard: str) -> pathlib.Path:
        return self.root / kind / shard / _SHARD_LOCK

    @staticmethod
    def _write_atomic(path: pathlib.Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - already published
                pass
            raise

    # ------------------------------------------------------------------
    # Persistent index maintenance (advisory: failures never fail a
    # payload operation — the tree stays ground truth)
    # ------------------------------------------------------------------
    @property
    def has_persistent_index(self) -> bool:
        """Whether this store maintains a persistent index."""
        if self._has_pindex is None:
            self._has_pindex = self._pindex.exists
        return self._has_pindex

    def _index_add(self, kind: str, key: str, path: pathlib.Path) -> None:
        if not self.has_persistent_index:
            return
        try:
            stat = path.stat()
            self._pindex.append(
                OP_ADD, kind, key, stat.st_size, stat.st_mtime
            )
        except OSError as exc:  # pragma: no cover - disk-level failure
            _LOG.warning(
                "index append failed for %s/%s: %s", kind, key[:12], exc
            )

    def _index_remove(self, kind: str, key: str) -> None:
        if not self.has_persistent_index:
            return
        try:
            self._pindex.append(OP_REMOVE, kind, key, 0, 0.0)
        except OSError as exc:  # pragma: no cover - disk-level failure
            _LOG.warning(
                "index remove failed for %s/%s: %s", kind, key[:12], exc
            )

    # ------------------------------------------------------------------
    # Shard packs
    # ------------------------------------------------------------------
    def _pack_paths(self, kind: str, shard: str) -> List[pathlib.Path]:
        base = self.root / kind / shard
        if not base.is_dir():
            return []
        return sorted(base.glob("pack-*.pk"))

    def _pack_toc(self, path: pathlib.Path) -> Optional[Dict[str, tuple]]:
        """The (cached) TOC of one pack, or ``None`` if unreadable."""
        try:
            stat = path.stat()
        except OSError:
            self._pack_tocs.pop(path, None)
            return None
        signature = (stat.st_size, stat.st_mtime_ns)
        cached = self._pack_tocs.get(path)
        if cached is not None and cached[0] == signature:
            return cached[1]
        try:
            toc = _read_pack_toc(path)
        except (OSError, ValueError):
            _LOG.warning("unreadable pack container %s", path)
            return None
        self._pack_tocs[path] = (signature, toc)
        return toc

    def _pack_lookup(self, kind: str, key: str) -> Optional[tuple]:
        """``(pack path, offset, length, mtime)`` or ``None``."""
        for path in self._pack_paths(kind, key[:2]):
            toc = self._pack_toc(path)
            if toc is not None and key in toc:
                offset, length, mtime = toc[key]
                return path, offset, length, mtime
        return None

    def _exists(self, kind: str, key: str) -> bool:
        if self._path(kind, key).exists():
            return True
        return self._pack_lookup(kind, key) is not None

    def _remove_pack_members(
        self, pack_path: pathlib.Path, keys: Set[str]
    ) -> None:
        """Rewrite one pack without ``keys`` (unlink it when emptied)."""
        with file_lock(pack_path.parent / _SHARD_LOCK):
            self._pack_tocs.pop(pack_path, None)
            try:
                toc = _read_pack_toc(pack_path)
            except FileNotFoundError:
                return  # a peer already rewrote it
            except (OSError, ValueError):
                _LOG.warning(
                    "cannot rewrite unreadable pack %s", pack_path
                )
                return
            keep = sorted(k for k in toc if k not in keys)
            if not keep:
                try:
                    pack_path.unlink()
                except OSError:  # pragma: no cover - raced with a peer
                    pass
                return
            members: Dict[str, tuple] = {}
            with open(pack_path, "rb") as handle:
                for key in keep:
                    offset, length, mtime = toc[key]
                    handle.seek(offset)
                    members[key] = (handle.read(length), mtime)
            name, data = _build_pack(members)
            new_path = pack_path.parent / name
            self._write_atomic(new_path, data)
            if new_path != pack_path:
                try:
                    pack_path.unlink()
                except OSError:  # pragma: no cover - raced with a peer
                    pass

    # ------------------------------------------------------------------
    # Payload IO
    # ------------------------------------------------------------------
    def _put_payload(
        self, kind: str, key: str, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> bool:
        """Publish one sealed payload; returns False when the key exists
        (content-addressed ⇒ identical bytes, nothing to do)."""
        path = self._path(kind, _check_key(key))
        if self._exists(kind, key):
            obs.inc("store.put_existing", tags={"kind": kind})
            return False
        obs_t0 = time.monotonic() if obs.enabled() else 0.0
        buffer = io.BytesIO()
        np.savez(
            buffer,
            **{serialize.META_MEMBER: serialize.encode_meta(meta)},
            **arrays,
        )
        data = _seal(buffer.getvalue())
        seq = self._write_seqs.get((kind, key), 0)
        self._write_seqs[(kind, key)] = seq + 1
        fault = store_fault(key, seq)
        if fault == "truncate":
            # As a crash that beat the atomic rename would leave it.
            data = data[: max(1, len(data) // 2)]
        elif fault == "corrupt":
            damaged = bytearray(data)
            damaged[len(damaged) // 3] ^= 0xFF
            data = bytes(damaged)
        self._write_atomic(path, data)
        self._index_add(kind, key, path)
        if obs_t0:
            obs.observe(
                "store.put_seconds", time.monotonic() - obs_t0,
                {"kind": kind},
            )
            obs.inc("store.puts", tags={"kind": kind})
            obs.inc("store.put_bytes", len(data), tags={"kind": kind})
        return True

    def _quarantine(self, path: pathlib.Path, kind: str, key: str,
                    reason: str) -> None:
        """Move a failed entry aside (unblocking its rewrite) and log it."""
        dest = self.root / QUARANTINE_DIR / kind / key[:2] / path.name
        dest.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, dest)
        except OSError:  # pragma: no cover - raced with another reader
            dest = None
        record = {
            "kind": kind,
            "key": key,
            "reason": reason,
            "moved_to": str(dest) if dest is not None else None,
        }
        self.quarantine_log.append(record)
        self._index_remove(kind, key)
        obs.inc("store.quarantined", tags={"kind": kind})
        obs.trace_event(
            "store.quarantine", kind=kind, key=key[:12], reason=reason
        )
        _LOG.warning(
            "quarantined store entry %s/%s: %s", kind, key[:12], reason
        )

    def _quarantine_packed(self, kind: str, key: str, pack: pathlib.Path,
                           raw: bytes, reason: str) -> None:
        """Copy a failed packed member aside and drop it from its pack."""
        dest = self.root / QUARANTINE_DIR / kind / key[:2] / f"{key}.npz"
        self._write_atomic(dest, raw)
        self._remove_pack_members(pack, {key})
        self.quarantine_log.append(
            {
                "kind": kind,
                "key": key,
                "reason": reason,
                "moved_to": str(dest),
            }
        )
        self._index_remove(kind, key)
        obs.inc("store.quarantined", tags={"kind": kind})
        obs.trace_event(
            "store.quarantine", kind=kind, key=key[:12], reason=reason,
            packed=True,
        )
        _LOG.warning(
            "quarantined packed store entry %s/%s: %s", kind, key[:12],
            reason,
        )

    def _get_payload(self, kind: str, key: str):
        path = self._path(kind, _check_key(key))
        packed = None
        obs_t0 = time.monotonic() if obs.enabled() else 0.0
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            packed = self._pack_lookup(kind, key)
            if packed is None:
                obs.inc("store.get_misses", tags={"kind": kind})
                return None
            pack, offset, length, _ = packed
            try:
                with open(pack, "rb") as handle:
                    handle.seek(offset)
                    raw = handle.read(length)
            except OSError:
                return None  # pack vanished under us (peer rewrite)
        body, reason = _unseal(raw)
        if reason is None:
            try:
                with np.load(io.BytesIO(body), allow_pickle=False) as archive:
                    meta = serialize.decode_meta(
                        archive[serialize.META_MEMBER]
                    )
                    arrays = {
                        name: archive[name]
                        for name in archive.files
                        if name != serialize.META_MEMBER
                    }
                if packed is None:
                    # Touch the loose file so eviction's oldest-first
                    # order approximates true LRU, not just write age.
                    try:
                        os.utime(path)
                    except OSError:  # pragma: no cover - raced
                        pass
                if obs_t0:
                    obs.observe(
                        "store.get_seconds",
                        time.monotonic() - obs_t0,
                        {"kind": kind},
                    )
                    obs.inc("store.get_hits", tags={"kind": kind})
                return meta, arrays
            except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                # Trailer-less (legacy or truncated) bytes land here:
                # a cut-short file loses the zip end record, a damaged
                # one fails the member CRCs.
                reason = "unreadable archive"
        if packed is None:
            self._quarantine(path, kind, key, reason)
        else:
            self._quarantine_packed(kind, key, packed[0], raw, reason)
        return None

    def read_payload_bytes(self, kind: str, key: str) -> Optional[bytes]:
        """The raw *sealed* bytes of one entry (loose or packed), or
        ``None`` on a miss.  No verification — this is the primitive
        bit-identity checks and compaction are built on."""
        if kind not in KINDS:
            raise ConfigurationError(
                f"kind must be one of {KINDS}, got {kind!r}"
            )
        path = self._path(kind, _check_key(key))
        try:
            return path.read_bytes()
        except FileNotFoundError:
            pass
        hit = self._pack_lookup(kind, key)
        if hit is None:
            return None
        pack, offset, length, _ = hit
        try:
            with open(pack, "rb") as handle:
                handle.seek(offset)
                return handle.read(length)
        except OSError:
            return None

    def read_meta(self, kind: str, key: str) -> Optional[dict]:
        """One entry's verified JSON header, or ``None`` on a miss."""
        payload = self._get_payload(kind, key)
        if payload is None:
            return None
        return payload[0]

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def put_result(self, key: str, result: BISTResult) -> bool:
        """Persist one measurement result; no-op on an existing key."""
        meta, arrays = serialize.payload_from_result(result)
        return self._put_payload("results", key, meta, arrays)

    def get_result(self, key: str) -> Optional[BISTResult]:
        """The stored result for a key, or ``None`` on a miss."""
        payload = self._get_payload("results", key)
        if payload is None:
            return None
        return serialize.result_from_payload(*payload)

    def has_result(self, key: str) -> bool:
        """Whether a result is stored under a key (no deserialization)."""
        return self._exists("results", _check_key(key))

    # ------------------------------------------------------------------
    # Packed record batches
    # ------------------------------------------------------------------
    def put_records(self, key: str, batch: PackedRecordBatch) -> bool:
        """Persist the pooled packed records behind a measurement."""
        meta, arrays = serialize.payload_from_records(batch)
        return self._put_payload("records", key, meta, arrays)

    def get_records(self, key: str) -> Optional[PackedRecordBatch]:
        """The stored packed batch for a key, or ``None`` on a miss."""
        payload = self._get_payload("records", key)
        if payload is None:
            return None
        return serialize.records_from_payload(*payload)

    def has_records(self, key: str) -> bool:
        """Whether pooled records are stored under a key."""
        return self._exists("records", _check_key(key))

    # ------------------------------------------------------------------
    # Experiment-level outcomes (JSON documents)
    # ------------------------------------------------------------------
    def put_outcome(self, key: str, outcome: dict) -> bool:
        """Persist an experiment-level JSON outcome (e.g. a production
        lot manifest).  Values must be JSON-serializable; floats
        round-trip exactly."""
        meta = {
            "kind": "outcome",
            "schema": SCHEMA_VERSION,
            "outcome": outcome,
        }
        return self._put_payload("outcomes", key, meta, {})

    def get_outcome(self, key: str) -> Optional[dict]:
        """The stored outcome document, or ``None`` on a miss."""
        payload = self._get_payload("outcomes", key)
        if payload is None:
            return None
        meta, _ = payload
        if meta.get("schema") != SCHEMA_VERSION:
            raise ConfigurationError(
                f"outcome schema {meta.get('schema')!r} does not match "
                f"code schema {SCHEMA_VERSION} (stale entry; run gc)"
            )
        return meta["outcome"]

    def has_outcome(self, key: str) -> bool:
        """Whether an outcome document is stored under a key."""
        return self._exists("outcomes", _check_key(key))

    def outcome_key(self, document: dict) -> str:
        """Content address for an outcome identity document."""
        return digest({"schema": SCHEMA_VERSION, "outcome_id": document})

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def index(self) -> StoreIndex:
        """Enumerate every entry currently in the store (tree walk).

        This is ground truth but O(files); prefer :meth:`load_index`
        when the persistent index is available.  The walk is race-safe
        against concurrent writers: only canonically named, fully
        published files are surfaced (a peer's in-flight ``*.tmp`` or a
        file that vanishes between listing and ``stat`` — quarantine,
        gc, eviction — is skipped, never raised).
        """
        entries: List[StoreEntry] = []
        for kind in KINDS:
            base = self.root / kind
            if not base.is_dir():
                continue
            seen: Set[str] = set()
            for path in sorted(base.glob("??/*.npz")):
                if (
                    _KEY_RE.fullmatch(path.stem) is None
                    or _SHARD_RE.fullmatch(path.parent.name) is None
                    or path.stem[:2] != path.parent.name
                ):
                    continue  # junk or an in-flight temp, not an entry
                try:
                    stat = path.stat()
                except OSError:
                    continue  # vanished mid-walk (a peer moved it)
                seen.add(path.stem)
                entries.append(
                    StoreEntry(
                        key=path.stem,
                        kind=kind,
                        path=path,
                        nbytes=stat.st_size,
                        mtime=stat.st_mtime,
                    )
                )
            for pack in sorted(base.glob("??/pack-*.pk")):
                toc = self._pack_toc(pack)
                if toc is None:
                    continue
                for key, (offset, length, mtime) in sorted(toc.items()):
                    if key in seen or key[:2] != pack.parent.name:
                        continue  # a loose rewrite shadows the pack
                    entries.append(
                        StoreEntry(
                            key=key,
                            kind=kind,
                            path=self._path(kind, key),
                            nbytes=length,
                            mtime=mtime,
                            pack=pack,
                            offset=offset,
                        )
                    )
        return StoreIndex(entries)

    def load_index(self) -> Optional[StoreIndex]:
        """Enumerate from the persistent index — no tree walk.

        Returns ``None`` when the store has no persistent index (legacy
        store; run :meth:`rebuild_index`).  Entries carry the canonical
        loose path; a payload that was since packed still reads through
        :meth:`read_payload_bytes` / :meth:`read_meta`, which resolve
        packs.  The persistent index is advisory: a record lost to a
        torn append means one entry missing here until a rebuild, never
        a wrong payload.
        """
        if not self.has_persistent_index:
            return None
        root = str(self.root)
        entries = [
            StoreEntry(key, kind, None, nbytes, mtime, root=root)
            for (kind, key), (nbytes, mtime) in self._pindex.replay().items()
        ]
        return StoreIndex(entries)

    def index_stats(self) -> Optional[dict]:
        """Persistent-index totals (segments, records, bytes), or
        ``None`` for a store without one."""
        if not self.has_persistent_index:
            return None
        stats = self._pindex.stats()
        stats["payload_bytes"] = self._pindex.total_bytes()
        return stats

    def rebuild_index(self) -> dict:
        """(Re)build the persistent index from a tree walk."""
        walk = self.index()
        stats = self._pindex.rebuild(
            (e.kind, e.key, e.nbytes, e.mtime) for e in walk
        )
        self._has_pindex = True
        return stats

    def rotate_index(self) -> dict:
        """Compact the persistent index log into one checkpoint."""
        return self._pindex.rotate()

    def verify_index(self) -> dict:
        """Diff the persistent index against a tree walk.

        ``consistent`` is True when both enumerate the same
        ``(kind, key, nbytes)`` set; ``missing`` lists entries the
        index lost (torn appends), ``stale`` entries it failed to
        forget.
        """
        walk = {(e.kind, e.key): e.nbytes for e in self.index()}
        if not self.has_persistent_index:
            return {
                "consistent": False,
                "reason": "no persistent index",
                "n_walk": len(walk),
                "n_index": 0,
                "missing": sorted(f"{k}/{key}" for k, key in walk),
                "stale": [],
                "mismatched": [],
            }
        live = {
            (kind, key): int(nbytes)
            for (kind, key), (nbytes, _) in self._pindex.replay().items()
        }
        missing = sorted(
            f"{kind}/{key}" for kind, key in walk.keys() - live.keys()
        )
        stale = sorted(
            f"{kind}/{key}" for kind, key in live.keys() - walk.keys()
        )
        mismatched = sorted(
            f"{kind}/{key}"
            for kind, key in walk.keys() & live.keys()
            if walk[kind, key] != live[kind, key]
        )
        return {
            "consistent": not (missing or stale or mismatched),
            "n_walk": len(walk),
            "n_index": len(live),
            "missing": missing,
            "stale": stale,
            "mismatched": mismatched,
        }

    def approx_total_bytes(self) -> int:
        """Live payload bytes, from the index when available (cheap)."""
        if self.has_persistent_index:
            return self._pindex.total_bytes()
        return self.index().total_bytes

    # ------------------------------------------------------------------
    # Compaction and eviction
    # ------------------------------------------------------------------
    def compact(
        self,
        kinds: Optional[Sequence[str]] = None,
        shards: Optional[Sequence[str]] = None,
        min_files: int = 2,
    ) -> dict:
        """Merge loose npz payloads (and older packs) into one pack per
        shard, payload bytes verbatim.

        Shards with fewer than ``min_files`` files are left alone.  The
        new pack publishes atomically *before* the merged files are
        unlinked, so a reader — or a crash — at any instant still finds
        every payload (at worst both loose and packed, with the loose
        copy shadowing).  Holds the per-shard lock; concurrent plain
        writes need no lock and keep landing as loose files that the
        next compaction sweeps.
        """
        if min_files < 2:
            raise ConfigurationError(
                f"min_files must be >= 2, got {min_files}"
            )
        for kind in kinds or ():
            if kind not in KINDS:
                raise ConfigurationError(
                    f"kind must be one of {KINDS}, got {kind!r}"
                )
        stats = {
            "n_shards_compacted": 0,
            "n_files_before": 0,
            "n_files_after": 0,
            "n_members": 0,
            "bytes_packed": 0,
        }
        with obs.timed("store.compact_seconds"):
            for kind in kinds if kinds is not None else KINDS:
                base = self.root / kind
                if not base.is_dir():
                    continue
                for shard_dir in sorted(base.iterdir()):
                    if (
                        not shard_dir.is_dir()
                        or _SHARD_RE.fullmatch(shard_dir.name) is None
                    ):
                        continue
                    if shards is not None and shard_dir.name not in shards:
                        continue
                    self._compact_shard(kind, shard_dir, min_files, stats)
        obs.inc("store.compactions")
        obs.trace_event(
            "store.compact",
            shards=stats["n_shards_compacted"],
            members=stats["n_members"],
        )
        return stats

    def _compact_shard(
        self,
        kind: str,
        shard_dir: pathlib.Path,
        min_files: int,
        stats: dict,
    ) -> None:
        with file_lock(shard_dir / _SHARD_LOCK):
            loose = sorted(
                p
                for p in shard_dir.glob("*.npz")
                if _KEY_RE.fullmatch(p.stem) is not None
            )
            packs = sorted(shard_dir.glob("pack-*.pk"))
            if len(loose) + len(packs) < min_files:
                return
            members: Dict[str, tuple] = {}
            merged_packs: List[pathlib.Path] = []
            for pack in packs:
                self._pack_tocs.pop(pack, None)
                try:
                    toc = _read_pack_toc(pack)
                except (OSError, ValueError):
                    _LOG.warning(
                        "compaction skipping unreadable pack %s", pack
                    )
                    continue
                with open(pack, "rb") as handle:
                    for key, (offset, length, mtime) in sorted(toc.items()):
                        handle.seek(offset)
                        members[key] = (handle.read(length), mtime)
                merged_packs.append(pack)
            for path in loose:
                try:
                    stat = path.stat()
                    members[path.stem] = (path.read_bytes(), stat.st_mtime)
                except OSError:
                    continue  # vanished (quarantined) under the walk
            if not members:
                return
            name, data = _build_pack(members)
            new_path = shard_dir / name
            if not new_path.exists():
                self._write_atomic(new_path, data)
            # Only after the pack is durably published do the merged
            # sources go away; a crash in this window leaves shadowed
            # duplicates, never a missing payload.
            for path in loose:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - raced with a peer
                    pass
            for pack in merged_packs:
                if pack == new_path:
                    continue
                try:
                    pack.unlink()
                except OSError:  # pragma: no cover - raced with a peer
                    pass
            stats["n_shards_compacted"] += 1
            stats["n_files_before"] += len(loose) + len(merged_packs)
            stats["n_files_after"] += 1
            stats["n_members"] += len(members)
            stats["bytes_packed"] += len(data)

    def evict(
        self,
        budget_bytes: int,
        pin_kinds: Sequence[str] = ("outcomes",),
        pin_keys: Sequence[str] = (),
    ) -> dict:
        """Drop oldest entries until live payload bytes fit the budget.

        ``outcomes`` (lot manifests — the provenance spine resume and
        retest hang off) are pinned by default; ``pin_keys`` protects
        individual entries.  Eviction is cache management, not data
        loss: every evicted payload is recomputable from its
        provenance, and a later write simply re-creates it.
        """
        if budget_bytes < 0:
            raise ConfigurationError(
                f"budget_bytes must be >= 0, got {budget_bytes}"
            )
        for kind in pin_kinds:
            if kind not in KINDS:
                raise ConfigurationError(
                    f"pin kind must be one of {KINDS}, got {kind!r}"
                )
        walk = self.index()
        total = walk.total_bytes
        stats = {
            "n_evicted": 0,
            "bytes_evicted": 0,
            "total_bytes_before": total,
            "total_bytes_after": total,
            "n_pinned": 0,
        }
        if total <= budget_bytes:
            return stats
        pinned_kinds = set(pin_kinds)
        pinned_keys = set(pin_keys)
        victims: List[StoreEntry] = []
        for entry in walk:
            if entry.kind in pinned_kinds or entry.key in pinned_keys:
                stats["n_pinned"] += 1
            else:
                victims.append(entry)
        victims.sort(key=lambda e: (e.mtime, e.kind, e.key))
        packed_victims: Dict[pathlib.Path, Set[str]] = {}
        for entry in victims:
            if total <= budget_bytes:
                break
            if entry.pack is None:
                try:
                    entry.path.unlink()
                except FileNotFoundError:
                    continue  # a peer evicted it first
            else:
                packed_victims.setdefault(entry.pack, set()).add(entry.key)
            self._index_remove(entry.kind, entry.key)
            total -= entry.nbytes
            stats["n_evicted"] += 1
            stats["bytes_evicted"] += entry.nbytes
        for pack, keys in packed_victims.items():
            self._remove_pack_members(pack, keys)
        stats["total_bytes_after"] = total
        if stats["n_evicted"]:
            obs.inc("store.evicted", stats["n_evicted"])
            obs.inc("store.evicted_bytes", stats["bytes_evicted"])
            obs.trace_event(
                "store.evict",
                n=stats["n_evicted"],
                bytes=stats["bytes_evicted"],
            )
        return stats

    # ------------------------------------------------------------------
    # GC
    # ------------------------------------------------------------------
    def gc(
        self,
        all_entries: bool = False,
        tmp_grace_s: float = TMP_GRACE_SECONDS,
    ) -> dict:
        """Reclaim dead storage; returns ``{"n_removed", "bytes_freed",
        "n_tmp", "n_quarantined"}``.

        Removes abandoned temporary files (crashed writes older than
        ``tmp_grace_s`` — a live writer publishes within seconds, so
        fresh temp files are left for it; pass ``0`` to sweep a store
        known to have no concurrent writers), everything under
        ``quarantine/`` (entries moved aside after failing
        verification — kept for inspection until a gc reclaims them),
        entries whose payload is unreadable or whose schema no longer
        matches the code (their keys embed the old schema version, so
        they can never be hit again), and — with ``all_entries`` —
        every entry.  Packed members are removed by rewriting their
        pack.
        """
        if tmp_grace_s < 0:
            raise ConfigurationError(
                f"tmp_grace_s must be >= 0, got {tmp_grace_s}"
            )
        n_removed = 0
        bytes_freed = 0
        n_tmp = 0
        now = time.time()
        for tmp in self.root.rglob("*.tmp"):
            try:
                stat = tmp.stat()
                if not all_entries and now - stat.st_mtime < tmp_grace_s:
                    continue  # possibly a concurrent writer mid-publish
                bytes_freed += stat.st_size
                tmp.unlink()
            except OSError:
                continue  # the writer published or a peer swept it
            n_removed += 1
            n_tmp += 1
        n_quarantined = 0
        quarantine = self.root / QUARANTINE_DIR
        if quarantine.is_dir():
            for path in quarantine.rglob("*.npz"):
                try:
                    stat = path.stat()
                    bytes_freed += stat.st_size
                    path.unlink()
                except OSError:
                    continue
                n_removed += 1
                n_quarantined += 1
        packed_dead: Dict[pathlib.Path, Set[str]] = {}
        for entry in self.index():
            if not all_entries:
                try:
                    schema = entry.load_meta().get("schema")
                except Exception:
                    schema = None  # unreadable ⇒ dead
                if schema == SCHEMA_VERSION:
                    continue
            bytes_freed += entry.nbytes
            if entry.pack is None:
                try:
                    entry.path.unlink()
                except FileNotFoundError:
                    continue
            else:
                packed_dead.setdefault(entry.pack, set()).add(entry.key)
            n_removed += 1
            if not all_entries:
                self._index_remove(entry.kind, entry.key)
        for pack, keys in packed_dead.items():
            self._remove_pack_members(pack, keys)
        if all_entries and self.has_persistent_index:
            self._pindex.rebuild([])
        return {
            "n_removed": n_removed,
            "bytes_freed": bytes_freed,
            "n_tmp": n_tmp,
            "n_quarantined": n_quarantined,
        }
