"""Provenance fingerprints and content-addressed cache keys.

A stored measurement is only reusable if *everything* that could change
its value is part of its address.  For the 1-bit BIST pipeline that
closure is small and explicit — the repo's reproducibility contract
(every stochastic path draws from spawn-seeded generators) means a
measurement is a pure function of:

* the bench / DUT configuration (noise densities, gains, reference,
  digitizer non-idealities, record length, simulation rate);
* the estimator's analysis parameters (nperseg / window / overlap /
  sample rate / noise band / reference handling / calibration
  temperatures);
* the seed lineage of the generator driving the acquisition
  (``SeedSequence`` entropy + spawn key, the number of children already
  spawned, and the bit-generator state — so a partially consumed
  generator never aliases a fresh one);
* the noise-synthesis mode (``rng_mode``: compat and philox draw
  different realizations from the same seed identity);
* the code schema version (bumped whenever the serialized layout or
  the measurement semantics change — old entries simply stop matching
  and become garbage-collectable).

:func:`fingerprint` reduces an object graph to a canonical JSON-able
structure, :func:`canonical_json` / :func:`digest` turn that structure
into a stable SHA-256 hex key, and :func:`measurement_key` composes the
full closure for one ``(source, estimator, rng, rng_mode)`` task.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
from typing import Any, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike, make_rng

__all__ = [
    "KINDS",
    "SCHEMA_VERSION",
    "canonical_json",
    "digest",
    "fingerprint",
    "measurement_key",
    "seed_fingerprint",
]

#: Version of the key schema *and* of the on-disk payload layout.  Bump
#: on any change to fingerprinting, serialization or measurement
#: semantics; entries written under an older schema stop matching (their
#: keys embed the old version) and ``ResultStore.gc`` reclaims them.
SCHEMA_VERSION = 1

#: Entry kinds, in layout order.  The position of a kind doubles as its
#: id in the persistent index's on-disk records, so the order is part
#: of the format — append, never reorder.
KINDS = ("results", "records", "outcomes")

#: Object-graph recursion limit — benches are a few levels deep
#: (testbench -> source -> opamp); anything deeper is a cycle or a
#: structure fingerprinting was never meant to cover.
_MAX_DEPTH = 16


def fingerprint(obj: Any, _depth: int = 0) -> Any:
    """Reduce an object graph to a canonical JSON-able structure.

    Scalars pass through (floats round-trip exactly through JSON),
    sequences and mappings recurse, numpy arrays collapse to a
    ``(dtype, shape, sha256)`` triple, dataclasses and plain objects
    contribute their class identity plus their *public* attributes
    (leading-underscore attributes are caches and scratch by repo
    convention — a rendered reference waveform must not change a
    bench's identity).  An object may override the whole traversal by
    providing a ``store_fingerprint()`` method returning a JSON-able
    value.

    Raises :class:`~repro.errors.ConfigurationError` for objects it
    cannot reduce deterministically (callables, open handles, depth
    blowups); callers that prefer "uncacheable" over an error catch it
    (see :meth:`MeasurementEngine.task_key`).
    """
    if _depth > _MAX_DEPTH:
        raise ConfigurationError(
            "object graph too deep to fingerprint (cycle?)"
        )
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if not np.isfinite(obj):
            return {"__float__": repr(obj)}
        return obj
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return fingerprint(obj.item(), _depth)
    if isinstance(obj, bytes):
        return {"__bytes__": hashlib.sha256(obj).hexdigest()}
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return {
            "__ndarray__": [
                str(data.dtype),
                list(data.shape),
                hashlib.sha256(data.tobytes()).hexdigest(),
            ]
        }
    if isinstance(obj, (list, tuple)):
        return [fingerprint(v, _depth + 1) for v in obj]
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise ConfigurationError(
                    f"cannot fingerprint non-string mapping key {k!r}"
                )
            out[k] = fingerprint(v, _depth + 1)
        return out
    if inspect.isroutine(obj) or inspect.ismodule(obj) or isinstance(obj, type):
        raise ConfigurationError(
            f"cannot fingerprint {obj!r}: functions, classes and modules "
            "have no stable content identity"
        )
    custom = getattr(obj, "store_fingerprint", None)
    if callable(custom):
        return {
            "__class__": _class_name(obj),
            "fingerprint": fingerprint(custom(), _depth + 1),
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: fingerprint(getattr(obj, f.name), _depth + 1)
            for f in dataclasses.fields(obj)
        }
        return {"__class__": _class_name(obj), "fields": fields}
    attrs = _public_attrs(obj)
    if attrs is not None:
        return {
            "__class__": _class_name(obj),
            "attrs": {
                k: fingerprint(v, _depth + 1) for k, v in sorted(attrs.items())
            },
        }
    raise ConfigurationError(
        f"cannot fingerprint {type(obj).__name__!r} deterministically; "
        "give it a store_fingerprint() method"
    )


def _class_name(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def _public_attrs(obj: Any) -> Optional[dict]:
    """Public instance attributes of a plain object (``None`` if the
    object exposes no instance state at all)."""
    attrs = {}
    state = getattr(obj, "__dict__", None)
    if state is not None:
        attrs.update(state)
    for slot_holder in type(obj).__mro__:
        for name in getattr(slot_holder, "__slots__", ()):
            if hasattr(obj, name):
                attrs.setdefault(name, getattr(obj, name))
    if not attrs and state is None:
        return None
    return {
        k: v
        for k, v in attrs.items()
        if not k.startswith("_") and not callable(v)
    }


def canonical_json(data: Any) -> str:
    """Serialize a fingerprint structure canonically.

    Sorted keys, no whitespace, no NaN — byte-identical input produces
    byte-identical output across processes and platforms, which is what
    makes the digests stable addresses.
    """
    return json.dumps(
        data,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        ensure_ascii=True,
    )


def digest(data: Any) -> str:
    """SHA-256 hex digest of a fingerprint structure."""
    return hashlib.sha256(canonical_json(data).encode("ascii")).hexdigest()


def seed_fingerprint(rng: GeneratorLike) -> Optional[dict]:
    """The cacheable identity of a seed or generator.

    Returns ``None`` for ``rng=None`` (OS entropy — the one genuinely
    unrepeatable case, so measurements keyed on it are uncacheable).
    Integer seeds and generators both reduce to the state of the
    ``numpy`` bit generator they resolve to, plus the seed-sequence
    lineage (entropy / spawn key / children already spawned): two
    generators only share a fingerprint when every stream the
    measurement will derive from them is identical.
    """
    if rng is None:
        return None
    gen = make_rng(rng)
    bit_gen = gen.bit_generator
    seq = getattr(bit_gen, "seed_seq", None)
    lineage: dict = {}
    if seq is not None:
        entropy = getattr(seq, "entropy", None)
        if isinstance(entropy, (list, tuple)):
            entropy = [int(v) for v in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        lineage = {
            "entropy": entropy,
            "spawn_key": [int(v) for v in getattr(seq, "spawn_key", ())],
            "n_children_spawned": int(
                getattr(seq, "n_children_spawned", 0)
            ),
        }
    return {
        "bit_generator": type(bit_gen).__name__,
        "state": fingerprint(bit_gen.state),
        "lineage": lineage,
    }


def measurement_key(
    source: Any,
    estimator: Any,
    rng: GeneratorLike,
    rng_mode: str = "compat",
) -> Optional[str]:
    """Content address of one two-state NF measurement.

    ``None`` when the measurement is uncacheable (no reproducible seed).
    The key covers the full provenance closure — bench, estimator
    analysis parameters and calibration temperatures, seed lineage,
    synthesis mode and schema version — and deliberately excludes
    execution knobs that are guaranteed result-invariant (backend,
    worker count, block size, packed transport): a result computed on
    any backend is a valid hit for every other.
    """
    seed = seed_fingerprint(rng)
    if seed is None:
        return None
    return digest(
        {
            "schema": SCHEMA_VERSION,
            "kind": "measurement",
            "source": fingerprint(source),
            "estimator": fingerprint(estimator),
            "seed": seed,
            "rng_mode": str(rng_mode),
        }
    )
