"""Persistent measurement result store with provenance-keyed caching.

The production story of the paper — screen lots, guard-band, retest —
needs measurements that outlive the process: a warm cache for repeated
sweeps, resumable plans after an interruption, and retest replans that
re-measure only the devices that need it.  This package is that
persistence layer:

:mod:`repro.store.keys`
    Content addressing: canonical fingerprints of benches, estimators
    and seed lineage, composed into SHA-256 measurement keys
    (:func:`measurement_key`).  Anything that could change a
    measurement's value is in its key; execution knobs that are
    result-invariant (backend, workers, packed transport) are not.
:mod:`repro.store.serialize`
    Bit-exact payloads: results and packed record batches round-trip
    through ``.npz`` archives losslessly, so a cache hit *equals* a
    recompute.
:mod:`repro.store.store`
    :class:`ResultStore` — the atomic, shardable on-disk layout, the
    enumeration :class:`StoreIndex`, shard-pack compaction, byte-budget
    eviction and garbage collection.
:mod:`repro.store.index`
    :class:`PersistentIndex` — the append-only, memory-mapped index
    that makes enumeration on a large store O(changed) instead of a
    tree walk.
:mod:`repro.store.io`
    Worker-direct writes: pool workers publish payloads straight into
    their shard (the parent ships only the store root).
:mod:`repro.store.locks`
    Per-shard / index advisory file locks (compaction and index
    appends; plain writes stay lock-free).

Wiring: ``MeasurementEngine(store=..., cache="readwrite")`` consults
the store in :meth:`~repro.engine.engine.MeasurementEngine.measure`,
``MeasurementPlan.run(..., resume=True)`` skips already-stored tasks,
and :func:`~repro.engine.scheduler.plan_retest` plans only the
failed / guard-band devices of a prior production outcome.
"""

from repro.store.index import PersistentIndex
from repro.store.keys import (
    KINDS,
    SCHEMA_VERSION,
    canonical_json,
    digest,
    fingerprint,
    measurement_key,
    seed_fingerprint,
)
from repro.store.store import ResultStore, StoreEntry, StoreIndex

__all__ = [
    "KINDS",
    "PersistentIndex",
    "SCHEMA_VERSION",
    "ResultStore",
    "StoreEntry",
    "StoreIndex",
    "canonical_json",
    "digest",
    "fingerprint",
    "measurement_key",
    "seed_fingerprint",
]
