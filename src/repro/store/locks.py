"""Advisory file locks for multi-writer store coordination.

The store's 256-way key fan-out gives natural shard boundaries; any
operation that must be exclusive *within* a shard (compaction, pack
rewrites) or over the index (appends, rotation) takes an ``flock`` on a
small lock file next to the data.  Plain content-addressed writes need
no lock — ``os.replace`` publishes them atomically and identical keys
imply identical bytes — so the warm write path stays lock-free.

Locks are acquired non-blocking in a poll loop so a timeout can be
enforced, and the ``store_lock`` fault site can deterministically
simulate losing the first race (the caller backs off and retries,
exercising the contention path without a second process).

On platforms without ``fcntl`` the locks degrade to no-ops; the store
stays single-writer-safe there (atomic publishes), only concurrent
compaction of one shard is unprotected.
"""

from __future__ import annotations

import errno
import os
import pathlib
import time
from contextlib import contextmanager

from repro.faults.injector import store_lock_fault

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl

    _HAVE_FCNTL = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None
    _HAVE_FCNTL = False

__all__ = ["LockTimeout", "file_lock"]

#: How long an acquire may poll before giving up.  Shard/index critical
#: sections are tiny (one pack rewrite, one record append), so a healthy
#: peer releases within milliseconds; a 30 s timeout only fires when a
#: lock holder is truly wedged.
DEFAULT_TIMEOUT_S = 30.0

_POLL_S = 0.005


class LockTimeout(OSError):
    """An ``flock`` could not be acquired within the timeout."""


@contextmanager
def file_lock(
    path: pathlib.Path,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    poll_s: float = _POLL_S,
):
    """Hold an exclusive advisory lock on ``path`` for the block.

    The lock file is created on demand (it carries no data and is never
    removed — unlinking a lock file open in another process would split
    the lock).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        if _HAVE_FCNTL:
            _acquire(fd, path, timeout_s, poll_s)
        yield
    finally:
        if _HAVE_FCNTL:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - close releases anyway
                pass
        os.close(fd)


def _acquire(fd: int, path: pathlib.Path, timeout_s: float, poll_s: float):
    deadline = time.monotonic() + float(timeout_s)
    # Injected contention: behave as if another writer beat us to the
    # first attempt, then proceed through the normal retry path.
    lost_race = store_lock_fault()
    while True:
        if lost_race:
            lost_race = False
        else:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError as exc:
                if exc.errno not in (errno.EAGAIN, errno.EACCES):
                    raise
        if time.monotonic() >= deadline:
            raise LockTimeout(
                f"could not acquire {path} within {timeout_s:.1f}s"
            )
        time.sleep(poll_s)
