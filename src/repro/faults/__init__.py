"""Deterministic fault injection for the measurement execution stack.

``repro.faults`` is the chaos harness the robustness guarantees are
tested against: a :class:`FaultPlan` names per-site failure
probabilities under one seed, a :class:`FaultInjector` draws
reproducible injection decisions and logs every fault it fires, and
:func:`inject` installs the injector for a ``with`` block so the
scheduler, the shared-memory transport and the result store consult it
at their fault sites.  See ``docs/ROBUSTNESS.md`` for the fault model
and the guarantees (chaos identity, crash-consistent resume) asserted
in the test suite.
"""

from repro.faults.injector import (
    FaultDirective,
    FaultInjector,
    InjectedTaskError,
    InjectionRecord,
    active_injector,
    client_disconnect_fault,
    inject,
    job_deadline_fault,
    journal_torn_fault,
)
from repro.faults.plan import FAULT_PLANS, SITES, FaultPlan, resolve_plan

__all__ = [
    "FAULT_PLANS",
    "SITES",
    "FaultDirective",
    "FaultInjector",
    "FaultPlan",
    "InjectedTaskError",
    "InjectionRecord",
    "active_injector",
    "client_disconnect_fault",
    "inject",
    "job_deadline_fault",
    "journal_torn_fault",
    "resolve_plan",
]
