"""Fault plans: which failures to inject, where, and how often.

A :class:`FaultPlan` names a *distribution* of failures over the
injection sites the execution stack exposes — worker processes that
die or hang, tasks that raise transiently, store payloads that land
truncated or bit-flipped, shared-memory publishes that fail — with one
probability per site and a single seed.  Every injection decision is a
pure function of ``(seed, site, invocation coordinates)``, so a plan
replays the same fault sequence run after run (see
:class:`~repro.faults.injector.FaultInjector`).

:data:`FAULT_PLANS` registers the named plans the CLI ``chaos``
subcommand and the CI chaos smoke accept.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

from repro.errors import ConfigurationError

__all__ = ["FaultPlan", "FAULT_PLANS", "SITES", "resolve_plan"]

#: Injection sites, in the order the harness consults them.  The
#: integer position of a site doubles as its seed-stream key, so the
#: order is part of the deterministic contract — append, never reorder.
SITES = (
    "worker_crash",     # a worker process dies mid-task (SIGKILL)
    "worker_hang",      # a task blocks far beyond its deadline
    "task_exception",   # a task raises a transient (retryable) error
    "store_truncate",   # a store payload lands cut short, as a crash
                        # mid-write (without the atomic rename) would
    "store_corrupt",    # a store payload lands with flipped bits
    "shm_publish",      # publishing records to shared memory fails
    "store_lock",       # a shard/index lock attempt loses a race and
                        # must back off and retry
    "index_torn_write", # a store-index append is cut mid-record, as a
                        # crash between write() and the record boundary
    "journal_torn_write",  # a service-journal append is cut mid-record,
                        # as a daemon SIGKILLed between write() and the
                        # record boundary would leave it
    "client_disconnect",  # a service client connection drops before the
                        # response is written (network blip, client
                        # crash); the accepted job must survive
    "job_deadline",     # a service job's wall-clock budget is forced
                        # to expire at its next checkpoint
)

SITE_IDS: Dict[str, int] = {site: i for i, site in enumerate(SITES)}


@dataclass(frozen=True)
class FaultPlan:
    """Per-site injection probabilities plus the seed that keys them.

    ``max_per_site`` caps how many times each site may fire over the
    injector's lifetime (``None`` = unbounded); ``hang_seconds`` is how
    long an injected hang blocks — longer than any sane task timeout,
    short enough that a *policy-less* run (no hung-worker detection)
    still finishes instead of deadlocking.
    """

    seed: int = 0
    worker_crash: float = 0.0
    worker_hang: float = 0.0
    task_exception: float = 0.0
    store_truncate: float = 0.0
    store_corrupt: float = 0.0
    shm_publish: float = 0.0
    store_lock: float = 0.0
    index_torn_write: float = 0.0
    journal_torn_write: float = 0.0
    client_disconnect: float = 0.0
    job_deadline: float = 0.0
    max_per_site: Optional[int] = None
    hang_seconds: float = 30.0

    def __post_init__(self):
        for site in SITES:
            p = getattr(self, site)
            if not 0.0 <= float(p) <= 1.0:
                raise ConfigurationError(
                    f"{site} probability must be in [0, 1], got {p!r}"
                )
        if self.max_per_site is not None and self.max_per_site < 0:
            raise ConfigurationError(
                f"max_per_site must be >= 0, got {self.max_per_site}"
            )
        if self.hang_seconds <= 0:
            raise ConfigurationError(
                f"hang_seconds must be > 0, got {self.hang_seconds}"
            )

    @property
    def probabilities(self) -> Dict[str, float]:
        """Site -> probability, in site order."""
        return {site: float(getattr(self, site)) for site in SITES}

    @property
    def active_sites(self) -> tuple:
        """The sites this plan can actually fire."""
        return tuple(s for s, p in self.probabilities.items() if p > 0)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same distribution keyed by a different seed."""
        return replace(self, seed=int(seed))

    def describe(self) -> dict:
        """JSON-ready view (the chaos CLI report embeds it)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Named plans for the CLI / CI.  ``transient`` exercises every
#: retryable path at once (the chaos-identity workload); ``crashes`` /
#: ``hangs`` / ``store`` / ``locks`` isolate one failure family;
#: ``storm`` is the kitchen sink for soak testing.
FAULT_PLANS: Dict[str, FaultPlan] = {
    "none": FaultPlan(),
    "transient": FaultPlan(
        worker_crash=0.10,
        task_exception=0.20,
        store_truncate=0.25,
        store_corrupt=0.25,
        shm_publish=0.15,
    ),
    "crashes": FaultPlan(worker_crash=0.25),
    "hangs": FaultPlan(worker_hang=0.20, hang_seconds=20.0),
    "store": FaultPlan(store_truncate=0.4, store_corrupt=0.4),
    "locks": FaultPlan(store_lock=0.5, index_torn_write=0.4),
    "service": FaultPlan(
        journal_torn_write=0.30,
        client_disconnect=0.25,
        task_exception=0.15,
    ),
    "storm": FaultPlan(
        worker_crash=0.15,
        worker_hang=0.05,
        task_exception=0.25,
        store_truncate=0.30,
        store_corrupt=0.30,
        shm_publish=0.25,
        store_lock=0.20,
        index_torn_write=0.15,
        journal_torn_write=0.15,
        client_disconnect=0.10,
        hang_seconds=20.0,
    ),
}


def resolve_plan(name_or_plan, seed: Optional[int] = None) -> FaultPlan:
    """A plan from its registry name (or pass a plan through), optionally
    re-keyed by ``seed``."""
    if isinstance(name_or_plan, FaultPlan):
        plan = name_or_plan
    else:
        try:
            plan = FAULT_PLANS[name_or_plan]
        except KeyError:
            raise ConfigurationError(
                f"unknown fault plan {name_or_plan!r}; expected one of "
                f"{sorted(FAULT_PLANS)} or a FaultPlan"
            ) from None
    if seed is not None:
        plan = plan.with_seed(seed)
    return plan
