"""Deterministic fault injection: the injector and its runtime hooks.

Injection decisions are *counter-based*: each draw seeds a fresh
``numpy`` generator from ``(plan seed, site id, invocation
coordinates)`` and fires when its first uniform lands under the site's
probability.  No shared stream is consumed, so a decision depends only
on its own coordinates — replaying a run (same plan, same dispatch
coordinates) replays the same faults, and a *retry* of a task draws at
its new attempt number instead of re-hitting the same fault forever.

The execution stack reaches the injector through module-level hooks
(:func:`task_fault`, :func:`store_fault`, :func:`shm_fault`) that read
the process-global active injector installed by :func:`inject`.  With
no injector active every hook is a single ``None`` check — the
fault-free hot path stays unmeasurable (see ``benchmarks/
bench_faults.py``).

Worker-side faults (crash / hang / transient exception) are decided in
the *parent* at dispatch time and shipped to the worker as a
:class:`FaultDirective` wrapped around the real call
(:func:`faulted_call`), which keeps the decision stream deterministic
and the worker logic trivial.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import SITE_IDS, SITES, FaultPlan
from repro import obs

__all__ = [
    "FaultDirective",
    "FaultInjector",
    "InjectionRecord",
    "InjectedTaskError",
    "active_injector",
    "client_disconnect_fault",
    "faulted_call",
    "inject",
    "index_torn_fault",
    "job_deadline_fault",
    "journal_torn_fault",
    "shm_fault",
    "store_fault",
    "store_lock_fault",
    "task_fault",
]


class InjectedTaskError(RuntimeError):
    """The transient failure an injected ``task_exception`` raises.

    Deliberately *not* a :class:`~repro.errors.MeasurementError`: the
    retry policy treats domain errors as deterministic (no retry) and
    everything else as transient — an injected fault must look
    transient.
    """


@dataclass(frozen=True)
class FaultDirective:
    """One worker-side fault, decided parent-side at dispatch time."""

    action: str  # "crash" | "hang" | "raise"
    hang_seconds: float = 30.0
    detail: str = ""


@dataclass(frozen=True)
class InjectionRecord:
    """One fired fault, as the injection log remembers it."""

    site: str
    sequence: int  # per-site ordinal, 0-based
    coordinates: Tuple  # the draw's deterministic coordinates
    detail: str = ""


class FaultInjector:
    """Draws deterministic faults from a :class:`FaultPlan` and logs them.

    Thread-safe: the planner's pipelined mode dispatches from two
    threads, and the log/caps must not race.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.log: List[InjectionRecord] = []
        self._counts: Dict[str, int] = {site: 0 for site in SITES}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _draw(self, site: str, coordinates: Tuple, detail: str) -> bool:
        """One seeded Bernoulli draw; logs and counts a hit."""
        p = float(getattr(self.plan, site))
        if p <= 0.0:
            return False
        seed = (
            int(self.plan.seed) & 0xFFFFFFFF,
            SITE_IDS[site],
            *(c & 0xFFFFFFFFFFFFFFFF for c in coordinates),
        )
        hit = np.random.default_rng(seed).random() < p
        if not hit:
            return False
        with self._lock:
            cap = self.plan.max_per_site
            if cap is not None and self._counts[site] >= cap:
                return False
            sequence = self._counts[site]
            self.log.append(
                InjectionRecord(
                    site=site,
                    sequence=sequence,
                    coordinates=coordinates,
                    detail=detail,
                )
            )
            self._counts[site] += 1
        obs.inc("faults.injected", tags={"site": site})
        obs.trace_event(
            "fault.injected", site=site, sequence=sequence, detail=detail
        )
        return True

    def _sequence(self, site: str) -> int:
        """A monotonic per-site counter (sites without natural
        coordinates, e.g. shared-memory publishes, draw on it)."""
        with self._lock:
            n = self._counts.get(f"_seq_{site}", 0)
            self._counts[f"_seq_{site}"] = n + 1
        return n

    # ------------------------------------------------------------------
    # Site-specific draws
    # ------------------------------------------------------------------
    def task_directive(
        self, run_seq: int, index: int, attempt: int
    ) -> Optional[FaultDirective]:
        """The worker-side fault (if any) for one task dispatch.

        Coordinates are ``(pool run sequence, task index, attempt)`` —
        a retry draws fresh, so a task is never doomed to repeat its
        fault, and the same dispatch always redraws the same fault.
        Sites are consulted in :data:`~repro.faults.plan.SITES` order;
        the first hit wins.
        """
        coords = (int(run_seq), int(index), int(attempt))
        detail = f"run={run_seq} task={index} attempt={attempt}"
        if self._draw("worker_crash", coords, detail):
            return FaultDirective("crash", detail=detail)
        if self._draw("worker_hang", coords, detail):
            return FaultDirective(
                "hang", hang_seconds=self.plan.hang_seconds, detail=detail
            )
        if self._draw("task_exception", coords, detail):
            return FaultDirective("raise", detail=detail)
        return None

    def store_directive(self, key: str, write_seq: int) -> Optional[str]:
        """How one store payload write should be damaged (or ``None``).

        Keyed by the payload's content address plus a per-key write
        sequence: the first (corrupted) write and the rewrite after
        quarantine draw independently, so recovery converges.
        """
        prefix = int(str(key)[:15] or "0", 16)
        coords = (prefix, int(write_seq))
        detail = f"key={str(key)[:12]} write={write_seq}"
        if self._draw("store_truncate", coords, detail):
            return "truncate"
        if self._draw("store_corrupt", coords, detail):
            return "corrupt"
        return None

    def shm_directive(self) -> bool:
        """Whether this shared-memory publish should fail."""
        seq = self._sequence("shm_publish")
        return self._draw("shm_publish", (seq,), f"publish={seq}")

    def lock_directive(self) -> bool:
        """Whether this lock acquisition should lose its first race.

        A fired fault makes the acquire path behave as if another
        writer held the lock — the caller backs off and retries, so
        the operation still succeeds (the site exercises contention
        handling, not failure)."""
        seq = self._sequence("store_lock")
        return self._draw("store_lock", (seq,), f"acquire={seq}")

    def index_torn_directive(self) -> bool:
        """Whether this index append should land cut mid-record."""
        seq = self._sequence("index_torn_write")
        return self._draw("index_torn_write", (seq,), f"append={seq}")

    def journal_torn_directive(self) -> bool:
        """Whether this service-journal append should land torn."""
        seq = self._sequence("journal_torn_write")
        return self._draw("journal_torn_write", (seq,), f"append={seq}")

    def client_disconnect_directive(self) -> bool:
        """Whether this service response should be lost to a dropped
        connection (the request itself — and any journal append it
        caused — has already happened)."""
        seq = self._sequence("client_disconnect")
        return self._draw("client_disconnect", (seq,), f"response={seq}")

    def job_deadline_directive(self, job_key: str, check_seq: int) -> bool:
        """Whether a job's deadline should be forced expired at this
        checkpoint.

        Keyed by the job's idempotency key plus the checkpoint ordinal,
        so a *resubmitted* job (same key, fresh checks) redraws the same
        early expiries while later checkpoints draw independently.
        """
        prefix = int(str(job_key)[:15] or "0", 16)
        coords = (prefix, int(check_seq))
        detail = f"job={str(job_key)[:12]} check={check_seq}"
        return self._draw("job_deadline", coords, detail)

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Fired injections per site (only sites that fired)."""
        with self._lock:
            out: Dict[str, int] = {}
            for record in self.log:
                out[record.site] = out.get(record.site, 0) + 1
            return out

    def summary(self) -> dict:
        """JSON-ready injection report."""
        return {
            "plan": self.plan.describe(),
            "n_injected": len(self.log),
            "by_site": self.counts(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({len(self.log)} injected, plan={self.plan})"


# ----------------------------------------------------------------------
# Process-global active injector
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The injector installed by :func:`inject`, or ``None``."""
    return _ACTIVE


@contextmanager
def inject(plan_or_injector):
    """Install a fault injector for the duration of a ``with`` block.

    Accepts a :class:`FaultPlan` (a fresh injector is built and
    yielded) or an existing :class:`FaultInjector` (reused, so a test
    can pre-seed or inspect it).  Nested installs are rejected — two
    overlapping chaos scopes would make the decision streams
    ambiguous.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a fault injector is already active")
    injector = (
        plan_or_injector
        if isinstance(plan_or_injector, FaultInjector)
        else FaultInjector(plan_or_injector)
    )
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None


# ----------------------------------------------------------------------
# Hooks the execution stack calls (each a single None-check when idle)
# ----------------------------------------------------------------------
def task_fault(
    run_seq: int, index: int, attempt: int
) -> Optional[FaultDirective]:
    """Worker-side fault for one task dispatch, or ``None``."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.task_directive(run_seq, index, attempt)


def store_fault(key: str, write_seq: int) -> Optional[str]:
    """``"truncate"`` / ``"corrupt"`` / ``None`` for one store write."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.store_directive(key, write_seq)


def shm_fault() -> bool:
    """Whether the current shared-memory publish should fail."""
    if _ACTIVE is None:
        return False
    return _ACTIVE.shm_directive()


def store_lock_fault() -> bool:
    """Whether the current lock acquisition should lose its first race."""
    if _ACTIVE is None:
        return False
    return _ACTIVE.lock_directive()


def index_torn_fault() -> bool:
    """Whether the current index append should be torn mid-record."""
    if _ACTIVE is None:
        return False
    return _ACTIVE.index_torn_directive()


def journal_torn_fault() -> bool:
    """Whether the current service-journal append should be torn."""
    if _ACTIVE is None:
        return False
    return _ACTIVE.journal_torn_directive()


def client_disconnect_fault() -> bool:
    """Whether the current service response should be dropped."""
    if _ACTIVE is None:
        return False
    return _ACTIVE.client_disconnect_directive()


def job_deadline_fault(job_key: str, check_seq: int) -> bool:
    """Whether a job's deadline should be forced expired right now."""
    if _ACTIVE is None:
        return False
    return _ACTIVE.job_deadline_directive(job_key, check_seq)


# ----------------------------------------------------------------------
# Worker-side execution of a directive
# ----------------------------------------------------------------------
def faulted_call(payload):
    """Run one task under a :class:`FaultDirective` (module-level so the
    process backend can pickle it).

    ``crash`` kills the worker process outright (the parent sees a
    broken pool); ``hang`` blocks for the plan's ``hang_seconds`` and
    *then* runs the task — so a pool without hung-worker detection
    still finishes, slowly, instead of deadlocking; ``raise`` throws a
    retryable :class:`InjectedTaskError`.
    """
    directive, fn, inner = payload
    if directive.action == "crash":
        os._exit(77)
    if directive.action == "hang":
        time.sleep(directive.hang_seconds)
    elif directive.action == "raise":
        raise InjectedTaskError(
            f"injected transient task failure ({directive.detail})"
        )
    return fn(inner)
