"""Plain-text table rendering for benchmark/experiment output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError


def _format_cell(value, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    float_format: str = ".4g",
) -> str:
    """Render a list of rows as an aligned ASCII table.

    Floats are formatted with ``float_format``; every row must have as
    many cells as there are headers.
    """
    headers = [str(h) for h in headers]
    if not headers:
        raise ConfigurationError("table needs at least one column")
    text_rows: List[List[str]] = []
    for row in rows:
        cells = [_format_cell(v, float_format) for v in row]
        if len(cells) != len(headers):
            raise ConfigurationError(
                f"row {cells} has {len(cells)} cells, expected {len(headers)}"
            )
        text_rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in text_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(headers))
    lines.append(rule)
    lines.extend(fmt_line(cells) for cells in text_rows)
    return "\n".join(lines)
