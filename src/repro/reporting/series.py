"""Plain-text rendering of (x, y) series — the "figures" of the benches."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


def render_series(
    x: Sequence[float],
    y: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    width: int = 60,
    float_format: str = ".4g",
) -> str:
    """Render a series as rows with a proportional ASCII bar per point.

    The bar spans the y range (including negative values around a zero
    axis), giving a quick textual "plot" of the figure's shape.
    """
    xa = np.asarray(list(x), dtype=float)
    ya = np.asarray(list(y), dtype=float)
    if xa.size != ya.size:
        raise ConfigurationError(
            f"x and y must have equal length, got {xa.size} and {ya.size}"
        )
    if xa.size == 0:
        raise ConfigurationError("series must be non-empty")
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")

    y_min = float(np.min(ya))
    y_max = float(np.max(ya))
    span = y_max - y_min if y_max > y_min else 1.0

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"{x_label:>14s}  {y_label:>14s}")
    for xv, yv in zip(xa, ya):
        frac = (yv - y_min) / span
        bar = "#" * max(1, int(round(frac * width)))
        lines.append(
            f"{format(xv, float_format):>14s}  {format(yv, float_format):>14s}  |{bar}"
        )
    return "\n".join(lines)
