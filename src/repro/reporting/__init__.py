"""ASCII rendering of experiment tables and series (used by benches)."""

from repro.reporting.series import render_series
from repro.reporting.tables import render_table

__all__ = ["render_table", "render_series"]
