"""Counter-based batched noise synthesis (the ``rng_mode`` fast path).

Profiling after the engine / packed-record / scheduler PRs left one
irreducible per-record cost: Gaussian noise synthesis.  The compat
acquisition path must *replay* each record's own ``default_rng`` stream
(that is the reproducibility contract every equivalence test pins), so
records are drawn one at a time and the ziggurat transform runs at full
per-sample cost for every float that is about to be collapsed to one
bit anyway.

This module is the opt-in alternative.  Every stochastic batch path in
the library takes an ``rng_mode`` knob:

``"compat"`` (default)
    Bit-identical to the historical per-record ``default_rng`` replay.
    :func:`white_noise_matrix` centralizes that loop (one shared helper
    instead of per-source copies) without changing a single bit.

``"philox"``
    The fast mode.  A :class:`BatchNoiseGenerator` derives one
    counter-based ``numpy.random.Philox`` stream per record from the
    *same* spawn-seeded :class:`numpy.random.SeedSequence` identity the
    compat generator carries — records stay independent, deterministic
    and traceable to their seeds — and fills the whole
    ``(n_records, n_samples)`` noise matrix in one 2-D pass
    (GIL-releasing ``standard_normal(out=row)`` fills plus a single
    vectorized scale/shift, no per-record temporaries or copies).

    For records whose floats only ever feed an ideal comparator, the
    generator can go further and synthesize the *packed bits* directly:
    a 1-bit decision against a deterministic reference is a Bernoulli
    draw with probability ``P(noise >= ref_t)``, so one 32-bit counter
    uniform and a compare replace the full Gaussian sample
    (:meth:`BatchNoiseGenerator.packed_bernoulli_words`).  The bits are
    drawn from exactly the same stochastic process as the compat
    records — iid across samples because the noise is white — up to a
    probability quantization of ``2**-32`` per sample.

Philox-mode records are *not* bit-identical to compat records (they are
a different, equally valid realization); they are deterministic per
seed and statistically equivalent.  Everything downstream (Welch,
normalization, Y-factor) is distribution-free over ±1 records, so NF
results agree within ordinary statistical scatter.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels import get_kernel
from repro.signals.random import GeneratorLike, make_rng

__all__ = [
    "RNG_MODES",
    "validate_rng_mode",
    "BatchNoiseGenerator",
    "white_noise_matrix",
    "bernoulli_thresholds_u32",
    "gaussian_exceed_probability",
]

#: Accepted random-synthesis modes, in documentation order.
RNG_MODES = ("compat", "philox")

#: Row size below which a threaded fill cannot beat its dispatch cost —
#: ziggurat throughput is ~1e8 samples/s/core, so rows shorter than
#: this finish in well under a millisecond each.
MIN_THREADED_FILL_SAMPLES = 1 << 16


def validate_rng_mode(rng_mode: str) -> str:
    """Return ``rng_mode`` if valid, raise otherwise."""
    if rng_mode not in RNG_MODES:
        raise ConfigurationError(
            f"rng_mode must be one of {RNG_MODES}, got {rng_mode!r}"
        )
    return rng_mode


def _seed_sequence_of(seed: GeneratorLike) -> np.random.SeedSequence:
    """A spawn-seeded stream identity for one record's fill.

    The stream is a *spawned child* of the seed's own
    :class:`~numpy.random.SeedSequence`, so it keeps the record's
    spawn-key provenance while remaining independent of every other
    stream derived from the same seed.  Spawning is stateful on
    purpose: successive fills that reuse one generator (e.g. the
    amplifier's en → in → Johnson contributors) consume successive
    children and stay mutually independent — the counter-based
    counterpart of compat mode's advancing draw stream.
    """
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq
        if not isinstance(seq, np.random.SeedSequence):  # pragma: no cover
            raise ConfigurationError(
                "generator does not expose a SeedSequence; philox mode "
                "needs seed-sequence provenance"
            )
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return seq.spawn(1)[0]


class BatchNoiseGenerator:
    """Counter-based (Philox) noise synthesis for a batch of records.

    One spawn-seeded Philox stream per record: stream ``i`` is keyed by
    the seed-sequence identity of ``seeds[i]`` (generators contribute
    their own spawned sequence), so rows are independent, deterministic
    and carry the same provenance as the compat generators they stand
    in for.
    """

    def __init__(self, seeds: Sequence[GeneratorLike]):
        self.seed_sequences = [_seed_sequence_of(s) for s in seeds]
        self._gens = [
            np.random.Generator(np.random.Philox(seq))
            for seq in self.seed_sequences
        ]

    @property
    def n_streams(self) -> int:
        """Number of per-record streams (rows of every fill)."""
        return len(self._gens)

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_fill_threads(
        threads: Optional[int], n_streams: int, n_samples: int
    ) -> int:
        """Worker count for a row fan-out (1 = stay serial).

        ``None`` auto-scales: rows are independent and
        ``standard_normal(out=row)`` releases the GIL for the whole
        C-level ziggurat pass, so on multi-core hosts one thread per
        row (capped at the CPU count) fills the matrix in parallel.
        Single-core hosts and small rows stay serial — there the
        fan-out is pure dispatch overhead.
        """
        if threads is not None:
            if threads < 1:
                raise ConfigurationError(
                    f"threads must be >= 1, got {threads}"
                )
            return min(int(threads), n_streams) if n_streams else 1
        if n_streams < 2 or n_samples < MIN_THREADED_FILL_SAMPLES:
            return 1
        return max(1, min(n_streams, os.cpu_count() or 1))

    def normal_matrix(
        self,
        n_samples: int,
        mean: float = 0.0,
        scale: Union[float, np.ndarray] = 1.0,
        out: Optional[np.ndarray] = None,
        threads: Optional[int] = None,
    ) -> np.ndarray:
        """Fill a ``(n_streams, n_samples)`` Gaussian noise matrix.

        Row ``i`` comes from stream ``i``; ``scale`` may be a scalar or
        one value per row (heterogeneous hot/cold densities).  The fill
        runs as one 2-D pass: each row is written in place by the
        stream's C-level ``standard_normal(out=...)`` (no per-record
        temporaries, copies or Python-level sample loops), then a
        single vectorized multiply/add applies scale and mean to the
        whole matrix.

        On multi-core hosts the per-row fills fan out over a thread
        pool (``threads=None`` auto-sizes; pass ``1`` to force the
        serial loop): numpy releases the GIL while filling a
        preallocated row, and each row is written by its own stream
        regardless of scheduling order, so threaded output is
        bit-identical to serial.
        """
        n = int(n_samples)
        if n < 0:
            raise ConfigurationError(f"n_samples must be >= 0, got {n_samples}")
        shape = (self.n_streams, n)
        if out is None:
            out = np.empty(shape)
        elif out.shape != shape or out.dtype != np.float64:
            raise ConfigurationError(
                f"out must be float64 of shape {shape}, got "
                f"{out.dtype} {out.shape}"
            )
        if n == 0:
            return out
        n_workers = self._resolve_fill_threads(threads, self.n_streams, n)
        if n_workers > 1:
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                list(
                    pool.map(
                        lambda i: self._gens[i].standard_normal(n, out=out[i]),
                        range(self.n_streams),
                    )
                )
        else:
            for i, gen in enumerate(self._gens):
                gen.standard_normal(n, out=out[i])
        scale_arr = np.asarray(scale, dtype=float)
        if scale_arr.ndim == 0:
            if float(scale_arr) != 1.0:
                out *= float(scale_arr)
        else:
            if scale_arr.shape != (self.n_streams,):
                raise ConfigurationError(
                    f"scale must be scalar or one value per stream "
                    f"({self.n_streams}), got shape {scale_arr.shape}"
                )
            out *= scale_arr[:, np.newaxis]
        if mean != 0.0:
            out += mean
        return out

    # ------------------------------------------------------------------
    def packed_bernoulli_words(
        self,
        thresholds_u32: Union[np.ndarray, Sequence[np.ndarray]],
    ) -> np.ndarray:
        """Synthesize packed Bernoulli bitstreams, one row per stream.

        ``thresholds_u32`` is a 1-D ``uint32`` vector shared by every
        stream, or one vector per stream (rows of a two-state batch
        share the two cached state vectors): bit ``t`` of row ``i`` is
        set iff the stream's ``t``-th 32-bit counter uniform is below
        ``thresholds[i][t]``, i.e. with probability
        ``thresholds[i][t] / 2**32`` (see
        :func:`bernoulli_thresholds_u32`).  Returns
        ``numpy.packbits``-order words of shape
        ``(n_streams, ceil(n_samples / 8))`` — ready for
        :class:`~repro.bitstream.PackedRecordBatch` — without ever
        materializing a float sample: per bit the cost is half a
        ``uint64`` of counter output plus one SIMD compare, which is
        what makes direct record synthesis several times faster than
        drawing the Gaussian floats the comparator would collapse.
        """
        if self.n_streams == 0:
            raise ConfigurationError(
                "cannot synthesize a batch with no streams"
            )
        if isinstance(thresholds_u32, np.ndarray):
            rows = [thresholds_u32] * self.n_streams
        else:
            rows = list(thresholds_u32)
            if len(rows) != self.n_streams:
                raise ConfigurationError(
                    f"got {self.n_streams} streams but {len(rows)} "
                    "threshold vectors"
                )
        for row in rows:
            arr = np.asarray(row)
            if arr.dtype != np.uint32 or arr.ndim != 1:
                raise ConfigurationError(
                    f"thresholds must be 1-D uint32 arrays, got "
                    f"{arr.dtype} with {arr.ndim} dims"
                )
            if arr.size != rows[0].size:
                raise ConfigurationError(
                    "threshold vectors must share one length, got "
                    f"{arr.size} vs {rows[0].size}"
                )
        n = int(rows[0].size)
        n_raw = (n + 1) // 2  # two u32 lanes per raw u64
        pack = get_kernel("bernoulli_pack")
        words = np.empty((self.n_streams, (n + 7) // 8), dtype=np.uint8)
        for i, gen in enumerate(self._gens):
            raw = gen.bit_generator.random_raw(n_raw)
            pack(raw, rows[i], words[i])
        return words


def white_noise_matrix(
    rngs: Sequence[GeneratorLike],
    n_samples: int,
    mean: float = 0.0,
    scale: Union[float, np.ndarray] = 1.0,
    rng_mode: str = "compat",
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Stacked white-Gaussian records, one row per generator.

    The single white-noise kernel behind every source's batch path
    (:class:`~repro.signals.sources.GaussianNoiseSource`,
    :class:`~repro.signals.sources.ThermalNoiseSource`, the shaped-noise
    white stage, :class:`~repro.analog.noise_source.
    CalibratedNoiseSource`).  ``scale`` may be a scalar or one RMS per
    row.

    In ``"compat"`` mode row ``i`` equals
    ``make_rng(rngs[i]).normal(mean, scale_i, n_samples)`` bit for bit
    — the generators are resolved once up front and each row is drawn
    straight into the output matrix, but the draws themselves replay
    the historical per-record streams exactly.  In ``"philox"`` mode
    the rows come from per-record counter streams via
    :meth:`BatchNoiseGenerator.normal_matrix` (deterministic and
    independent per record, not bit-identical to compat).
    """
    validate_rng_mode(rng_mode)
    rngs = list(rngs)
    n = int(n_samples)
    if rng_mode == "philox":
        return BatchNoiseGenerator(rngs).normal_matrix(
            n, mean=mean, scale=scale, out=out
        )
    shape = (len(rngs), n)
    if out is None:
        out = np.empty(shape)
    elif out.shape != shape or out.dtype != np.float64:
        raise ConfigurationError(
            f"out must be float64 of shape {shape}, got {out.dtype} "
            f"{out.shape}"
        )
    scale_arr = np.asarray(scale, dtype=float)
    if scale_arr.ndim == 0:
        scales = np.full(len(rngs), float(scale_arr))
    elif scale_arr.shape == (len(rngs),):
        scales = scale_arr
    else:
        raise ConfigurationError(
            f"scale must be scalar or one value per record "
            f"({len(rngs)}), got shape {scale_arr.shape}"
        )
    gens = [make_rng(rng) for rng in rngs]
    for i, gen in enumerate(gens):
        out[i] = gen.normal(mean, scales[i], size=n)
    return out


# ----------------------------------------------------------------------
# Bernoulli threshold math
# ----------------------------------------------------------------------
def gaussian_exceed_probability(x: np.ndarray) -> np.ndarray:
    """``P(Z >= x)`` for standard normal ``Z`` (the comparator model).

    Uses :func:`scipy.special.ndtr` when scipy is importable and a
    ``math.erfc`` fallback otherwise (the thresholds are computed once
    per state and cached, so the fallback's Python loop is off the hot
    path).
    """
    x = np.asarray(x, dtype=float)
    try:
        from scipy.special import ndtr
    except ImportError:  # pragma: no cover - scipy is a soft dependency
        flat = x.reshape(-1)
        out = np.empty_like(flat)
        for i, v in enumerate(flat):
            out[i] = 0.5 * math.erfc(v / math.sqrt(2.0))
        return out.reshape(x.shape)
    return ndtr(-x)


def bernoulli_thresholds_u32(probabilities: np.ndarray) -> np.ndarray:
    """Quantize per-sample bit probabilities to ``uint32`` thresholds.

    ``uniform_u32 < threshold`` fires with probability
    ``threshold / 2**32``, so the quantization error per sample is below
    ``2**-32`` — about seven orders of magnitude under the statistical
    resolution of a paper-scale (1e6-sample) record.  ``p == 1`` maps to
    the largest representable threshold (probability ``1 - 2**-32``).
    """
    p = np.asarray(probabilities, dtype=float)
    if np.any(~np.isfinite(p)) or np.any(p < 0.0) or np.any(p > 1.0):
        raise ConfigurationError("bit probabilities must be in [0, 1]")
    scaled = np.rint(p * 4294967296.0)  # 2**32
    return np.minimum(scaled, 4294967295.0).astype(np.uint32)
