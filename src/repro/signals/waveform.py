"""Sampled-waveform container used throughout the library.

A :class:`Waveform` couples a 1-D ``numpy`` sample array with its sample
rate, so downstream DSP (PSD estimation, band power) can always recover
physical frequencies.  Arithmetic between waveforms checks sample-rate and
length compatibility instead of silently broadcasting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Waveform:
    """An immutable, uniformly sampled real-valued waveform.

    Parameters
    ----------
    samples:
        1-D array of sample values (volts unless documented otherwise).
    sample_rate:
        Sampling frequency in Hz; must be positive.
    """

    samples: np.ndarray
    sample_rate: float

    def __init__(self, samples, sample_rate: float):
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"waveform samples must be 1-D, got shape {arr.shape}"
            )
        if not np.isfinite(sample_rate) or sample_rate <= 0:
            raise ConfigurationError(
                f"sample_rate must be a positive finite number, got {sample_rate!r}"
            )
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "samples", arr)
        object.__setattr__(self, "sample_rate", float(sample_rate))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.samples.size

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return self.samples.size

    @property
    def duration(self) -> float:
        """Record length in seconds."""
        return self.samples.size / self.sample_rate

    @property
    def times(self) -> np.ndarray:
        """Sample time stamps in seconds (starting at 0)."""
        return np.arange(self.samples.size) / self.sample_rate

    @property
    def nyquist(self) -> float:
        """Nyquist frequency in Hz."""
        return self.sample_rate / 2.0

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        return float(np.mean(self.samples)) if self.samples.size else 0.0

    def mean_square(self) -> float:
        """Mean-square value (total power into 1 ohm, V^2)."""
        if self.samples.size == 0:
            return 0.0
        return float(np.mean(self.samples**2))

    def rms(self) -> float:
        """Root-mean-square value in volts."""
        return float(np.sqrt(self.mean_square()))

    def std(self) -> float:
        """Standard deviation (AC RMS) of the samples."""
        return float(np.std(self.samples)) if self.samples.size else 0.0

    def peak(self) -> float:
        """Maximum absolute sample value."""
        return float(np.max(np.abs(self.samples))) if self.samples.size else 0.0

    def crest_factor(self) -> float:
        """Peak-to-RMS ratio; ``inf`` for an all-zero waveform."""
        rms = self.rms()
        if rms == 0.0:
            return float("inf")
        return self.peak() / rms

    # ------------------------------------------------------------------
    # Transformations (all return new Waveform instances)
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "Waveform":
        """Return the waveform multiplied by a scalar gain."""
        return Waveform(self.samples * float(factor), self.sample_rate)

    def offset(self, dc: float) -> "Waveform":
        """Return the waveform with a DC offset added."""
        return Waveform(self.samples + float(dc), self.sample_rate)

    def remove_mean(self) -> "Waveform":
        """Return a zero-mean copy."""
        return Waveform(self.samples - self.mean(), self.sample_rate)

    def to_packed(self, provenance=None):
        """Pack a ``+/-1`` bitstream waveform to 1 bit/sample.

        Returns a :class:`~repro.bitstream.PackedBitstream` (raises
        for non-bitstream waveforms).  The inverse is
        ``PackedBitstream.to_waveform()``; the round-trip is exact.
        """
        from repro.bitstream import PackedBitstream  # avoid import cycle

        return PackedBitstream.pack(self, provenance=provenance)

    def slice(self, start: int, stop: int) -> "Waveform":
        """Return samples ``[start:stop)`` as a new waveform."""
        if not 0 <= start <= stop <= self.samples.size:
            raise ConfigurationError(
                f"invalid slice [{start}:{stop}) for waveform of "
                f"{self.samples.size} samples"
            )
        return Waveform(self.samples[start:stop], self.sample_rate)

    def _check_compatible(self, other: "Waveform") -> None:
        if not isinstance(other, Waveform):
            raise TypeError(f"expected Waveform, got {type(other).__name__}")
        if other.sample_rate != self.sample_rate:
            raise ConfigurationError(
                "sample-rate mismatch: "
                f"{self.sample_rate} Hz vs {other.sample_rate} Hz"
            )
        if other.samples.size != self.samples.size:
            raise ConfigurationError(
                "length mismatch: "
                f"{self.samples.size} vs {other.samples.size} samples"
            )

    def __add__(self, other):
        if isinstance(other, Waveform):
            self._check_compatible(other)
            return Waveform(self.samples + other.samples, self.sample_rate)
        if isinstance(other, (int, float)):
            return self.offset(float(other))
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, Waveform):
            self._check_compatible(other)
            return Waveform(self.samples - other.samples, self.sample_rate)
        if isinstance(other, (int, float)):
            return self.offset(-float(other))
        return NotImplemented

    def __mul__(self, other):
        if isinstance(other, (int, float)):
            return self.scaled(float(other))
        return NotImplemented

    __rmul__ = __mul__

    def __eq__(self, other):
        if not isinstance(other, Waveform):
            return NotImplemented
        return (
            self.sample_rate == other.sample_rate
            and self.samples.shape == other.samples.shape
            and bool(np.all(self.samples == other.samples))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Waveform(n={self.samples.size}, fs={self.sample_rate:g} Hz, "
            f"rms={self.rms():.4g})"
        )


def concatenate(waveforms) -> Waveform:
    """Concatenate several waveforms sharing a sample rate."""
    waveforms = list(waveforms)
    if not waveforms:
        raise ConfigurationError("cannot concatenate an empty waveform list")
    rate = waveforms[0].sample_rate
    for wave in waveforms[1:]:
        if wave.sample_rate != rate:
            raise ConfigurationError(
                f"sample-rate mismatch in concatenate: {rate} vs {wave.sample_rate}"
            )
    return Waveform(np.concatenate([w.samples for w in waveforms]), rate)
