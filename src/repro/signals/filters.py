"""Band-limiting filters applied to waveforms.

The analog chain in the paper band-limits the noise before the comparator
(the post-amplifier pole sits near 3.5 kHz).  These wrappers keep all
filtering on :class:`~repro.signals.waveform.Waveform` objects and use
``scipy.signal`` second-order sections for numerical robustness.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as _sig

from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


def _check_cutoff(cutoff_hz: float, sample_rate: float, name: str = "cutoff") -> None:
    if cutoff_hz <= 0:
        raise ConfigurationError(f"{name} must be > 0 Hz, got {cutoff_hz}")
    if cutoff_hz >= sample_rate / 2.0:
        raise ConfigurationError(
            f"{name} {cutoff_hz} Hz must be below Nyquist ({sample_rate / 2.0} Hz)"
        )


def lowpass(wave: Waveform, cutoff_hz: float, order: int = 4) -> Waveform:
    """Butterworth low-pass filter (zero state, causal)."""
    _check_cutoff(cutoff_hz, wave.sample_rate)
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order}")
    sos = _sig.butter(order, cutoff_hz, btype="low", fs=wave.sample_rate, output="sos")
    return Waveform(_sig.sosfilt(sos, wave.samples), wave.sample_rate)


def highpass(wave: Waveform, cutoff_hz: float, order: int = 4) -> Waveform:
    """Butterworth high-pass filter (zero state, causal)."""
    _check_cutoff(cutoff_hz, wave.sample_rate)
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order}")
    sos = _sig.butter(order, cutoff_hz, btype="high", fs=wave.sample_rate, output="sos")
    return Waveform(_sig.sosfilt(sos, wave.samples), wave.sample_rate)


def bandpass(wave: Waveform, f_low_hz: float, f_high_hz: float, order: int = 4) -> Waveform:
    """Butterworth band-pass filter between ``f_low`` and ``f_high``."""
    _check_cutoff(f_low_hz, wave.sample_rate, "f_low")
    _check_cutoff(f_high_hz, wave.sample_rate, "f_high")
    if f_low_hz >= f_high_hz:
        raise ConfigurationError(
            f"f_low ({f_low_hz} Hz) must be below f_high ({f_high_hz} Hz)"
        )
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order}")
    sos = _sig.butter(
        order, [f_low_hz, f_high_hz], btype="band", fs=wave.sample_rate, output="sos"
    )
    return Waveform(_sig.sosfilt(sos, wave.samples), wave.sample_rate)


def single_pole_lowpass_array(
    samples: np.ndarray, sample_rate: float, pole_hz: float
) -> np.ndarray:
    """Single-pole low-pass applied along the last axis of an array.

    The batch form of :func:`single_pole_lowpass`: each row is filtered
    independently (and bit-identically to the 1-D call), so stacked
    records go through ``scipy`` in one pass.
    """
    _check_cutoff(pole_hz, sample_rate, "pole")
    b, a = _sig.bilinear(
        [1.0], [1.0 / (2.0 * np.pi * pole_hz), 1.0], fs=sample_rate
    )
    return _sig.lfilter(b, a, samples, axis=-1)


def single_pole_lowpass(wave: Waveform, pole_hz: float) -> Waveform:
    """First-order (single-pole) low-pass — the closed-loop opamp response.

    Implemented with the bilinear transform of ``H(s)=1/(1+s/wp)`` so the
    DC gain is exactly one.
    """
    return Waveform(
        single_pole_lowpass_array(wave.samples, wave.sample_rate, pole_hz),
        wave.sample_rate,
    )


def single_pole_magnitude(freqs_hz: np.ndarray, pole_hz: float) -> np.ndarray:
    """|H(f)| of a single-pole low-pass (analytical, for noise analysis)."""
    if pole_hz <= 0:
        raise ConfigurationError(f"pole must be > 0 Hz, got {pole_hz}")
    f = np.asarray(freqs_hz, dtype=float)
    return 1.0 / np.sqrt(1.0 + (f / pole_hz) ** 2)


def equivalent_noise_bandwidth_single_pole(pole_hz: float) -> float:
    """ENBW of a single-pole low-pass: ``pi/2 * f_pole``."""
    if pole_hz <= 0:
        raise ConfigurationError(f"pole must be > 0 Hz, got {pole_hz}")
    return float(np.pi / 2.0 * pole_hz)


def decimate(wave: Waveform, factor: int) -> Waveform:
    """Anti-aliased decimation by an integer factor."""
    if factor < 1:
        raise ConfigurationError(f"decimation factor must be >= 1, got {factor}")
    if factor == 1:
        return wave
    out = _sig.decimate(wave.samples, factor, ftype="fir", zero_phase=True)
    return Waveform(out, wave.sample_rate / factor)
