"""Signal substrate: waveform container, sources, thermal-noise math.

This package provides everything the rest of the library consumes as a
*stimulus*: sampled waveforms with an attached sample rate, deterministic
reference waveforms (sine/square), Gaussian and thermal noise sources,
frequency-shaped (1/f) noise, band-limiting filters and reproducible
random-number management.
"""

from repro.signals.batch_rng import (
    RNG_MODES,
    BatchNoiseGenerator,
    validate_rng_mode,
    white_noise_matrix,
)
from repro.signals.random import spawn_rngs, make_rng
from repro.signals.sources import (
    CompositeSource,
    GaussianNoiseSource,
    ShapedNoiseSource,
    SineSource,
    SquareSource,
    ThermalNoiseSource,
)
from repro.signals.thermal import (
    available_noise_power,
    enr_db_from_temperatures,
    johnson_noise_density,
    temperature_from_power,
)
from repro.signals.waveform import Waveform

__all__ = [
    "Waveform",
    "make_rng",
    "spawn_rngs",
    "RNG_MODES",
    "BatchNoiseGenerator",
    "validate_rng_mode",
    "white_noise_matrix",
    "SineSource",
    "SquareSource",
    "GaussianNoiseSource",
    "ThermalNoiseSource",
    "ShapedNoiseSource",
    "CompositeSource",
    "available_noise_power",
    "johnson_noise_density",
    "temperature_from_power",
    "enr_db_from_temperatures",
]
