"""Signal and noise sources.

Each source renders a :class:`~repro.signals.waveform.Waveform` of a given
length at a given sample rate.  Deterministic sources (sine, square) ignore
the random generator; stochastic sources require one so experiments remain
reproducible.

The paper's method needs exactly these stimuli:

* a constant-amplitude *reference waveform* (square wave in the Matlab
  simulation of section 5.2, a 3 kHz sine in the prototype of section 5.4);
* Gaussian noise of programmable power — the hot/cold noise-source outputs
  and every amplifier noise contributor;
* frequency-shaped noise for opamp 1/f regions.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

import numpy as np

from repro.constants import BOLTZMANN
from repro.errors import ConfigurationError
from repro.signals.batch_rng import white_noise_matrix
from repro.signals.random import GeneratorLike, make_rng
from repro.signals.waveform import Waveform


def _validate_render_args(n_samples: int, sample_rate: float) -> None:
    if n_samples < 0:
        raise ConfigurationError(f"n_samples must be >= 0, got {n_samples}")
    if not np.isfinite(sample_rate) or sample_rate <= 0:
        raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate!r}")


class SignalSource(abc.ABC):
    """Abstract waveform source."""

    @abc.abstractmethod
    def render(
        self, n_samples: int, sample_rate: float, rng: GeneratorLike = None
    ) -> Waveform:
        """Render ``n_samples`` at ``sample_rate`` Hz."""

    def render_batch(
        self, n_samples: int, sample_rate: float, rngs: Sequence[GeneratorLike]
    ) -> np.ndarray:
        """Render one record per generator as a stacked 2-D array.

        Row ``i`` is bit-exact equal to ``render(n_samples, sample_rate,
        rngs[i]).samples`` — batch paths must preserve per-record
        reproducibility.  Subclasses override this to vectorize the
        deterministic work (e.g. FFT shaping) across records while
        keeping each record's random draws on its own generator.
        """
        rngs = list(rngs)
        out = np.empty((len(rngs), int(n_samples)))
        for i, rng in enumerate(rngs):
            out[i] = self.render(n_samples, sample_rate, rng).samples
        return out

    def __add__(self, other: "SignalSource") -> "CompositeSource":
        if not isinstance(other, SignalSource):
            return NotImplemented
        return CompositeSource([self, other])


class SineSource(SignalSource):
    """Pure sine wave ``amplitude * sin(2*pi*f*t + phase) + dc``."""

    def __init__(
        self,
        frequency_hz: float,
        amplitude: float,
        phase_rad: float = 0.0,
        dc: float = 0.0,
    ):
        if frequency_hz < 0:
            raise ConfigurationError(f"frequency must be >= 0, got {frequency_hz}")
        if amplitude < 0:
            raise ConfigurationError(f"amplitude must be >= 0, got {amplitude}")
        self.frequency_hz = float(frequency_hz)
        self.amplitude = float(amplitude)
        self.phase_rad = float(phase_rad)
        self.dc = float(dc)

    def render(self, n_samples, sample_rate, rng=None) -> Waveform:
        _validate_render_args(n_samples, sample_rate)
        if self.frequency_hz >= sample_rate / 2.0 and self.frequency_hz > 0:
            raise ConfigurationError(
                f"sine frequency {self.frequency_hz} Hz is not below the "
                f"Nyquist frequency {sample_rate / 2.0} Hz"
            )
        t = np.arange(n_samples) / sample_rate
        samples = (
            self.amplitude * np.sin(2.0 * np.pi * self.frequency_hz * t + self.phase_rad)
            + self.dc
        )
        return Waveform(samples, sample_rate)


class SquareSource(SignalSource):
    """Constant-amplitude square wave toggling between ``+A`` and ``-A``.

    The Matlab simulation of the paper (section 5.2, figures 7-9) uses a
    square wave as the reference; the fundamental line carries
    ``(4/pi) * A`` amplitude and the odd harmonics fall off as ``1/n``.
    """

    def __init__(
        self,
        frequency_hz: float,
        amplitude: float,
        phase_rad: float = 0.0,
        duty: float = 0.5,
        dc: float = 0.0,
    ):
        if frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be > 0, got {frequency_hz}")
        if amplitude < 0:
            raise ConfigurationError(f"amplitude must be >= 0, got {amplitude}")
        if not 0.0 < duty < 1.0:
            raise ConfigurationError(f"duty cycle must be in (0, 1), got {duty}")
        self.frequency_hz = float(frequency_hz)
        self.amplitude = float(amplitude)
        self.phase_rad = float(phase_rad)
        self.duty = float(duty)
        self.dc = float(dc)

    def render(self, n_samples, sample_rate, rng=None) -> Waveform:
        _validate_render_args(n_samples, sample_rate)
        if self.frequency_hz >= sample_rate / 2.0:
            raise ConfigurationError(
                f"square-wave frequency {self.frequency_hz} Hz is not below "
                f"the Nyquist frequency {sample_rate / 2.0} Hz"
            )
        t = np.arange(n_samples) / sample_rate
        cycle_phase = (self.frequency_hz * t + self.phase_rad / (2.0 * np.pi)) % 1.0
        samples = np.where(cycle_phase < self.duty, self.amplitude, -self.amplitude)
        return Waveform(samples + self.dc, sample_rate)


class GaussianNoiseSource(SignalSource):
    """White Gaussian noise with a prescribed RMS level (std deviation).

    Discrete white noise of variance ``sigma^2`` sampled at ``fs`` has a
    flat one-sided PSD of ``2*sigma^2/fs`` V^2/Hz up to the Nyquist
    frequency.
    """

    def __init__(self, rms: float, mean: float = 0.0):
        if rms < 0:
            raise ConfigurationError(f"rms must be >= 0, got {rms}")
        self.rms = float(rms)
        self.mean = float(mean)

    @classmethod
    def from_density(
        cls, density_v2_per_hz: float, sample_rate: float
    ) -> "GaussianNoiseSource":
        """Create a source whose one-sided PSD is flat at the given density.

        The variance that yields a one-sided density ``S`` at sample rate
        ``fs`` is ``sigma^2 = S * fs / 2`` (all power below Nyquist).
        """
        if density_v2_per_hz < 0:
            raise ConfigurationError(
                f"density must be >= 0, got {density_v2_per_hz}"
            )
        if sample_rate <= 0:
            raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
        return cls(rms=float(np.sqrt(density_v2_per_hz * sample_rate / 2.0)))

    def render(self, n_samples, sample_rate, rng=None) -> Waveform:
        _validate_render_args(n_samples, sample_rate)
        gen = make_rng(rng)
        samples = gen.normal(self.mean, self.rms, size=n_samples)
        return Waveform(samples, sample_rate)

    def render_batch(
        self, n_samples, sample_rate, rngs, rng_mode: str = "compat"
    ) -> np.ndarray:
        """Stacked records, one per generator (no Waveform copies).

        ``rng_mode="compat"`` replays each record's own generator
        stream bit for bit; ``"philox"`` fills the whole matrix from
        per-record counter streams in one 2-D pass (deterministic but
        not bit-identical — see :mod:`repro.signals.batch_rng`).
        """
        _validate_render_args(n_samples, sample_rate)
        return white_noise_matrix(
            rngs, n_samples, mean=self.mean, scale=self.rms, rng_mode=rng_mode
        )


class ThermalNoiseSource(SignalSource):
    """Johnson noise of a resistor at a given temperature.

    Renders white Gaussian noise whose one-sided voltage density is
    ``4*k*T*R`` V^2/Hz — the open-circuit noise of the resistor.  This is
    the physical model behind the calibrated hot/cold noise source of the
    Y-factor method.
    """

    def __init__(self, resistance_ohm: float, temperature_k: float):
        if resistance_ohm < 0:
            raise ConfigurationError(
                f"resistance must be >= 0, got {resistance_ohm}"
            )
        if temperature_k < 0:
            raise ConfigurationError(
                f"temperature must be >= 0 K, got {temperature_k}"
            )
        self.resistance_ohm = float(resistance_ohm)
        self.temperature_k = float(temperature_k)

    @property
    def density_v2_per_hz(self) -> float:
        """One-sided voltage noise density ``4kTR`` in V^2/Hz."""
        return 4.0 * BOLTZMANN * self.temperature_k * self.resistance_ohm

    def render(self, n_samples, sample_rate, rng=None) -> Waveform:
        _validate_render_args(n_samples, sample_rate)
        inner = GaussianNoiseSource.from_density(self.density_v2_per_hz, sample_rate)
        return inner.render(n_samples, sample_rate, rng)

    def render_batch(
        self, n_samples, sample_rate, rngs, rng_mode: str = "compat"
    ) -> np.ndarray:
        """Stacked Johnson-noise records through the shared white kernel.

        Same contract as :meth:`GaussianNoiseSource.render_batch`: row
        ``i`` replays ``render(..., rngs[i])`` bit for bit in compat
        mode, philox mode is the counter-based 2-D fill.
        """
        _validate_render_args(n_samples, sample_rate)
        inner = GaussianNoiseSource.from_density(self.density_v2_per_hz, sample_rate)
        return white_noise_matrix(
            rngs, n_samples, mean=inner.mean, scale=inner.rms, rng_mode=rng_mode
        )


class ShapedNoiseSource(SignalSource):
    """Gaussian noise with an arbitrary one-sided PSD shape.

    ``density_fn(f)`` must return the one-sided PSD in V^2/Hz for an array
    of frequencies in ``[0, fs/2]``.  The shaping is done in the frequency
    domain: white Gaussian spectra are weighted by ``sqrt(S(f))`` and
    transformed back, which gives a stationary Gaussian process with the
    requested spectrum (up to FFT-grid resolution).

    This implements opamp voltage/current noise with 1/f corners, e.g.
    ``S(f) = en^2 * (1 + fc/f)``.
    """

    def __init__(self, density_fn: Callable[[np.ndarray], np.ndarray]):
        if not callable(density_fn):
            raise ConfigurationError("density_fn must be callable")
        self.density_fn = density_fn

    @classmethod
    def one_over_f(
        cls, white_density_v2_per_hz: float, corner_hz: float, f_min_hz: float = 1e-2
    ) -> "ShapedNoiseSource":
        """White + 1/f noise: ``S(f) = S0 * (1 + fc / max(f, f_min))``."""
        if white_density_v2_per_hz < 0:
            raise ConfigurationError(
                f"white density must be >= 0, got {white_density_v2_per_hz}"
            )
        if corner_hz < 0:
            raise ConfigurationError(f"corner must be >= 0, got {corner_hz}")
        if f_min_hz <= 0:
            raise ConfigurationError(f"f_min must be > 0, got {f_min_hz}")

        def density(f: np.ndarray) -> np.ndarray:
            safe_f = np.maximum(np.asarray(f, dtype=float), f_min_hz)
            return white_density_v2_per_hz * (1.0 + corner_hz / safe_f)

        return cls(density)

    def _checked_density(self, n_samples: int, sample_rate: float) -> np.ndarray:
        freqs = np.fft.rfftfreq(n_samples, d=1.0 / sample_rate)
        density = np.asarray(self.density_fn(freqs), dtype=float)
        if density.shape != freqs.shape:
            raise ConfigurationError(
                "density_fn must return one value per frequency: "
                f"expected shape {freqs.shape}, got {density.shape}"
            )
        if np.any(density < 0) or not np.all(np.isfinite(density)):
            raise ConfigurationError(
                "density_fn must return finite non-negative values"
            )
        return density

    def render(self, n_samples, sample_rate, rng=None) -> Waveform:
        _validate_render_args(n_samples, sample_rate)
        if n_samples == 0:
            return Waveform(np.zeros(0), sample_rate)
        gen = make_rng(rng)
        density = self._checked_density(n_samples, sample_rate)
        # White Gaussian noise has a flat one-sided PSD of 2/fs per unit
        # variance; weight its spectrum by sqrt(S(f) * fs / 2) to reach the
        # requested density.
        white = gen.normal(0.0, 1.0, size=n_samples)
        spectrum = np.fft.rfft(white)
        spectrum *= np.sqrt(density * sample_rate / 2.0)
        spectrum[0] = 0.0  # force zero mean
        samples = np.fft.irfft(spectrum, n=n_samples)
        return Waveform(samples, sample_rate)

    def render_batch(
        self, n_samples, sample_rate, rngs, rng_mode: str = "compat"
    ) -> np.ndarray:
        """Stacked shaped-noise records with one batched FFT round trip.

        In compat mode each record's white draws come from its own
        generator (in the same order as :meth:`render`); philox mode
        fills the white stage from per-record counter streams.  Either
        way the spectral shaping runs as a single batched
        ``rfft``/``irfft`` pair, which is bit-identical to the
        per-record transforms.
        """
        _validate_render_args(n_samples, sample_rate)
        rngs = list(rngs)
        n = int(n_samples)
        if n == 0:
            return np.zeros((len(rngs), 0))
        density = self._checked_density(n, sample_rate)
        white = white_noise_matrix(rngs, n, rng_mode=rng_mode)
        spectrum = np.fft.rfft(white, axis=-1)
        spectrum *= np.sqrt(density * sample_rate / 2.0)
        spectrum[..., 0] = 0.0  # force zero mean
        return np.fft.irfft(spectrum, n=n, axis=-1)


class CompositeSource(SignalSource):
    """Sum of several sources rendered with independent random streams."""

    def __init__(self, sources: Sequence[SignalSource]):
        sources = list(sources)
        if not sources:
            raise ConfigurationError("CompositeSource needs at least one source")
        for src in sources:
            if not isinstance(src, SignalSource):
                raise ConfigurationError(
                    f"all members must be SignalSource, got {type(src).__name__}"
                )
        self.sources = sources

    def render(self, n_samples, sample_rate, rng=None) -> Waveform:
        _validate_render_args(n_samples, sample_rate)
        gen = make_rng(rng)
        total = np.zeros(n_samples)
        for src in self.sources:
            # Each member draws from the shared generator stream; the
            # members stay independent because the stream advances.
            total = total + src.render(n_samples, sample_rate, gen).samples
        return Waveform(total, sample_rate)


class DCSource(SignalSource):
    """Constant DC level (useful for comparator offset experiments)."""

    def __init__(self, level: float):
        self.level = float(level)

    def render(self, n_samples, sample_rate, rng=None) -> Waveform:
        _validate_render_args(n_samples, sample_rate)
        return Waveform(np.full(n_samples, self.level), sample_rate)
