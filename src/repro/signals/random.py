"""Reproducible random-number management.

Every stochastic component in the library takes an explicit
``numpy.random.Generator``.  These helpers create generators from integer
seeds and spawn statistically independent child generators, so experiments
are reproducible and hot/cold acquisitions use independent noise.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

GeneratorLike = Union[int, np.random.Generator, None]


def make_rng(seed: GeneratorLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    ``seed`` may be ``None`` (OS entropy), an integer seed, or an existing
    generator (returned unchanged so callers can pass either form).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: GeneratorLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent child generators from one seed.

    Uses ``SeedSequence.spawn`` so children are independent regardless of
    how many draws each consumes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
