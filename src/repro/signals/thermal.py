"""Thermal-noise arithmetic (kTB powers, Johnson densities, ENR).

These helpers implement the quantities used by equations 4-9 of the paper:
available noise power ``k*T*B``, equivalent noise temperature of a measured
power, Johnson (resistor) noise voltage density ``4*k*T*R`` and the excess
noise ratio (ENR) of a calibrated hot/cold noise source.
"""

from __future__ import annotations

import numpy as np

from repro.constants import BOLTZMANN, T0_KELVIN, linear_to_db
from repro.errors import ConfigurationError


def available_noise_power(temperature_k: float, bandwidth_hz: float) -> float:
    """Available noise power ``k*T*B`` in watts.

    This is the numerator/denominator building block of the IEEE noise
    factor definition (paper eq 4).
    """
    if temperature_k < 0:
        raise ConfigurationError(f"temperature must be >= 0 K, got {temperature_k}")
    if bandwidth_hz <= 0:
        raise ConfigurationError(f"bandwidth must be > 0 Hz, got {bandwidth_hz}")
    return BOLTZMANN * temperature_k * bandwidth_hz


def temperature_from_power(power_w: float, bandwidth_hz: float) -> float:
    """Equivalent noise temperature ``P / (k*B)`` in kelvin."""
    if power_w < 0:
        raise ConfigurationError(f"power must be >= 0 W, got {power_w}")
    if bandwidth_hz <= 0:
        raise ConfigurationError(f"bandwidth must be > 0 Hz, got {bandwidth_hz}")
    return power_w / (BOLTZMANN * bandwidth_hz)


def johnson_noise_density(resistance_ohm: float, temperature_k: float = T0_KELVIN) -> float:
    """One-sided Johnson noise voltage density ``4kTR`` in V^2/Hz."""
    if resistance_ohm < 0:
        raise ConfigurationError(f"resistance must be >= 0, got {resistance_ohm}")
    if temperature_k < 0:
        raise ConfigurationError(f"temperature must be >= 0 K, got {temperature_k}")
    return 4.0 * BOLTZMANN * temperature_k * resistance_ohm


def johnson_noise_rms(
    resistance_ohm: float, bandwidth_hz: float, temperature_k: float = T0_KELVIN
) -> float:
    """RMS Johnson noise voltage ``sqrt(4kTRB)`` in volts."""
    if bandwidth_hz < 0:
        raise ConfigurationError(f"bandwidth must be >= 0 Hz, got {bandwidth_hz}")
    return float(
        np.sqrt(johnson_noise_density(resistance_ohm, temperature_k) * bandwidth_hz)
    )


def excess_noise_ratio(t_hot_k: float, t_reference_k: float = T0_KELVIN) -> float:
    """Linear excess noise ratio ``(Th - T0)/T0`` of a hot noise source."""
    if t_hot_k <= t_reference_k:
        raise ConfigurationError(
            f"hot temperature ({t_hot_k} K) must exceed the reference "
            f"temperature ({t_reference_k} K)"
        )
    return (t_hot_k - t_reference_k) / t_reference_k


def enr_db_from_temperatures(t_hot_k: float, t_reference_k: float = T0_KELVIN) -> float:
    """Excess noise ratio in dB, the usual noise-source calibration figure."""
    return linear_to_db(excess_noise_ratio(t_hot_k, t_reference_k))


def temperature_from_enr_db(enr_db: float, t_reference_k: float = T0_KELVIN) -> float:
    """Hot temperature corresponding to an ENR value in dB."""
    return t_reference_k * (1.0 + 10.0 ** (enr_db / 10.0))
