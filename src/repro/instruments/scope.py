"""Digital scope model (HP54645D-like) capturing logic-level streams.

The prototype acquired the digitizer's output with a mixed-signal scope;
the only property that matters is the finite record length, which this
model enforces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


class LogicScope:
    """Captures a bitstream with a bounded record length.

    Parameters
    ----------
    max_record_samples:
        Record-length limit of the instrument (1e6 in the paper's setup).
    """

    def __init__(self, max_record_samples: int = 1_000_000):
        if max_record_samples < 1:
            raise ConfigurationError(
                f"record length must be >= 1, got {max_record_samples}"
            )
        self.max_record_samples = int(max_record_samples)
        self.last_truncated: bool = False

    def capture(self, stream: Waveform) -> Waveform:
        """Capture a stream, truncating to the record-length limit.

        Sets :attr:`last_truncated` so callers can tell whether samples
        were lost.
        """
        if stream.n_samples <= self.max_record_samples:
            self.last_truncated = False
            return stream
        self.last_truncated = True
        return stream.slice(0, self.max_record_samples)
