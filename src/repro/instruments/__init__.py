"""Simulated bench instruments and the Figure-11 prototype testbench.

The paper's prototype used an HP33120A noise generator, a second HP33120A
as the 3 kHz sine reference and an HP54645D digital scope.  These models
replace them (DESIGN.md section 2) so the full experimental setup can be
rebuilt in simulation with :func:`build_prototype_testbench`.
"""

from repro.instruments.function_generator import FunctionGenerator
from repro.instruments.scope import LogicScope
from repro.instruments.testbench import PrototypeTestbench, build_prototype_testbench

__all__ = [
    "FunctionGenerator",
    "LogicScope",
    "PrototypeTestbench",
    "build_prototype_testbench",
]
